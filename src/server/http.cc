#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace kgfd {
namespace {

std::string LowerCase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Splits `head` (request/status line + header fields, CRLF-separated,
/// without the trailing blank line) into its first line and a lowercased
/// header map. Tolerates bare-LF line endings for hand-written test input.
Status ParseHeaderFields(const std::string& head, std::string* first_line,
                         std::map<std::string, std::string>* headers) {
  const std::vector<std::string> lines = Split(head, '\n');
  if (lines.empty()) return Status::InvalidArgument("empty HTTP head");
  auto strip_cr = [](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };
  *first_line = strip_cr(lines[0]);
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string line = strip_cr(lines[i]);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed HTTP header line: " + line);
    }
    (*headers)[LowerCase(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  return Status::OK();
}

/// Frames `text` into head (before the blank line) and body, body length
/// checked against Content-Length.
Status SplitHeadAndBody(const std::string& text, std::string* head,
                        std::string* body,
                        std::map<std::string, std::string>* headers,
                        std::string* first_line) {
  const size_t head_end = HttpHeaderEnd(text);
  if (head_end == std::string::npos) {
    return Status::InvalidArgument("HTTP message head not terminated");
  }
  *head = text.substr(0, head_end);
  KGFD_RETURN_NOT_OK(ParseHeaderFields(*head, first_line, headers));
  KGFD_ASSIGN_OR_RETURN(const uint64_t content_length,
                        HttpContentLength(*headers));
  if (text.size() - head_end < content_length) {
    return Status::InvalidArgument("HTTP body shorter than Content-Length");
  }
  *body = text.substr(head_end, content_length);
  return Status::OK();
}

}  // namespace

const char* HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

size_t HttpHeaderEnd(const std::string& buffer) {
  const size_t crlf = buffer.find("\r\n\r\n");
  if (crlf != std::string::npos) return crlf + 4;
  // Bare-LF tolerance for hand-authored test requests.
  const size_t lf = buffer.find("\n\n");
  if (lf != std::string::npos) return lf + 2;
  return std::string::npos;
}

Result<uint64_t> HttpContentLength(
    const std::map<std::string, std::string>& headers) {
  const auto it = headers.find("content-length");
  if (it == headers.end()) return uint64_t{0};
  const std::string& value = it->second;
  if (value.empty() ||
      !std::all_of(value.begin(), value.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return Status::InvalidArgument("bad Content-Length: " + value);
  }
  // 19 digits always fits in uint64_t; longer is absurd for this server.
  if (value.size() > 19) {
    return Status::InvalidArgument("Content-Length too large: " + value);
  }
  return static_cast<uint64_t>(std::stoull(value));
}

namespace {

/// Validates and splits a request-line into the request's method / target /
/// version fields.
Status ParseRequestLine(const std::string& first_line, HttpRequest* request) {
  // request-line: METHOD SP target SP version
  const std::vector<std::string> parts = Split(first_line, ' ');
  if (parts.size() != 3) {
    return Status::InvalidArgument("malformed request line: " + first_line);
  }
  request->method = parts[0];
  request->target = parts[1];
  request->version = parts[2];
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    return Status::InvalidArgument("malformed request line: " + first_line);
  }
  if (!StartsWith(request->version, "HTTP/1.")) {
    return Status::InvalidArgument("unsupported HTTP version: " +
                                   request->version);
  }
  return Status::OK();
}

}  // namespace

Result<HttpRequest> ParseHttpRequest(const std::string& text) {
  HttpRequest request;
  std::string head;
  std::string first_line;
  KGFD_RETURN_NOT_OK(SplitHeadAndBody(text, &head, &request.body,
                                      &request.headers, &first_line));
  KGFD_RETURN_NOT_OK(ParseRequestLine(first_line, &request));
  return request;
}

Result<HttpRequest> ParseHttpRequestHead(const std::string& head) {
  HttpRequest request;
  std::string first_line;
  // Strip the blank-line terminator if present; ParseHeaderFields skips
  // empty lines anyway, this just keeps the contract symmetric.
  KGFD_RETURN_NOT_OK(ParseHeaderFields(head, &first_line, &request.headers));
  KGFD_RETURN_NOT_OK(ParseRequestLine(first_line, &request));
  return request;
}

Result<HttpResponse> ParseHttpResponse(const std::string& text) {
  HttpResponse response;
  std::string head;
  std::string first_line;
  KGFD_RETURN_NOT_OK(SplitHeadAndBody(text, &head, &response.body,
                                      &response.headers, &first_line));
  // status-line: version SP code SP reason
  const std::vector<std::string> parts = Split(first_line, ' ');
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/1.")) {
    return Status::InvalidArgument("malformed status line: " + first_line);
  }
  const std::string& code = parts[1];
  if (code.size() != 3 ||
      !std::all_of(code.begin(), code.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    return Status::InvalidArgument("malformed status code: " + code);
  }
  response.status_code = std::stoi(code);
  return response;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    HttpReasonPhrase(response.status_code) + "\r\n";
  if (response.headers.find("content-type") == response.headers.end()) {
    out += "Content-Type: text/plain; charset=utf-8\r\n";
  }
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += request.body;
  return out;
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

HttpResponse TextResponse(int status_code, std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.body = std::move(body);
  if (status_code >= 400 && !response.body.empty() &&
      response.body.back() != '\n') {
    response.body += '\n';
  }
  return response;
}

}  // namespace kgfd
