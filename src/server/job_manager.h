#ifndef KGFD_SERVER_JOB_MANAGER_H_
#define KGFD_SERVER_JOB_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/discovery.h"
#include "core/discovery_cache.h"
#include "kg/dataset.h"
#include "kge/model.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace kgfd {

class MetricsRegistry;
class ThreadPool;

/// Metric names recorded when JobManager::Options::metrics is set.
inline constexpr char kServerJobsSubmittedCounter[] = "server.jobs.submitted";
inline constexpr char kServerJobsCompletedCounter[] = "server.jobs.completed";
inline constexpr char kServerJobsRejectedCounter[] = "server.jobs.rejected";
inline constexpr char kServerModelCacheHitsCounter[] =
    "server.model_cache.hits";
inline constexpr char kServerModelCacheMissesCounter[] =
    "server.model_cache.misses";

/// Lifecycle of one submitted job.
enum class JobState {
  kQueued,
  kRunning,
  kDone,       ///< ran to completion
  kCancelled,  ///< stopped by DELETE /jobs/<id> or server drain
  kDeadline,   ///< stopped by its deadline_s budget
  kFailed,     ///< terminated with an error (see JobStatus::error)
};

const char* JobStateName(JobState state);

/// Creates the manifest work directory if missing (one level; parent must
/// exist). The server binary calls this before constructing a JobManager so
/// an unusable --work_dir is a clean startup error.
Status EnsureJobWorkDir(const std::string& path);

/// A parsed job submission. The body of POST /jobs is the repo's flat
/// `key = value` config format (util/config_file.h). Two kinds:
///
///  * `job.kind = discover` (default) — run discovery against an existing
///    dataset directory and model checkpoint; this is the service's hot
///    path and what the cross-request caches accelerate. Keys:
///      data.dir                  = <dataset directory>      (required)
///      model.checkpoint          = <model checkpoint file>  (required)
///      discovery.strategy        = <any strategy name; default is
///                                  KGFD_DEFAULT_STRATEGY, else
///                                  ENTITY_FREQUENCY>
///      discovery.top_n           = 500
///      discovery.max_candidates  = 500
///      discovery.max_iterations  = 5
///      discovery.type_filter     = false
///      discovery.filtered_ranking= true
///      discovery.seed            = 123
///      discovery.adaptive_rounds      = 8    # strategy=ADAPTIVE rounds
///      discovery.adaptive_exploration = 0.5  # UCB1 exploration constant
///      deadline_s                = 0        # 0 = no deadline
///    Defaults deliberately match `kgfd_cli discover`, so the same inputs
///    produce byte-identical facts through either front end.
///
///  * `job.kind = run` — a full declarative pipeline (core/job.h JobSpec:
///    dataset/train/eval/discovery keys), executed via RunJob. `deadline_s`
///    is also accepted.
struct JobRequest {
  enum class Kind { kDiscover, kRun };
  Kind kind = Kind::kDiscover;
  // -- discover ------------------------------------------------------------
  std::string data_dir;
  std::string checkpoint;
  DiscoveryOptions discovery;
  // -- common --------------------------------------------------------------
  double deadline_s = 0.0;
  /// Original body; `run` jobs re-parse it into a JobSpec at execution.
  std::string config_text;

  /// Parses and fully validates a submission body (unknown keys rejected).
  static Result<JobRequest> Parse(const std::string& config_text);
};

/// Point-in-time public view of a job.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  std::string error;
  size_t relations_total = 0;  ///< 0 until the job starts
  size_t relations_done = 0;
  size_t num_facts = 0;
  StoppedReason stopped_reason = StoppedReason::kNone;
  double runtime_seconds = 0.0;
};

/// Bounded FIFO job queue with a single runner thread — the serving-side
/// "discovery as a service" engine.
///
/// Jobs run one at a time (each job parallelizes internally across the
/// compute pool, so serial admission maximizes per-job throughput instead
/// of thrashing the pool); the bounded queue is the admission control: a
/// Submit beyond Options::max_queued fails with FailedPrecondition, which
/// the HTTP layer maps to 429.
///
/// Cross-request amortization, the point of the tentpole:
///  * datasets + model checkpoints are cached by (data.dir, checkpoint)
///    path pair (server.model_cache.* counters), so repeat jobs skip disk;
///  * each distinct model/KG *fingerprint* (HashModelParameters + graph
///    shape, the same identity core/resume.h manifests pin) owns one
///    DiscoveryCache holding strategy weights and side-score entries, so a
///    second job over the same model reuses prior scoring work
///    (discovery.shared_* counters). Fingerprint keying means two
///    checkpoint files with identical parameters share a cache, and a
///    retrained model can never be served another model's scores.
///
/// Every discover job runs through DiscoverFactsResumable with a per-job
/// manifest under Options::work_dir: GET /jobs/<id> progress comes from the
/// same per-relation completion stream the manifest persists, and a drain
/// or cancellation mid-job leaves a valid manifest on disk (the PR4
/// invariant) that a resubmitted job resumes bit-identically.
///
/// Shutdown() drains gracefully: no new admissions (503 at the HTTP
/// layer), queued jobs become kCancelled, the in-flight job is cancelled
/// cooperatively and flushes its manifest before the runner exits.
class JobManager {
 public:
  struct Options {
    /// Directory for per-job resume manifests (created if missing).
    std::string work_dir;
    /// Admission cap on not-yet-running jobs.
    size_t max_queued = 16;
    /// Compute pool threaded into discovery. Borrowed; may be null
    /// (serial).
    ThreadPool* pool = nullptr;
    /// Server-global registry: job counters here, and discovery/cache
    /// metrics of every job accumulate into it (how the integration tests
    /// observe cross-request cache hits via GET /metrics). Borrowed; may
    /// be null.
    MetricsRegistry* metrics = nullptr;
  };

  explicit JobManager(Options options);
  /// Shuts down (graceful drain) if still running.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Parses, validates and enqueues a job. Returns the job id.
  /// FailedPrecondition "job queue full" when the queue is at capacity and
  /// "server is draining" after Shutdown() began; InvalidArgument for a bad
  /// body.
  Result<std::string> Submit(const std::string& config_text);

  Result<JobStatus> GetStatus(const std::string& id) const;

  /// TSV facts of a terminal job (FormatFactsTsv bytes — identical to
  /// `kgfd_cli discover --out`). A cancelled job returns the partial facts
  /// of its completed relations. FailedPrecondition while queued/running.
  Result<std::string> FactsTsv(const std::string& id) const;

  /// Requests cooperative cancellation: a queued job terminates without
  /// running, a running one stops at its next checkpoint (manifest intact).
  /// OK also when the job is already terminal (idempotent).
  Status Cancel(const std::string& id);

  /// Graceful drain; blocks until the runner thread exited. Idempotent.
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Jobs in submission order (for GET /jobs).
  std::vector<JobStatus> ListJobs() const;

 private:
  struct Job {
    std::string id;
    JobRequest request;
    CancellationToken token;
    JobState state = JobState::kQueued;  // guarded by mu_
    std::string error;                   // guarded by mu_
    size_t relations_total = 0;          // guarded by mu_
    std::atomic<size_t> relations_done{0};
    size_t num_facts = 0;          // guarded by mu_
    std::string facts_tsv;         // guarded by mu_, set once terminal
    StoppedReason stopped_reason = StoppedReason::kNone;  // guarded by mu_
    double runtime_seconds = 0.0;  // guarded by mu_
  };

  /// Dataset + model loaded once and shared across jobs, plus the
  /// fingerprint-keyed DiscoveryCache for that (model, KG).
  struct LoadedModel {
    std::shared_ptr<Dataset> dataset;
    std::shared_ptr<Model> model;
    uint64_t fingerprint = 0;
    std::shared_ptr<DiscoveryCache> cache;
  };

  void RunnerLoop();
  void RunOne(Job* job);
  Status RunDiscoverJob(Job* job);
  Status RunPipelineJob(Job* job);
  Result<std::shared_ptr<LoadedModel>> GetOrLoadModel(
      const std::string& data_dir, const std::string& checkpoint);
  JobStatus SnapshotLocked(const Job& job) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Job*> queue_;  // non-owning; jobs_ owns
  std::unordered_map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> job_order_;
  uint64_t next_id_ = 1;
  std::atomic<bool> draining_{false};
  bool runner_exited_ = false;
  std::thread runner_;

  /// (data.dir \n checkpoint) -> loaded artifacts; fingerprint ->
  /// DiscoveryCache. Both only touched from the runner thread and
  /// Shutdown-after-join, guarded by mu_ for safety anyway.
  std::unordered_map<std::string, std::shared_ptr<LoadedModel>> model_cache_;
  std::unordered_map<uint64_t, std::shared_ptr<DiscoveryCache>> caches_;
};

}  // namespace kgfd

#endif  // KGFD_SERVER_JOB_MANAGER_H_
