#ifndef KGFD_SERVER_JOB_MANAGER_H_
#define KGFD_SERVER_JOB_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/discovery.h"
#include "core/discovery_cache.h"
#include "kg/dataset.h"
#include "kge/model.h"
#include "server/job_journal.h"
#include "util/cancellation.h"
#include "util/retry.h"
#include "util/status.h"

namespace kgfd {

class MetricsRegistry;
class ThreadPool;

/// Metric names recorded when JobManager::Options::metrics is set.
inline constexpr char kServerJobsSubmittedCounter[] = "server.jobs.submitted";
inline constexpr char kServerJobsCompletedCounter[] = "server.jobs.completed";
inline constexpr char kServerJobsRejectedCounter[] = "server.jobs.rejected";
inline constexpr char kServerModelCacheHitsCounter[] =
    "server.model_cache.hits";
inline constexpr char kServerModelCacheMissesCounter[] =
    "server.model_cache.misses";
/// Durability & recovery series (DESIGN.md §10).
inline constexpr char kServerJournalRecordsCounter[] =
    "server.journal.records";
inline constexpr char kServerJournalErrorsCounter[] = "server.journal.errors";
inline constexpr char kServerJournalRotationsCounter[] =
    "server.journal.rotations";
inline constexpr char kServerJournalTruncatedBytesCounter[] =
    "server.journal.truncated_bytes";
inline constexpr char kServerJournalQuarantinedCounter[] =
    "server.journal.quarantined";
inline constexpr char kServerJobsRecoveredCounter[] = "server.jobs.recovered";
inline constexpr char kServerJobsRetriedCounter[] = "server.jobs.retried";
inline constexpr char kServerJobsPoisonedCounter[] = "server.jobs.poisoned";
inline constexpr char kServerWatchdogStallsCounter[] =
    "server.watchdog.stalls";

/// Lifecycle of one submitted job.
enum class JobState {
  kQueued,
  kRunning,
  kDone,       ///< ran to completion
  kCancelled,  ///< stopped by DELETE /jobs/<id> or server drain
  kDeadline,   ///< stopped by its deadline_s budget
  kFailed,     ///< terminated with an error (see JobStatus::error)
  /// Quarantined: the job stalled or failed transiently on every allowed
  /// attempt (watchdog + RetryPolicy), or crash-looped the server across
  /// restarts. It will not be retried again; the last error is preserved.
  kFailedPoisoned,
};

const char* JobStateName(JobState state);

/// Creates the manifest work directory if missing (one level; parent must
/// exist). The server binary calls this before constructing a JobManager so
/// an unusable --work_dir is a clean startup error.
Status EnsureJobWorkDir(const std::string& path);

/// A parsed job submission. The body of POST /jobs is the repo's flat
/// `key = value` config format (util/config_file.h). Two kinds:
///
///  * `job.kind = discover` (default) — run discovery against an existing
///    dataset directory and model checkpoint; this is the service's hot
///    path and what the cross-request caches accelerate. Keys:
///      data.dir                  = <dataset directory>      (required)
///      model.checkpoint          = <model checkpoint file>  (required)
///      discovery.strategy        = <any strategy name; default is
///                                  KGFD_DEFAULT_STRATEGY, else
///                                  ENTITY_FREQUENCY>
///      discovery.top_n           = 500
///      discovery.max_candidates  = 500
///      discovery.max_iterations  = 5
///      discovery.type_filter     = false
///      discovery.filtered_ranking= true
///      discovery.seed            = 123
///      discovery.adaptive_rounds      = 8    # strategy=ADAPTIVE rounds
///      discovery.adaptive_exploration = 0.5  # UCB1 exploration constant
///      deadline_s                = 0        # 0 = no deadline
///    Defaults deliberately match `kgfd_cli discover`, so the same inputs
///    produce byte-identical facts through either front end.
///
///  * `job.kind = run` — a full declarative pipeline (core/job.h JobSpec:
///    dataset/train/eval/discovery keys), executed via RunJob. `deadline_s`
///    is also accepted.
struct JobRequest {
  enum class Kind { kDiscover, kRun };
  Kind kind = Kind::kDiscover;
  // -- discover ------------------------------------------------------------
  std::string data_dir;
  std::string checkpoint;
  DiscoveryOptions discovery;
  // -- common --------------------------------------------------------------
  double deadline_s = 0.0;
  /// Original body; `run` jobs re-parse it into a JobSpec at execution.
  /// Also the payload of the journal's kSubmitted record, so a recovered
  /// job is re-parsed from the exact bytes the client submitted.
  std::string config_text;

  /// Parses and fully validates a submission body (unknown keys rejected).
  static Result<JobRequest> Parse(const std::string& config_text);
};

/// Point-in-time public view of a job.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  std::string error;
  size_t relations_total = 0;  ///< 0 until the job starts
  size_t relations_done = 0;
  size_t num_facts = 0;
  StoppedReason stopped_reason = StoppedReason::kNone;
  double runtime_seconds = 0.0;
  /// Execution attempts begun so far (0 while queued; carried across
  /// server restarts through the journal).
  uint32_t attempts = 0;
  /// True if this job was rebuilt from the journal after a restart.
  bool recovered = false;
};

/// Bounded FIFO job queue with a single runner thread — the serving-side
/// "discovery as a service" engine.
///
/// Jobs run one at a time (each job parallelizes internally across the
/// compute pool, so serial admission maximizes per-job throughput instead
/// of thrashing the pool); the bounded queue is the admission control: a
/// Submit beyond Options::max_queued fails with FailedPrecondition, which
/// the HTTP layer maps to 429.
///
/// Cross-request amortization:
///  * datasets + model checkpoints are cached by (data.dir, checkpoint)
///    path pair (server.model_cache.* counters), so repeat jobs skip disk;
///  * each distinct model/KG *fingerprint* (HashModelParameters + graph
///    shape, the same identity core/resume.h manifests pin) owns one
///    DiscoveryCache holding strategy weights and side-score entries, so a
///    second job over the same model reuses prior scoring work
///    (discovery.shared_* counters). Fingerprint keying means two
///    checkpoint files with identical parameters share a cache, and a
///    retrained model can never be served another model's scores.
///
/// Every discover job runs through DiscoverFactsResumable with a per-job
/// manifest under Options::work_dir: GET /jobs/<id> progress comes from the
/// same per-relation completion stream the manifest persists, and a drain
/// or cancellation mid-job leaves a valid manifest on disk (the PR4
/// invariant) that a resubmitted job resumes bit-identically.
///
/// Durability (DESIGN.md §10): every job transition is appended to a
/// JobJournal under work_dir before the server acknowledges it as durable.
/// On construction the journal is replayed: terminal jobs are restored
/// (facts from `<id>.facts.tsv`), interrupted jobs re-enter the queue in
/// their original submission order and resume through their manifests, and
/// jobs that crash-looped past the attempt budget are quarantined as
/// kFailedPoisoned instead of crashing the server again.
///
/// A watchdog thread (Options::stall_timeout_s) cancels the running job
/// when its per-phase heartbeats (attempt start, relation completion,
/// adaptive round completion) go silent; stalled or transiently-failed
/// jobs are re-executed under Options::retry and quarantined after the
/// attempt budget.
///
/// Shutdown() drains gracefully: no new admissions (503 at the HTTP
/// layer), queued jobs become kCancelled (or stay durable in the journal
/// for the next boot when Options::cancel_queued_on_drain is false), the
/// in-flight job is cancelled cooperatively and flushes its manifest
/// before the runner exits.
class JobManager {
 public:
  struct Options {
    /// Directory for per-job resume manifests, facts files, and the job
    /// journal (created if missing).
    std::string work_dir;
    /// Admission cap on not-yet-running jobs.
    size_t max_queued = 16;
    /// Compute pool threaded into discovery. Borrowed; may be null
    /// (serial).
    ThreadPool* pool = nullptr;
    /// Server-global registry: job counters here, and discovery/cache
    /// metrics of every job accumulate into it (how the integration tests
    /// observe cross-request cache hits via GET /metrics). Borrowed; may
    /// be null.
    MetricsRegistry* metrics = nullptr;
    /// Job re-execution budget. max_attempts is the total number of
    /// executions a job may start in-process (1 = never retry, the
    /// default here); only retryable codes (IoError unless overridden)
    /// and watchdog stalls consume extra attempts. Exhaustion lands the
    /// job in kFailedPoisoned.
    RetryPolicy retry{.max_attempts = 1};
    /// Cancel the running job once its heartbeats are older than this
    /// (seconds). 0 disables the watchdog.
    double stall_timeout_s = 0.0;
    /// Watchdog poll cadence; only meaningful with stall_timeout_s > 0.
    double watchdog_poll_s = 0.05;
    /// Journal tuning (rotation threshold, fsync-per-append).
    JobJournal::Options journal;
    /// Historical drain semantics: Shutdown() cancels still-queued jobs.
    /// Set false to leave them durable in the journal instead, so the
    /// next boot re-enqueues and runs them (kgfd_server
    /// --drain_keep_queued).
    bool cancel_queued_on_drain = true;
  };

  /// What construction-time journal replay did (kgfd_server logs this).
  struct RecoveryInfo {
    size_t replayed_records = 0;
    size_t jobs_restored = 0;   ///< terminal jobs rebuilt with their facts
    size_t jobs_recovered = 0;  ///< interrupted/queued jobs re-enqueued
    size_t jobs_poisoned = 0;   ///< crash-looped jobs quarantined at boot
    uint64_t truncated_bytes = 0;  ///< torn journal tail dropped
    size_t quarantined_segments = 0;
    /// Non-empty if the journal could not be opened/replayed; the manager
    /// quarantined it (.corrupt) and booted with a fresh one.
    std::string journal_error;
  };

  explicit JobManager(Options options);
  /// Shuts down (graceful drain) if still running.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Parses, validates and enqueues a job. Returns the job id.
  /// FailedPrecondition "job queue full" when the queue is at capacity and
  /// "server is draining" after Shutdown() began; InvalidArgument for a bad
  /// body.
  Result<std::string> Submit(const std::string& config_text);

  Result<JobStatus> GetStatus(const std::string& id) const;

  /// TSV facts of a terminal job (FormatFactsTsv bytes — identical to
  /// `kgfd_cli discover --out`). A cancelled job returns the partial facts
  /// of its completed relations. FailedPrecondition while queued/running.
  Result<std::string> FactsTsv(const std::string& id) const;

  /// Requests cooperative cancellation: a queued job is dequeued and
  /// terminal immediately (it never starts), a running one stops at its
  /// next checkpoint (manifest intact). OK also when the job is already
  /// terminal (idempotent).
  Status Cancel(const std::string& id);

  /// Graceful drain; blocks until the runner thread exited. Idempotent.
  void Shutdown();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Jobs in submission order (for GET /jobs).
  std::vector<JobStatus> ListJobs() const;

  /// Journal replay summary from construction.
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Simulates a SIGKILL: from the moment of the call, nothing more is
  /// written to the journal or the per-job facts files, the in-flight job
  /// is stopped, and the threads are joined. The on-disk state is then
  /// exactly what a real kill-9 at this point would leave (resume
  /// manifests are tmp+rename atomic, so suppressing only the journal
  /// reproduces the crash window recovery must close). Tests destroy the
  /// manager afterwards and construct a new one over the same work_dir.
  void KillForTesting();

 private:
  struct Job {
    std::string id;
    JobRequest request;
    /// Fresh token per execution attempt (a CancellationToken cannot be
    /// un-cancelled); replaced under mu_ at each attempt start.
    std::unique_ptr<CancellationToken> token;
    JobState state = JobState::kQueued;  // guarded by mu_
    std::string error;                   // guarded by mu_
    size_t relations_total = 0;          // guarded by mu_
    std::atomic<size_t> relations_done{0};
    std::atomic<size_t> rounds_done{0};
    size_t num_facts = 0;          // guarded by mu_
    std::string facts_tsv;         // guarded by mu_, set once terminal
    StoppedReason stopped_reason = StoppedReason::kNone;  // guarded by mu_
    double runtime_seconds = 0.0;  // guarded by mu_
    uint32_t attempts = 0;         // guarded by mu_
    bool user_cancelled = false;   // guarded by mu_ (DELETE vs watchdog)
    bool recovered = false;        // set before the runner starts
    /// Steady-clock ns of the last sign of life (attempt start, relation
    /// done, adaptive round done). 0 while not running.
    std::atomic<int64_t> last_heartbeat_ns{0};
    /// Set by the watchdog when it cancels this attempt for stalling.
    std::atomic<bool> stall_cancelled{false};
  };

  /// Dataset + model loaded once and shared across jobs, plus the
  /// fingerprint-keyed DiscoveryCache for that (model, KG).
  struct LoadedModel {
    std::shared_ptr<Dataset> dataset;
    std::shared_ptr<Model> model;
    uint64_t fingerprint = 0;
    std::shared_ptr<DiscoveryCache> cache;
  };

  void RunnerLoop();
  void WatchdogLoop();
  void RunOne(Job* job);
  Status RunDiscoverJob(Job* job);
  Status RunPipelineJob(Job* job);
  Result<std::shared_ptr<LoadedModel>> GetOrLoadModel(
      const std::string& data_dir, const std::string& checkpoint);
  JobStatus SnapshotLocked(const Job& job) const;

  /// Journal plumbing (all require mu_; no-ops after KillForTesting or
  /// when the journal failed to open).
  void JournalAppendLocked(const JournalRecord& record);
  std::vector<JournalRecord> JournalSnapshotLocked() const;
  /// Terminal flush: persists `<id>.facts.tsv` (tmp+rename), then appends
  /// the kTerminal record. The kFailPointJournalTerminal gate sits in
  /// front of both — a triggered spec simulates a crash in exactly the
  /// pre-terminal-flush window.
  void PersistTerminalLocked(Job* job);
  void OpenJournal();
  void RecoverFromJournal(std::vector<JournalRecord> records);
  void Heartbeat(Job* job);
  void BumpCounter(const char* name, uint64_t delta = 1);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable watchdog_wakeup_;
  std::deque<Job*> queue_;  // non-owning; jobs_ owns
  std::unordered_map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<Job*> job_order_;
  uint64_t next_id_ = 1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> crashed_{false};
  std::unique_ptr<JobJournal> journal_;  // null if open failed (degraded)
  RecoveryInfo recovery_;
  std::thread runner_;
  std::thread watchdog_;

  /// (data.dir \n checkpoint) -> loaded artifacts; fingerprint ->
  /// DiscoveryCache. Both only touched from the runner thread and
  /// Shutdown-after-join, guarded by mu_ for safety anyway.
  std::unordered_map<std::string, std::shared_ptr<LoadedModel>> model_cache_;
  std::unordered_map<uint64_t, std::shared_ptr<DiscoveryCache>> caches_;
};

}  // namespace kgfd

#endif  // KGFD_SERVER_JOB_MANAGER_H_
