#ifndef KGFD_SERVER_DISCOVERY_SERVICE_H_
#define KGFD_SERVER_DISCOVERY_SERVICE_H_

#include <string>

#include "server/http.h"
#include "server/job_manager.h"

namespace kgfd {

class MetricsRegistry;

/// Renders one job status as flat `key = value` text (the repo's config
/// grammar, so a status body can be fed back to ConfigFile::Parse in
/// tests). Exposed for unit testing.
std::string FormatJobStatusText(const JobStatus& status);

/// The HTTP application: routes requests onto a JobManager + metrics
/// registry. Stateless apart from the borrowed pointers, safe for
/// concurrent connections (JobManager and MetricsRegistry are both
/// thread-safe).
///
/// Routes:
///   GET    /healthz          -> 200 "ok" (503 "draining" during shutdown)
///   GET    /metrics          -> text export of the registry snapshot
///   POST   /jobs             -> submit; body is a job config
///                               (server/job_manager.h). 200 + job id,
///                               400 bad body, 429 queue full, 503 draining
///   GET    /jobs             -> one status line per job, submission order
///   GET    /jobs/<id>        -> `key = value` status text; 404 unknown id
///   GET    /jobs/<id>/facts  -> facts TSV (byte-identical to
///                               `kgfd_cli discover --out`); 409 until the
///                               job is terminal
///   DELETE /jobs/<id>        -> cooperative cancel; 200 always once known
/// Unknown paths are 404, known paths with the wrong verb are 405.
class DiscoveryService {
 public:
  DiscoveryService(JobManager* jobs, MetricsRegistry* metrics)
      : jobs_(jobs), metrics_(metrics) {}

  HttpResponse Handle(const HttpRequest& request) const;

 private:
  JobManager* jobs_;
  MetricsRegistry* metrics_;
};

}  // namespace kgfd

#endif  // KGFD_SERVER_DISCOVERY_SERVICE_H_
