#ifndef KGFD_SERVER_HTTP_H_
#define KGFD_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"

namespace kgfd {

/// Minimal HTTP/1.1 message layer for the discovery job server: just enough
/// of RFC 9112 for `curl` and the test client — request-line + headers +
/// Content-Length body, `Connection: close` semantics, no chunked encoding,
/// no keep-alive. Shared by the server (parse request / serialize response)
/// and the blocking test client (the inverse).

struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // origin-form, e.g. "/jobs/j1/facts" (query kept)
  std::string version;  // "HTTP/1.1"
  /// Field names lowercased (HTTP headers are case-insensitive).
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status_code = 200;
  /// Extra headers; Content-Length and Connection are added by the
  /// serializer, Content-Type defaults to text/plain when absent.
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Canonical reason phrase for the status codes this server emits
/// ("Unknown" otherwise).
const char* HttpReasonPhrase(int status_code);

/// Parses a full request (head + body). The text must contain the complete
/// message: callers first frame it with HttpHeaderEnd / Content-Length.
Result<HttpRequest> ParseHttpRequest(const std::string& text);

/// Parses just the request line + header fields — `head` ends at (and may
/// include) the blank line, with no body. Used by the server while the
/// body is still in flight, to learn Content-Length before the message is
/// complete; the returned request's body is empty.
Result<HttpRequest> ParseHttpRequestHead(const std::string& head);

/// Parses a full response, for the client side.
Result<HttpResponse> ParseHttpResponse(const std::string& text);

/// Serializes a response with Content-Length and `Connection: close` (this
/// server is strictly one-request-per-connection).
std::string SerializeHttpResponse(const HttpResponse& response);

/// Serializes a request with Content-Length and `Connection: close`.
std::string SerializeHttpRequest(const HttpRequest& request);

/// Byte offset one past the `\r\n\r\n` head terminator, or npos if the head
/// is still incomplete. Used to frame messages read incrementally from a
/// socket.
size_t HttpHeaderEnd(const std::string& buffer);

/// Content-Length of a parsed header map (0 when absent; InvalidArgument
/// when present but not a plain non-negative integer).
Result<uint64_t> HttpContentLength(
    const std::map<std::string, std::string>& headers);

/// Maps a Status onto the HTTP status code the job API uses: OK→200,
/// InvalidArgument→400, NotFound→404, FailedPrecondition→409,
/// DeadlineExceeded→504, everything else→500. (429 queue-full is mapped
/// explicitly at the submit endpoint, not here.)
int HttpStatusFromStatus(const Status& status);

/// Convenience text/plain response; non-2xx bodies get a trailing newline
/// so curl output stays readable.
HttpResponse TextResponse(int status_code, std::string body);

}  // namespace kgfd

#endif  // KGFD_SERVER_HTTP_H_
