#include "server/discovery_service.h"

#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/string_util.h"

namespace kgfd {
namespace {

HttpResponse StatusResponse(const Status& status) {
  return TextResponse(HttpStatusFromStatus(status), status.message());
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse response = TextResponse(405, "method not allowed");
  response.headers["allow"] = allow;
  return response;
}

}  // namespace

std::string FormatJobStatusText(const JobStatus& status) {
  std::ostringstream out;
  out << "id = " << status.id << "\n";
  out << "state = " << JobStateName(status.state) << "\n";
  out << "relations_total = " << status.relations_total << "\n";
  out << "relations_done = " << status.relations_done << "\n";
  out << "num_facts = " << status.num_facts << "\n";
  out << "stopped_reason = " << StoppedReasonName(status.stopped_reason)
      << "\n";
  out << "runtime_seconds = " << status.runtime_seconds << "\n";
  out << "attempts = " << status.attempts << "\n";
  if (status.recovered) out << "recovered = true\n";
  if (!status.error.empty()) {
    // The error may span lines; keep the body one key per line.
    std::string flat = status.error;
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out << "error = " << flat << "\n";
  }
  return out.str();
}

HttpResponse DiscoveryService::Handle(const HttpRequest& request) const {
  // Strip any query string: the API has no parameters today, and a target
  // like /jobs/j1?x=y should still resolve the path.
  std::string path = request.target;
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    if (jobs_ != nullptr && jobs_->draining()) {
      return TextResponse(503, "draining");
    }
    return TextResponse(200, "ok\n");
  }

  if (path == "/metrics") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    if (metrics_ == nullptr) return TextResponse(200, "");
    return TextResponse(200, MetricsToText(metrics_->Snapshot()));
  }

  if (path == "/jobs") {
    if (request.method == "POST") {
      const auto submitted = jobs_->Submit(request.body);
      if (!submitted.ok()) {
        const Status& status = submitted.status();
        if (status.code() == StatusCode::kFailedPrecondition) {
          // Admission errors get their load-shedding codes instead of the
          // generic 409: full queue -> 429 (retry later), draining -> 503.
          const bool draining =
              status.message().find("draining") != std::string::npos;
          return TextResponse(draining ? 503 : 429, status.message());
        }
        return StatusResponse(status);
      }
      return TextResponse(200, submitted.value() + "\n");
    }
    if (request.method == "GET") {
      std::ostringstream out;
      for (const JobStatus& status : jobs_->ListJobs()) {
        out << status.id << " " << JobStateName(status.state) << " "
            << status.relations_done << "/" << status.relations_total << " "
            << status.num_facts << "\n";
      }
      return TextResponse(200, out.str());
    }
    return MethodNotAllowed("GET, POST");
  }

  if (StartsWith(path, "/jobs/")) {
    std::string id = path.substr(6);
    const bool facts = [&] {
      const size_t slash = id.find('/');
      if (slash == std::string::npos) return false;
      const bool is_facts = id.substr(slash) == "/facts";
      id.resize(slash);
      return is_facts;
    }();
    if (id.empty()) return TextResponse(404, "not found");
    if (facts) {
      if (request.method != "GET") return MethodNotAllowed("GET");
      const auto tsv = jobs_->FactsTsv(id);
      if (!tsv.ok()) return StatusResponse(tsv.status());
      HttpResponse response;
      response.body = tsv.value();
      response.headers["content-type"] = "text/tab-separated-values";
      return response;
    }
    if (path.find('/', 6) != std::string::npos) {
      return TextResponse(404, "not found");  // /jobs/<id>/<junk>
    }
    if (request.method == "GET") {
      const auto status = jobs_->GetStatus(id);
      if (!status.ok()) return StatusResponse(status.status());
      return TextResponse(200, FormatJobStatusText(status.value()));
    }
    if (request.method == "DELETE") {
      const Status cancelled = jobs_->Cancel(id);
      if (!cancelled.ok()) return StatusResponse(cancelled);
      return TextResponse(200, "cancelling " + id + "\n");
    }
    return MethodNotAllowed("GET, DELETE");
  }

  return TextResponse(404, "not found");
}

}  // namespace kgfd
