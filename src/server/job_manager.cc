#include "server/job_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/job.h"
#include "core/report.h"
#include "core/resume.h"
#include "core/strategy.h"
#include "kg/io.h"
#include "kge/checkpoint.h"
#include "obs/metrics.h"
#include "util/config_file.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace kgfd {
namespace {

/// Mixes one value into a running fingerprint (golden-ratio mix, same
/// shape as boost::hash_combine). Used to extend the model-parameter hash
/// with the graph shape so two models over different KGs never share a
/// DiscoveryCache.
void MixFingerprint(uint64_t* fp, uint64_t v) {
  *fp ^= v + 0x9E3779B97F4A7C15ULL + (*fp << 6) + (*fp >> 2);
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("JobManager work_dir must be set");
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir(" + path +
                           ") failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Reads a strictly positive size from the config (GetInt yields int64, so
/// negatives must be rejected before the size_t cast silently wraps).
Result<size_t> GetPositiveSize(const ConfigFile& config,
                               const std::string& key,
                               size_t default_value) {
  KGFD_ASSIGN_OR_RETURN(
      const int64_t raw,
      config.GetInt(key, static_cast<int64_t>(default_value)));
  if (raw <= 0) {
    return Status::InvalidArgument(key + " must be positive, got " +
                                   std::to_string(raw));
  }
  return static_cast<size_t>(raw);
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stable on-disk encoding of the terminal JobStates (journal kTerminal
/// records). Values are part of the journal format — never renumber.
uint8_t JobStateToJournal(JobState state) {
  switch (state) {
    case JobState::kDone:
      return 1;
    case JobState::kCancelled:
      return 2;
    case JobState::kDeadline:
      return 3;
    case JobState::kFailed:
      return 4;
    case JobState::kFailedPoisoned:
      return 5;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // never journaled as terminal
  }
  return 4;
}

JobState JobStateFromJournal(uint8_t encoded) {
  switch (encoded) {
    case 1:
      return JobState::kDone;
    case 2:
      return JobState::kCancelled;
    case 3:
      return JobState::kDeadline;
    case 4:
      return JobState::kFailed;
    case 5:
      return JobState::kFailedPoisoned;
    default:
      // Unknown terminal code from a future format revision: the job is
      // over either way; surface it as failed rather than re-running it.
      return JobState::kFailed;
  }
}

std::string FactsPathFor(const std::string& work_dir,
                         const std::string& job_id) {
  return work_dir + "/" + job_id + ".facts.tsv";
}

/// Atomic tmp+rename write, same crash contract as resume manifests: a
/// kill at any point leaves either the old file or the new, never a torn
/// mix.
Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::string(std::strerror(errno)));
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("write to " + tmp + " failed: " + err);
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IoError("rename " + tmp + " -> " + path +
                           " failed: " + err);
  }
  return Status::OK();
}

/// Best-effort whole-file read ("" when absent/unreadable) for restoring a
/// terminal job's facts at recovery.
std::string ReadFileOrEmpty(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return "";
  std::string data;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    data.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

/// Numeric part of "j<N>" job ids, 0 if the id has another shape.
uint64_t JobIdNumber(const std::string& id) {
  if (id.size() < 2 || id[0] != 'j') return 0;
  uint64_t n = 0;
  for (size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(id[i] - '0');
  }
  return n;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDeadline:
      return "deadline";
    case JobState::kFailed:
      return "failed";
    case JobState::kFailedPoisoned:
      return "failed_poisoned";
  }
  return "unknown";
}

Result<JobRequest> JobRequest::Parse(const std::string& config_text) {
  KGFD_ASSIGN_OR_RETURN(const ConfigFile config,
                        ConfigFile::Parse(config_text));
  JobRequest request;
  request.config_text = config_text;

  const std::string kind = config.GetString("job.kind", "discover");
  KGFD_ASSIGN_OR_RETURN(request.deadline_s,
                        config.GetDouble("deadline_s", 0.0));
  if (request.deadline_s < 0) {
    return Status::InvalidArgument("deadline_s must be >= 0, got " +
                                   std::to_string(request.deadline_s));
  }

  if (kind == "run") {
    request.kind = Kind::kRun;
    // Validate the full pipeline spec now so a bad submission fails at
    // POST time, not minutes later inside the runner. The spec itself is
    // re-parsed from config_text at execution (JobSpec is not copyable
    // here: it carries borrowed metrics/cancel wiring).
    KGFD_ASSIGN_OR_RETURN(const JobSpec spec, JobSpec::FromConfig(config));
    (void)spec;
    return request;
  }
  if (kind != "discover") {
    return Status::InvalidArgument(
        "job.kind must be 'discover' or 'run', got '" + kind + "'");
  }

  request.kind = Kind::kDiscover;
  request.data_dir = config.GetString("data.dir", "");
  if (request.data_dir.empty()) {
    return Status::InvalidArgument("discover job requires data.dir");
  }
  request.checkpoint = config.GetString("model.checkpoint", "");
  if (request.checkpoint.empty()) {
    return Status::InvalidArgument("discover job requires model.checkpoint");
  }

  const std::string strategy_name = config.GetString(
      "discovery.strategy",
      SamplingStrategyName(DefaultSamplingStrategy()));
  KGFD_ASSIGN_OR_RETURN(request.discovery.strategy,
                        SamplingStrategyFromName(strategy_name));
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.adaptive_rounds,
      GetPositiveSize(config, "discovery.adaptive_rounds",
                      request.discovery.adaptive_rounds));
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.adaptive_exploration,
      config.GetDouble("discovery.adaptive_exploration",
                       request.discovery.adaptive_exploration));
  if (!(request.discovery.adaptive_exploration >= 0.0)) {
    return Status::InvalidArgument(
        "discovery.adaptive_exploration must be >= 0");
  }
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.top_n,
      GetPositiveSize(config, "discovery.top_n", request.discovery.top_n));
  KGFD_ASSIGN_OR_RETURN(request.discovery.max_candidates,
                        GetPositiveSize(config, "discovery.max_candidates",
                                        request.discovery.max_candidates));
  KGFD_ASSIGN_OR_RETURN(request.discovery.max_iterations,
                        GetPositiveSize(config, "discovery.max_iterations",
                                        request.discovery.max_iterations));
  KGFD_ASSIGN_OR_RETURN(request.discovery.type_filter,
                        config.GetBool("discovery.type_filter",
                                       request.discovery.type_filter));
  KGFD_ASSIGN_OR_RETURN(request.discovery.filtered_ranking,
                        config.GetBool("discovery.filtered_ranking",
                                       request.discovery.filtered_ranking));
  KGFD_ASSIGN_OR_RETURN(
      const int64_t seed,
      config.GetInt("discovery.seed",
                    static_cast<int64_t>(request.discovery.seed)));
  request.discovery.seed = static_cast<uint64_t>(seed);

  const std::vector<std::string> unknown = config.UnconsumedKeys();
  if (!unknown.empty()) {
    std::string joined;
    for (const std::string& key : unknown) {
      if (!joined.empty()) joined += ", ";
      joined += key;
    }
    return Status::InvalidArgument("unknown job config keys: " + joined);
  }
  return request;
}

Status EnsureJobWorkDir(const std::string& path) {
  return EnsureDirectory(path);
}

JobManager::JobManager(Options options) : options_(std::move(options)) {
  // Best-effort: the server binary calls EnsureJobWorkDir first for a clean
  // startup error; this covers direct (test) construction.
  (void)EnsureDirectory(options_.work_dir).ok();
  if (options_.metrics != nullptr) {
    // Pre-register the counters so /metrics exports the full series from
    // boot instead of materializing them on first use.
    for (const char* name :
         {kServerJobsSubmittedCounter, kServerJobsCompletedCounter,
          kServerJobsRejectedCounter, kServerModelCacheHitsCounter,
          kServerModelCacheMissesCounter, kServerJournalRecordsCounter,
          kServerJournalErrorsCounter, kServerJournalRotationsCounter,
          kServerJournalTruncatedBytesCounter,
          kServerJournalQuarantinedCounter, kServerJobsRecoveredCounter,
          kServerJobsRetriedCounter, kServerJobsPoisonedCounter,
          kServerWatchdogStallsCounter}) {
      options_.metrics->GetCounter(name);
    }
  }
  OpenJournal();  // replays + rebuilds state; runs before any thread exists
  runner_ = std::thread([this] { RunnerLoop(); });
  if (options_.stall_timeout_s > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

JobManager::~JobManager() { Shutdown(); }

void JobManager::BumpCounter(const char* name, uint64_t delta) {
  if (options_.metrics != nullptr && delta > 0) {
    options_.metrics->GetCounter(name)->Increment(delta);
  }
}

void JobManager::OpenJournal() {
  JobJournal::ReplayResult replay;
  auto opened = JobJournal::Open(options_.work_dir, options_.journal,
                                 &replay);
  if (!opened.ok()) {
    // A journal we cannot replay (foreign magic, unsupported version) must
    // not take the server down with it, and must not be silently deleted
    // either: move the segments aside for inspection and boot fresh.
    recovery_.journal_error = opened.status().ToString();
    auto quarantined = JobJournal::QuarantineSegments(options_.work_dir);
    if (quarantined.ok()) {
      recovery_.quarantined_segments = quarantined.value();
      BumpCounter(kServerJournalQuarantinedCounter, quarantined.value());
    }
    replay = JobJournal::ReplayResult{};
    opened = JobJournal::Open(options_.work_dir, options_.journal, &replay);
  }
  if (opened.ok()) {
    journal_ = std::move(opened).value();
  } else if (recovery_.journal_error.empty()) {
    // Unwritable work_dir etc.: degrade to the pre-durability in-memory
    // behavior instead of refusing to serve.
    recovery_.journal_error = opened.status().ToString();
  }
  recovery_.truncated_bytes = replay.truncated_bytes;
  BumpCounter(kServerJournalTruncatedBytesCounter, replay.truncated_bytes);
  recovery_.replayed_records = replay.records.size();
  RecoverFromJournal(std::move(replay.records));
}

void JobManager::RecoverFromJournal(std::vector<JournalRecord> records) {
  if (records.empty()) return;
  struct Pending {
    std::string config_text;
    uint32_t attempts = 0;
    uint64_t relations_done = 0;
    bool terminal = false;
    uint8_t terminal_state = 0;
    std::string error;
    uint64_t num_facts = 0;
  };
  // Replay state machine. Each rule is defensive: duplicated records
  // (first submit wins, max attempt wins, last terminal wins) and orphaned
  // records (no prior submit) apply idempotently or drop, so a journal
  // mangled into reorderings still recovers without crashing.
  std::vector<std::string> order;
  std::unordered_map<std::string, Pending> pending;
  for (JournalRecord& record : records) {
    if (record.job_id.empty()) continue;
    auto it = pending.find(record.job_id);
    switch (record.type) {
      case JournalRecord::Type::kSubmitted:
        if (it == pending.end()) {
          pending[record.job_id].config_text = std::move(record.config_text);
          order.push_back(record.job_id);
        }
        break;
      case JournalRecord::Type::kStarted:
        if (it != pending.end()) {
          it->second.attempts = std::max(it->second.attempts, record.attempt);
        }
        break;
      case JournalRecord::Type::kProgress:
        if (it != pending.end()) {
          it->second.relations_done =
              std::max(it->second.relations_done, record.relations_done);
        }
        break;
      case JournalRecord::Type::kTerminal:
        if (it != pending.end()) {
          it->second.terminal = true;
          it->second.terminal_state = record.terminal_state;
          it->second.error = std::move(record.error);
          it->second.num_facts = record.num_facts;
        }
        break;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& id : order) {
    Pending& entry = pending[id];
    auto job = std::make_unique<Job>();
    job->id = id;
    job->recovered = true;
    job->attempts = entry.attempts;
    job->relations_done.store(entry.relations_done,
                              std::memory_order_relaxed);
    job->token = std::make_unique<CancellationToken>();
    next_id_ = std::max(next_id_, JobIdNumber(id) + 1);

    auto parsed = JobRequest::Parse(entry.config_text);
    if (parsed.ok()) {
      job->request = std::move(parsed).value();
    } else {
      job->request.config_text = entry.config_text;
    }

    Job* raw = job.get();
    jobs_.emplace(raw->id, std::move(job));
    job_order_.push_back(raw);

    if (entry.terminal) {
      raw->state = JobStateFromJournal(entry.terminal_state);
      raw->error = std::move(entry.error);
      raw->num_facts = entry.num_facts;
      raw->facts_tsv = ReadFileOrEmpty(FactsPathFor(options_.work_dir, id));
      ++recovery_.jobs_restored;
      continue;
    }
    if (!parsed.ok()) {
      // The submitted bytes no longer parse (format skew across versions):
      // fail the job descriptively instead of crashing the runner on it.
      raw->state = JobState::kFailed;
      raw->error = "recovered job config no longer parses: " +
                   parsed.status().ToString();
      PersistTerminalLocked(raw);
      ++recovery_.jobs_restored;
      continue;
    }
    // A restart grants one attempt beyond the in-process budget (the crash
    // may have been nobody's fault); a job that exceeds even that without
    // reaching terminal is crash-looping the server and gets quarantined
    // instead of a fourth chance.
    const uint32_t boot_budget =
        static_cast<uint32_t>(std::max<size_t>(options_.retry.max_attempts,
                                               1)) +
        1;
    if (raw->attempts >= boot_budget) {
      raw->state = JobState::kFailedPoisoned;
      raw->stopped_reason = StoppedReason::kNone;
      raw->error = "quarantined at boot: " + std::to_string(raw->attempts) +
                   " attempts started without reaching a terminal state "
                   "(crash loop)";
      PersistTerminalLocked(raw);
      ++recovery_.jobs_poisoned;
      BumpCounter(kServerJobsPoisonedCounter);
      continue;
    }
    // Interrupted or never started: back on the queue in submission order.
    // A job that was mid-sweep resumes through its manifest, so recovered
    // output is byte-identical to an uninterrupted run.
    raw->state = JobState::kQueued;
    queue_.push_back(raw);
    ++recovery_.jobs_recovered;
    BumpCounter(kServerJobsRecoveredCounter);
  }
}

void JobManager::JournalAppendLocked(const JournalRecord& record) {
  if (journal_ == nullptr || crashed_.load(std::memory_order_acquire)) {
    return;
  }
  const Status appended = journal_->Append(record);
  if (appended.ok()) {
    BumpCounter(kServerJournalRecordsCounter);
  } else {
    BumpCounter(kServerJournalErrorsCounter);
    return;
  }
  if (journal_->ShouldRotate()) {
    const Status rotated = journal_->Rotate(JournalSnapshotLocked());
    if (rotated.ok()) {
      BumpCounter(kServerJournalRotationsCounter);
    } else {
      // The old segment is still active and intact; compaction will be
      // retried at the next append.
      BumpCounter(kServerJournalErrorsCounter);
    }
  }
}

std::vector<JournalRecord> JobManager::JournalSnapshotLocked() const {
  // Compacted live state: per job, its submission, its attempt high-water
  // mark, and its terminal record. Progress records are cosmetic and are
  // dropped by compaction.
  std::vector<JournalRecord> snapshot;
  snapshot.reserve(job_order_.size() * 3);
  for (const Job* job : job_order_) {
    JournalRecord submitted;
    submitted.type = JournalRecord::Type::kSubmitted;
    submitted.job_id = job->id;
    submitted.config_text = job->request.config_text;
    snapshot.push_back(std::move(submitted));
    if (job->attempts > 0) {
      JournalRecord started;
      started.type = JournalRecord::Type::kStarted;
      started.job_id = job->id;
      started.attempt = job->attempts;
      snapshot.push_back(std::move(started));
    }
    if (job->state != JobState::kQueued && job->state != JobState::kRunning) {
      JournalRecord terminal;
      terminal.type = JournalRecord::Type::kTerminal;
      terminal.job_id = job->id;
      terminal.terminal_state = JobStateToJournal(job->state);
      terminal.error = job->error;
      terminal.num_facts = job->num_facts;
      snapshot.push_back(std::move(terminal));
    }
  }
  return snapshot;
}

void JobManager::PersistTerminalLocked(Job* job) {
  if (crashed_.load(std::memory_order_acquire)) return;
  // The deterministic pre-terminal-flush crash point: a triggered spec
  // here means the job finished in memory but neither its facts file nor
  // its terminal record reach disk — on restart the job re-runs (fast,
  // through its manifest) exactly as after a real kill in this window.
  if (!FailPoints::Instance().Evaluate(kFailPointJournalTerminal).ok()) {
    return;
  }
  // Facts before terminal record: a kTerminal in the journal implies the
  // facts bytes are durable, so a restored `done` job can always serve
  // them. If the facts write fails we skip the terminal record too — the
  // job simply re-runs after a restart.
  const Status facts_written = WriteFileAtomic(
      FactsPathFor(options_.work_dir, job->id), job->facts_tsv);
  if (!facts_written.ok()) {
    BumpCounter(kServerJournalErrorsCounter);
    return;
  }
  JournalRecord record;
  record.type = JournalRecord::Type::kTerminal;
  record.job_id = job->id;
  record.terminal_state = JobStateToJournal(job->state);
  record.error = job->error;
  record.num_facts = job->num_facts;
  JournalAppendLocked(record);
}

Result<std::string> JobManager::Submit(const std::string& config_text) {
  Counter* rejected =
      options_.metrics != nullptr
          ? options_.metrics->GetCounter(kServerJobsRejectedCounter)
          : nullptr;
  KGFD_ASSIGN_OR_RETURN(JobRequest request, JobRequest::Parse(config_text));

  std::lock_guard<std::mutex> lock(mu_);
  if (draining_.load(std::memory_order_acquire)) {
    if (rejected != nullptr) rejected->Increment();
    return Status::FailedPrecondition("server is draining");
  }
  if (queue_.size() >= options_.max_queued) {
    if (rejected != nullptr) rejected->Increment();
    return Status::FailedPrecondition("job queue full");
  }
  auto job = std::make_unique<Job>();
  job->id = "j" + std::to_string(next_id_++);
  job->request = std::move(request);
  job->token = std::make_unique<CancellationToken>();
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  job_order_.push_back(raw);
  queue_.push_back(raw);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerJobsSubmittedCounter)->Increment();
  }
  JournalRecord record;
  record.type = JournalRecord::Type::kSubmitted;
  record.job_id = raw->id;
  record.config_text = raw->request.config_text;
  JournalAppendLocked(record);
  work_available_.notify_one();
  return raw->id;
}

JobStatus JobManager::SnapshotLocked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.error = job.error;
  status.relations_total = job.relations_total;
  status.relations_done = job.relations_done.load(std::memory_order_relaxed);
  status.num_facts = job.num_facts;
  status.stopped_reason = job.stopped_reason;
  status.runtime_seconds = job.runtime_seconds;
  status.attempts = job.attempts;
  status.recovered = job.recovered;
  return status;
}

Result<JobStatus> JobManager::GetStatus(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  return SnapshotLocked(*it->second);
}

Result<std::string> JobManager::FactsTsv(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return Status::FailedPrecondition(
        "job " + id + " is " + JobStateName(job.state) +
        "; facts are available once it is terminal");
  }
  return job.facts_tsv;
}

Status JobManager::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  Job* job = it->second.get();
  if (job->state == JobState::kQueued) {
    // Dequeue immediately: the job never starts, never touches the model
    // or discovery counters, and is terminal the moment this returns.
    for (auto queued = queue_.begin(); queued != queue_.end(); ++queued) {
      if (*queued == job) {
        queue_.erase(queued);
        break;
      }
    }
    job->state = JobState::kCancelled;
    job->stopped_reason = StoppedReason::kCancelled;
    job->user_cancelled = true;
    PersistTerminalLocked(job);
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter(kServerJobsCompletedCounter)->Increment();
    }
    return Status::OK();
  }
  if (job->state == JobState::kRunning) {
    job->user_cancelled = true;
    if (job->token != nullptr) job->token->RequestCancel();
    return Status::OK();
  }
  return Status::OK();  // already terminal — cancellation is idempotent
}

std::vector<JobStatus> JobManager::ListJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> jobs;
  jobs.reserve(job_order_.size());
  for (const Job* job : job_order_) {
    jobs.push_back(SnapshotLocked(*job));
  }
  return jobs;
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.exchange(true, std::memory_order_acq_rel)) {
      // Second caller: fall through to the join below (idempotent).
    } else {
      if (options_.cancel_queued_on_drain) {
        // Queued jobs never run; the in-flight one is cancelled
        // cooperatively so it flushes its manifest before the runner
        // exits.
        for (Job* job : queue_) {
          job->state = JobState::kCancelled;
          job->stopped_reason = StoppedReason::kCancelled;
          job->error = "server shutdown before the job ran";
          PersistTerminalLocked(job);
        }
        queue_.clear();
      }
      // else: leave them queued — their kSubmitted records stay
      // non-terminal in the journal, and the next boot re-enqueues them.
      for (Job* job : job_order_) {
        if (job->state == JobState::kRunning && job->token != nullptr) {
          job->token->RequestCancel();
        }
      }
    }
    work_available_.notify_all();
    watchdog_wakeup_.notify_all();
  }
  if (runner_.joinable()) runner_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void JobManager::KillForTesting() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_.store(true, std::memory_order_release);
    draining_.store(true, std::memory_order_release);
    for (Job* job : job_order_) {
      if (job->state == JobState::kRunning && job->token != nullptr) {
        job->token->RequestCancel();
      }
    }
    work_available_.notify_all();
    watchdog_wakeup_.notify_all();
  }
  if (runner_.joinable()) runner_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void JobManager::RunnerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      // On drain the queue is either already cleared
      // (cancel_queued_on_drain) or deliberately left for the next boot.
      if (draining_.load(std::memory_order_acquire)) return;
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
    }
    RunOne(job);
  }
}

void JobManager::WatchdogLoop() {
  const auto poll = std::chrono::duration<double>(
      options_.watchdog_poll_s > 0 ? options_.watchdog_poll_s : 0.05);
  const int64_t stall_ns =
      static_cast<int64_t>(options_.stall_timeout_s * 1e9);
  std::unique_lock<std::mutex> lock(mu_);
  while (!draining_.load(std::memory_order_acquire)) {
    watchdog_wakeup_.wait_for(lock, poll);
    if (draining_.load(std::memory_order_acquire)) return;
    const int64_t now = NowNs();
    for (Job* job : job_order_) {
      if (job->state != JobState::kRunning) continue;
      const int64_t beat =
          job->last_heartbeat_ns.load(std::memory_order_relaxed);
      if (beat == 0 || now - beat < stall_ns) continue;
      if (!job->stall_cancelled.exchange(true, std::memory_order_acq_rel)) {
        // The attempt is stuck: cancel cooperatively. RunOne sees the
        // stall flag and routes the outcome through the retry budget
        // instead of reporting a user cancellation.
        if (job->token != nullptr) job->token->RequestCancel();
        BumpCounter(kServerWatchdogStallsCounter);
      }
    }
  }
}

void JobManager::Heartbeat(Job* job) {
  job->last_heartbeat_ns.store(NowNs(), std::memory_order_relaxed);
}

void JobManager::RunOne(Job* job) {
  WallTimer timer;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (crashed_.load(std::memory_order_acquire)) return;
      if (draining_.load(std::memory_order_acquire)) {
        // Drain won the race between dequeue and attempt start (or hit a
        // retry boundary): terminal now, without running.
        job->state = JobState::kCancelled;
        job->stopped_reason = StoppedReason::kCancelled;
        job->error = "server shutdown before the job ran";
        job->runtime_seconds = timer.ElapsedSeconds();
        PersistTerminalLocked(job);
        BumpCounter(kServerJobsCompletedCounter);
        return;
      }
      ++job->attempts;
      // A cancelled token stays cancelled; each attempt gets a fresh one.
      job->token = std::make_unique<CancellationToken>();
      job->stall_cancelled.store(false, std::memory_order_release);
      Heartbeat(job);
      JournalRecord record;
      record.type = JournalRecord::Type::kStarted;
      record.job_id = job->id;
      record.attempt = job->attempts;
      JournalAppendLocked(record);
    }

    const Status status = job->request.kind == JobRequest::Kind::kDiscover
                              ? RunDiscoverJob(job)
                              : RunPipelineJob(job);

    std::unique_lock<std::mutex> lock(mu_);
    if (crashed_.load(std::memory_order_acquire)) return;
    job->last_heartbeat_ns.store(0, std::memory_order_relaxed);
    const bool stalled =
        job->stall_cancelled.load(std::memory_order_acquire);
    const bool user_stop = job->user_cancelled ||
                           draining_.load(std::memory_order_acquire);

    // A watchdog stall surfaces as a *graceful* cancellation (OK +
    // stopped_reason=kCancelled, or a kCancelled error from a seam that
    // observed the token first) — distinguish it from a real DELETE/drain
    // by the stall flag.
    bool stall_failure = false;
    if (stalled && !user_stop) {
      stall_failure =
          (status.ok() && job->stopped_reason == StoppedReason::kCancelled) ||
          (!status.ok() && status.code() == StatusCode::kCancelled);
    }
    const bool retryable_error =
        !status.ok() && !user_stop &&
        status.code() != StatusCode::kCancelled &&
        status.code() != StatusCode::kDeadlineExceeded &&
        RetryableCode(options_.retry, status.code());

    if (stall_failure || retryable_error) {
      if (job->attempts <
          std::max<size_t>(options_.retry.max_attempts, 1)) {
        BumpCounter(kServerJobsRetriedCounter);
        continue;  // next attempt (fresh token; manifest resumes the sweep)
      }
      // Budget exhausted: quarantine. Plain kFailed is reserved for
      // non-retryable errors with retries disabled — a job that consumed
      // a multi-attempt budget is poisoned so operators can tell "broken
      // input" from "repeatedly stalling/flaky job".
      if (stall_failure || options_.retry.max_attempts > 1) {
        job->state = JobState::kFailedPoisoned;
        job->error =
            "poisoned after " + std::to_string(job->attempts) +
            " attempts: " +
            (stall_failure
                 ? "watchdog stall (no heartbeat for " +
                       std::to_string(options_.stall_timeout_s) + "s)"
                 : status.ToString());
        BumpCounter(kServerJobsPoisonedCounter);
      } else {
        job->state = JobState::kFailed;
        job->error = status.ToString();
      }
      job->runtime_seconds = timer.ElapsedSeconds();
      PersistTerminalLocked(job);
      BumpCounter(kServerJobsCompletedCounter);
      return;
    }

    job->runtime_seconds = timer.ElapsedSeconds();
    if (!status.ok()) {
      if (status.code() == StatusCode::kCancelled) {
        job->state = JobState::kCancelled;
      } else if (status.code() == StatusCode::kDeadlineExceeded) {
        job->state = JobState::kDeadline;
      } else {
        job->state = JobState::kFailed;
      }
      job->error = status.ToString();
    } else {
      // An OK run may still have stopped early (graceful degradation):
      // partial facts were captured by the Run*Job body, the state records
      // why the sweep ended.
      switch (job->stopped_reason) {
        case StoppedReason::kCancelled:
          job->state = JobState::kCancelled;
          break;
        case StoppedReason::kDeadline:
          job->state = JobState::kDeadline;
          break;
        case StoppedReason::kNone:
          job->state = JobState::kDone;
          break;
      }
    }
    PersistTerminalLocked(job);
    BumpCounter(kServerJobsCompletedCounter);
    return;
  }
}

Result<std::shared_ptr<JobManager::LoadedModel>> JobManager::GetOrLoadModel(
    const std::string& data_dir, const std::string& checkpoint) {
  // The storage backend is part of the cache identity: a cached ram-backed
  // model must not be served after the process switches to mmap (and vice
  // versa) — the caller asked for different storage semantics, not just
  // the same scores. Quantization needs no key component: it is a property
  // of the checkpoint file itself, and HashModelParameters mixes the
  // quantized fingerprint into the DiscoveryCache identity below.
  KGFD_ASSIGN_OR_RETURN(EmbeddingBackend backend, EmbeddingBackendFromEnv());
  const std::string key = data_dir + "\n" + checkpoint + "\n" +
                          EmbeddingBackendName(backend);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = model_cache_.find(key);
    if (it != model_cache_.end()) {
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter(kServerModelCacheHitsCounter)
            ->Increment();
      }
      return it->second;
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerModelCacheMissesCounter)->Increment();
  }
  KGFD_ASSIGN_OR_RETURN(Dataset dataset, LoadDatasetDir(data_dir, data_dir));
  KGFD_ASSIGN_OR_RETURN(std::unique_ptr<Model> model, LoadModel(checkpoint));

  auto loaded = std::make_shared<LoadedModel>();
  loaded->dataset = std::make_shared<Dataset>(std::move(dataset));
  loaded->model = std::shared_ptr<Model>(std::move(model));

  // DiscoveryCache identity: the model parameters plus the graph shape —
  // the same fingerprint core/resume.h manifests pin. Two checkpoint files
  // with identical parameters share a cache; a retrained model gets a
  // fresh one.
  uint64_t fp = HashModelParameters(loaded->model.get());
  const TripleStore& kg = loaded->dataset->train();
  MixFingerprint(&fp, kg.num_entities());
  MixFingerprint(&fp, kg.num_relations());
  MixFingerprint(&fp, kg.size());
  loaded->fingerprint = fp;

  std::lock_guard<std::mutex> lock(mu_);
  auto& cache = caches_[fp];
  if (cache == nullptr) {
    cache = std::make_shared<DiscoveryCache>(options_.metrics);
  }
  loaded->cache = cache;
  model_cache_.emplace(key, loaded);
  return loaded;
}

Status JobManager::RunDiscoverJob(Job* job) {
  KGFD_ASSIGN_OR_RETURN(
      const std::shared_ptr<LoadedModel> loaded,
      GetOrLoadModel(job->request.data_dir, job->request.checkpoint));
  const TripleStore& kg = loaded->dataset->train();
  Heartbeat(job);  // model load can be slow; it is a sign of life

  DiscoveryOptions options = job->request.discovery;
  options.metrics = options_.metrics;
  options.shared_cache = loaded->cache.get();
  options.cancel = CancelContext(
      job->token.get(), job->request.deadline_s > 0
                            ? Deadline::After(job->request.deadline_s)
                            : Deadline());
  options.on_relation_complete = [this, job](RelationCompletion&&) {
    job->relations_done.fetch_add(1, std::memory_order_relaxed);
    Heartbeat(job);
    std::lock_guard<std::mutex> lock(mu_);
    JournalRecord record;
    record.type = JournalRecord::Type::kProgress;
    record.job_id = job->id;
    record.relations_done =
        job->relations_done.load(std::memory_order_relaxed);
    record.rounds_done = job->rounds_done.load(std::memory_order_relaxed);
    JournalAppendLocked(record);
  };
  options.on_round_complete = [this, job](AdaptiveRoundCompletion&&) {
    job->rounds_done.fetch_add(1, std::memory_order_relaxed);
    Heartbeat(job);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->relations_total = options.relations.empty()
                               ? kg.UsedRelations().size()
                               : options.relations.size();
  }

  ResumeOptions resume;
  resume.manifest_path = options_.work_dir + "/" + job->id + ".manifest";
  KGFD_ASSIGN_OR_RETURN(
      const DiscoveryResult result,
      DiscoverFactsResumable(*loaded->model, kg, options, resume,
                             options_.pool));

  std::string tsv =
      FormatFactsTsv(result.facts, loaded->dataset->entity_vocab(),
                     loaded->dataset->relation_vocab());
  std::lock_guard<std::mutex> lock(mu_);
  job->num_facts = result.facts.size();
  job->facts_tsv = std::move(tsv);
  job->stopped_reason = result.stopped_reason;
  return Status::OK();
}

Status JobManager::RunPipelineJob(Job* job) {
  KGFD_ASSIGN_OR_RETURN(const ConfigFile config,
                        ConfigFile::Parse(job->request.config_text));
  // Consume the server-level keys again so JobSpec's unknown-key check
  // (typo safety) does not trip over them.
  (void)config.GetString("job.kind", "discover");
  KGFD_RETURN_NOT_OK(config.GetDouble("deadline_s", 0.0).status());
  KGFD_ASSIGN_OR_RETURN(JobSpec spec, JobSpec::FromConfig(config));
  spec.metrics = options_.metrics;
  spec.cancel = CancelContext(
      job->token.get(), job->request.deadline_s > 0
                            ? Deadline::After(job->request.deadline_s)
                            : Deadline());
  spec.discovery.on_relation_complete = [this, job](RelationCompletion&&) {
    job->relations_done.fetch_add(1, std::memory_order_relaxed);
    Heartbeat(job);
  };

  KGFD_ASSIGN_OR_RETURN(const JobResult result, RunJob(spec));
  std::string tsv;
  size_t num_facts = 0;
  StoppedReason stopped = StoppedReason::kNone;
  if (spec.run_discovery && result.dataset != nullptr) {
    tsv = FormatFactsTsv(result.discovery.facts,
                         result.dataset->entity_vocab(),
                         result.dataset->relation_vocab());
    num_facts = result.discovery.facts.size();
    stopped = result.discovery.stopped_reason;
  }
  std::lock_guard<std::mutex> lock(mu_);
  job->num_facts = num_facts;
  job->facts_tsv = std::move(tsv);
  job->stopped_reason = stopped;
  return Status::OK();
}

}  // namespace kgfd
