#include "server/job_manager.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/job.h"
#include "core/report.h"
#include "core/resume.h"
#include "core/strategy.h"
#include "kg/io.h"
#include "kge/checkpoint.h"
#include "obs/metrics.h"
#include "util/config_file.h"
#include "util/timer.h"

namespace kgfd {
namespace {

/// Mixes one value into a running fingerprint (golden-ratio mix, same
/// shape as boost::hash_combine). Used to extend the model-parameter hash
/// with the graph shape so two models over different KGs never share a
/// DiscoveryCache.
void MixFingerprint(uint64_t* fp, uint64_t v) {
  *fp ^= v + 0x9E3779B97F4A7C15ULL + (*fp << 6) + (*fp >> 2);
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("JobManager work_dir must be set");
  }
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir(" + path +
                           ") failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Reads a strictly positive size from the config (GetInt yields int64, so
/// negatives must be rejected before the size_t cast silently wraps).
Result<size_t> GetPositiveSize(const ConfigFile& config,
                               const std::string& key,
                               size_t default_value) {
  KGFD_ASSIGN_OR_RETURN(
      const int64_t raw,
      config.GetInt(key, static_cast<int64_t>(default_value)));
  if (raw <= 0) {
    return Status::InvalidArgument(key + " must be positive, got " +
                                   std::to_string(raw));
  }
  return static_cast<size_t>(raw);
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kDeadline:
      return "deadline";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<JobRequest> JobRequest::Parse(const std::string& config_text) {
  KGFD_ASSIGN_OR_RETURN(const ConfigFile config,
                        ConfigFile::Parse(config_text));
  JobRequest request;
  request.config_text = config_text;

  const std::string kind = config.GetString("job.kind", "discover");
  KGFD_ASSIGN_OR_RETURN(request.deadline_s,
                        config.GetDouble("deadline_s", 0.0));
  if (request.deadline_s < 0) {
    return Status::InvalidArgument("deadline_s must be >= 0, got " +
                                   std::to_string(request.deadline_s));
  }

  if (kind == "run") {
    request.kind = Kind::kRun;
    // Validate the full pipeline spec now so a bad submission fails at
    // POST time, not minutes later inside the runner. The spec itself is
    // re-parsed from config_text at execution (JobSpec is not copyable
    // here: it carries borrowed metrics/cancel wiring).
    KGFD_ASSIGN_OR_RETURN(const JobSpec spec, JobSpec::FromConfig(config));
    (void)spec;
    return request;
  }
  if (kind != "discover") {
    return Status::InvalidArgument(
        "job.kind must be 'discover' or 'run', got '" + kind + "'");
  }

  request.kind = Kind::kDiscover;
  request.data_dir = config.GetString("data.dir", "");
  if (request.data_dir.empty()) {
    return Status::InvalidArgument("discover job requires data.dir");
  }
  request.checkpoint = config.GetString("model.checkpoint", "");
  if (request.checkpoint.empty()) {
    return Status::InvalidArgument("discover job requires model.checkpoint");
  }

  const std::string strategy_name = config.GetString(
      "discovery.strategy",
      SamplingStrategyName(DefaultSamplingStrategy()));
  KGFD_ASSIGN_OR_RETURN(request.discovery.strategy,
                        SamplingStrategyFromName(strategy_name));
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.adaptive_rounds,
      GetPositiveSize(config, "discovery.adaptive_rounds",
                      request.discovery.adaptive_rounds));
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.adaptive_exploration,
      config.GetDouble("discovery.adaptive_exploration",
                       request.discovery.adaptive_exploration));
  if (!(request.discovery.adaptive_exploration >= 0.0)) {
    return Status::InvalidArgument(
        "discovery.adaptive_exploration must be >= 0");
  }
  KGFD_ASSIGN_OR_RETURN(
      request.discovery.top_n,
      GetPositiveSize(config, "discovery.top_n", request.discovery.top_n));
  KGFD_ASSIGN_OR_RETURN(request.discovery.max_candidates,
                        GetPositiveSize(config, "discovery.max_candidates",
                                        request.discovery.max_candidates));
  KGFD_ASSIGN_OR_RETURN(request.discovery.max_iterations,
                        GetPositiveSize(config, "discovery.max_iterations",
                                        request.discovery.max_iterations));
  KGFD_ASSIGN_OR_RETURN(request.discovery.type_filter,
                        config.GetBool("discovery.type_filter",
                                       request.discovery.type_filter));
  KGFD_ASSIGN_OR_RETURN(request.discovery.filtered_ranking,
                        config.GetBool("discovery.filtered_ranking",
                                       request.discovery.filtered_ranking));
  KGFD_ASSIGN_OR_RETURN(
      const int64_t seed,
      config.GetInt("discovery.seed",
                    static_cast<int64_t>(request.discovery.seed)));
  request.discovery.seed = static_cast<uint64_t>(seed);

  const std::vector<std::string> unknown = config.UnconsumedKeys();
  if (!unknown.empty()) {
    std::string joined;
    for (const std::string& key : unknown) {
      if (!joined.empty()) joined += ", ";
      joined += key;
    }
    return Status::InvalidArgument("unknown job config keys: " + joined);
  }
  return request;
}

Status EnsureJobWorkDir(const std::string& path) {
  return EnsureDirectory(path);
}

JobManager::JobManager(Options options) : options_(std::move(options)) {
  // Best-effort: the server binary calls EnsureJobWorkDir first for a clean
  // startup error; this covers direct (test) construction.
  (void)EnsureDirectory(options_.work_dir).ok();
  if (options_.metrics != nullptr) {
    // Pre-register the job counters so /metrics exports the full series
    // from boot instead of materializing them on first use.
    options_.metrics->GetCounter(kServerJobsSubmittedCounter);
    options_.metrics->GetCounter(kServerJobsCompletedCounter);
    options_.metrics->GetCounter(kServerJobsRejectedCounter);
    options_.metrics->GetCounter(kServerModelCacheHitsCounter);
    options_.metrics->GetCounter(kServerModelCacheMissesCounter);
  }
  runner_ = std::thread([this] { RunnerLoop(); });
}

JobManager::~JobManager() { Shutdown(); }

Result<std::string> JobManager::Submit(const std::string& config_text) {
  Counter* rejected =
      options_.metrics != nullptr
          ? options_.metrics->GetCounter(kServerJobsRejectedCounter)
          : nullptr;
  KGFD_ASSIGN_OR_RETURN(JobRequest request, JobRequest::Parse(config_text));

  std::lock_guard<std::mutex> lock(mu_);
  if (draining_.load(std::memory_order_acquire)) {
    if (rejected != nullptr) rejected->Increment();
    return Status::FailedPrecondition("server is draining");
  }
  if (queue_.size() >= options_.max_queued) {
    if (rejected != nullptr) rejected->Increment();
    return Status::FailedPrecondition("job queue full");
  }
  auto job = std::make_unique<Job>();
  job->id = "j" + std::to_string(next_id_++);
  job->request = std::move(request);
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  job_order_.push_back(raw);
  queue_.push_back(raw);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerJobsSubmittedCounter)->Increment();
  }
  work_available_.notify_one();
  return raw->id;
}

JobStatus JobManager::SnapshotLocked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.error = job.error;
  status.relations_total = job.relations_total;
  status.relations_done = job.relations_done.load(std::memory_order_relaxed);
  status.num_facts = job.num_facts;
  status.stopped_reason = job.stopped_reason;
  status.runtime_seconds = job.runtime_seconds;
  return status;
}

Result<JobStatus> JobManager::GetStatus(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  return SnapshotLocked(*it->second);
}

Result<std::string> JobManager::FactsTsv(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return Status::FailedPrecondition(
        "job " + id + " is " + JobStateName(job.state) +
        "; facts are available once it is terminal");
  }
  return job.facts_tsv;
}

Status JobManager::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no such job: " + id);
  }
  Job* job = it->second.get();
  if (job->state == JobState::kQueued) {
    for (auto queued = queue_.begin(); queued != queue_.end(); ++queued) {
      if (*queued == job) {
        queue_.erase(queued);
        break;
      }
    }
    job->state = JobState::kCancelled;
    job->stopped_reason = StoppedReason::kCancelled;
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter(kServerJobsCompletedCounter)->Increment();
    }
    return Status::OK();
  }
  if (job->state == JobState::kRunning) {
    job->token.RequestCancel();
    return Status::OK();
  }
  return Status::OK();  // already terminal — cancellation is idempotent
}

std::vector<JobStatus> JobManager::ListJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> jobs;
  jobs.reserve(job_order_.size());
  for (const Job* job : job_order_) {
    jobs.push_back(SnapshotLocked(*job));
  }
  return jobs;
}

void JobManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.exchange(true, std::memory_order_acq_rel)) {
      // Second caller: fall through to the join below (idempotent).
    } else {
      // Queued jobs never run; the in-flight one is cancelled
      // cooperatively so it flushes its manifest before the runner exits.
      for (Job* job : queue_) {
        job->state = JobState::kCancelled;
        job->stopped_reason = StoppedReason::kCancelled;
        job->error = "server shutdown before the job ran";
      }
      queue_.clear();
      for (Job* job : job_order_) {
        if (job->state == JobState::kRunning) job->token.RequestCancel();
      }
    }
    work_available_.notify_all();
  }
  if (runner_.joinable()) runner_.join();
}

void JobManager::RunnerLoop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // draining and nothing left
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
    }
    RunOne(job);
  }
}

void JobManager::RunOne(Job* job) {
  WallTimer timer;
  const Status status = job->request.kind == JobRequest::Kind::kDiscover
                            ? RunDiscoverJob(job)
                            : RunPipelineJob(job);
  std::lock_guard<std::mutex> lock(mu_);
  job->runtime_seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    if (status.code() == StatusCode::kCancelled) {
      job->state = JobState::kCancelled;
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      job->state = JobState::kDeadline;
    } else {
      job->state = JobState::kFailed;
    }
    job->error = status.ToString();
  } else {
    // An OK run may still have stopped early (graceful degradation):
    // partial facts were captured by the Run*Job body, the state records
    // why the sweep ended.
    switch (job->stopped_reason) {
      case StoppedReason::kCancelled:
        job->state = JobState::kCancelled;
        break;
      case StoppedReason::kDeadline:
        job->state = JobState::kDeadline;
        break;
      case StoppedReason::kNone:
        job->state = JobState::kDone;
        break;
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerJobsCompletedCounter)->Increment();
  }
}

Result<std::shared_ptr<JobManager::LoadedModel>> JobManager::GetOrLoadModel(
    const std::string& data_dir, const std::string& checkpoint) {
  // The storage backend is part of the cache identity: a cached ram-backed
  // model must not be served after the process switches to mmap (and vice
  // versa) — the caller asked for different storage semantics, not just
  // the same scores. Quantization needs no key component: it is a property
  // of the checkpoint file itself, and HashModelParameters mixes the
  // quantized fingerprint into the DiscoveryCache identity below.
  KGFD_ASSIGN_OR_RETURN(EmbeddingBackend backend, EmbeddingBackendFromEnv());
  const std::string key = data_dir + "\n" + checkpoint + "\n" +
                          EmbeddingBackendName(backend);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = model_cache_.find(key);
    if (it != model_cache_.end()) {
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter(kServerModelCacheHitsCounter)
            ->Increment();
      }
      return it->second;
    }
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerModelCacheMissesCounter)->Increment();
  }
  KGFD_ASSIGN_OR_RETURN(Dataset dataset, LoadDatasetDir(data_dir, data_dir));
  KGFD_ASSIGN_OR_RETURN(std::unique_ptr<Model> model, LoadModel(checkpoint));

  auto loaded = std::make_shared<LoadedModel>();
  loaded->dataset = std::make_shared<Dataset>(std::move(dataset));
  loaded->model = std::shared_ptr<Model>(std::move(model));

  // DiscoveryCache identity: the model parameters plus the graph shape —
  // the same fingerprint core/resume.h manifests pin. Two checkpoint files
  // with identical parameters share a cache; a retrained model gets a
  // fresh one.
  uint64_t fp = HashModelParameters(loaded->model.get());
  const TripleStore& kg = loaded->dataset->train();
  MixFingerprint(&fp, kg.num_entities());
  MixFingerprint(&fp, kg.num_relations());
  MixFingerprint(&fp, kg.size());
  loaded->fingerprint = fp;

  std::lock_guard<std::mutex> lock(mu_);
  auto& cache = caches_[fp];
  if (cache == nullptr) {
    cache = std::make_shared<DiscoveryCache>(options_.metrics);
  }
  loaded->cache = cache;
  model_cache_.emplace(key, loaded);
  return loaded;
}

Status JobManager::RunDiscoverJob(Job* job) {
  KGFD_ASSIGN_OR_RETURN(
      const std::shared_ptr<LoadedModel> loaded,
      GetOrLoadModel(job->request.data_dir, job->request.checkpoint));
  const TripleStore& kg = loaded->dataset->train();

  DiscoveryOptions options = job->request.discovery;
  options.metrics = options_.metrics;
  options.shared_cache = loaded->cache.get();
  options.cancel = CancelContext(
      &job->token, job->request.deadline_s > 0
                       ? Deadline::After(job->request.deadline_s)
                       : Deadline());
  options.on_relation_complete = [job](RelationCompletion&&) {
    job->relations_done.fetch_add(1, std::memory_order_relaxed);
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->relations_total = options.relations.empty()
                               ? kg.UsedRelations().size()
                               : options.relations.size();
  }

  ResumeOptions resume;
  resume.manifest_path = options_.work_dir + "/" + job->id + ".manifest";
  KGFD_ASSIGN_OR_RETURN(
      const DiscoveryResult result,
      DiscoverFactsResumable(*loaded->model, kg, options, resume,
                             options_.pool));

  std::string tsv =
      FormatFactsTsv(result.facts, loaded->dataset->entity_vocab(),
                     loaded->dataset->relation_vocab());
  std::lock_guard<std::mutex> lock(mu_);
  job->num_facts = result.facts.size();
  job->facts_tsv = std::move(tsv);
  job->stopped_reason = result.stopped_reason;
  return Status::OK();
}

Status JobManager::RunPipelineJob(Job* job) {
  KGFD_ASSIGN_OR_RETURN(const ConfigFile config,
                        ConfigFile::Parse(job->request.config_text));
  // Consume the server-level keys again so JobSpec's unknown-key check
  // (typo safety) does not trip over them.
  (void)config.GetString("job.kind", "discover");
  KGFD_RETURN_NOT_OK(config.GetDouble("deadline_s", 0.0).status());
  KGFD_ASSIGN_OR_RETURN(JobSpec spec, JobSpec::FromConfig(config));
  spec.metrics = options_.metrics;
  spec.cancel = CancelContext(
      &job->token, job->request.deadline_s > 0
                       ? Deadline::After(job->request.deadline_s)
                       : Deadline());
  spec.discovery.on_relation_complete = [job](RelationCompletion&&) {
    job->relations_done.fetch_add(1, std::memory_order_relaxed);
  };

  KGFD_ASSIGN_OR_RETURN(const JobResult result, RunJob(spec));
  std::string tsv;
  size_t num_facts = 0;
  StoppedReason stopped = StoppedReason::kNone;
  if (spec.run_discovery && result.dataset != nullptr) {
    tsv = FormatFactsTsv(result.discovery.facts,
                         result.dataset->entity_vocab(),
                         result.dataset->relation_vocab());
    num_facts = result.discovery.facts.size();
    stopped = result.discovery.stopped_reason;
  }
  std::lock_guard<std::mutex> lock(mu_);
  job->num_facts = num_facts;
  job->facts_tsv = std::move(tsv);
  job->stopped_reason = stopped;
  return Status::OK();
}

}  // namespace kgfd
