#ifndef KGFD_SERVER_HTTP_CLIENT_H_
#define KGFD_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/http.h"
#include "util/status.h"

namespace kgfd {

/// Minimal blocking HTTP/1.1 client for tests and tools: opens a TCP
/// connection, sends one request (Connection: close), reads to EOF and
/// parses the response. No TLS, no redirects, no keep-alive — exactly the
/// server's dialect.
Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               double timeout_s = 30.0);

/// GET shorthand.
Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& target,
                             double timeout_s = 30.0);

}  // namespace kgfd

#endif  // KGFD_SERVER_HTTP_CLIENT_H_
