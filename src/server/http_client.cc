#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace kgfd {

Result<HttpResponse> HttpFetch(const std::string& host, uint16_t port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body, double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (timeout_s > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_s - std::floor(timeout_s)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect(" + host + ":" + std::to_string(port) +
                           ") failed: " + err);
  }

  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  request.headers["host"] = host + ":" + std::to_string(port);
  const std::string wire = SerializeHttpRequest(request);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("send failed: " + err);
    }
    sent += static_cast<size_t>(n);
  }

  // Connection: close framing — the response is everything until EOF.
  std::string response_text;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("recv failed: " + err);
    }
    response_text.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseHttpResponse(response_text);
}

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& target, double timeout_s) {
  return HttpFetch(host, port, "GET", target, "", timeout_s);
}

}  // namespace kgfd
