#include "server/job_journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace kgfd {
namespace {

constexpr char kMagic[8] = {'K', 'G', 'F', 'D', 'J', 'N', 'L', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + sizeof(uint32_t);
/// Sanity cap on one record's payload: larger than any legal record (the
/// biggest field is a job config, itself capped by the HTTP 413 body
/// limit), small enough that a corrupt length field cannot drive a huge
/// allocation.
constexpr uint64_t kMaxRecordBytes = 64ull << 20;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

/// Bounds-checked reads off a payload buffer. Every Get* returns false on
/// underrun so a corrupt (but CRC-valid, i.e. version-skewed) payload
/// degrades to "unparseable record", never an out-of-bounds read.
struct PayloadReader {
  const char* data;
  size_t size;
  size_t at = 0;

  bool GetU8(uint8_t* v) {
    if (size - at < sizeof(*v)) return false;
    std::memcpy(v, data + at, sizeof(*v));
    at += sizeof(*v);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (size - at < sizeof(*v)) return false;
    std::memcpy(v, data + at, sizeof(*v));
    at += sizeof(*v);
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (size - at < sizeof(*v)) return false;
    std::memcpy(v, data + at, sizeof(*v));
    at += sizeof(*v);
    return true;
  }
  bool GetString(std::string* s) {
    uint64_t n = 0;
    if (!GetU64(&n)) return false;
    if (n > size - at) return false;
    s->assign(data + at, n);
    at += n;
    return true;
  }
};

bool ParseRecordPayload(const char* data, size_t size, JournalRecord* out) {
  PayloadReader in{data, size};
  uint8_t type = 0;
  if (!in.GetU8(&type)) return false;
  switch (type) {
    case static_cast<uint8_t>(JournalRecord::Type::kSubmitted):
    case static_cast<uint8_t>(JournalRecord::Type::kStarted):
    case static_cast<uint8_t>(JournalRecord::Type::kProgress):
    case static_cast<uint8_t>(JournalRecord::Type::kTerminal):
      break;
    default:
      return false;
  }
  out->type = static_cast<JournalRecord::Type>(type);
  if (!in.GetString(&out->job_id)) return false;
  switch (out->type) {
    case JournalRecord::Type::kSubmitted:
      return in.GetString(&out->config_text);
    case JournalRecord::Type::kStarted:
      return in.GetU32(&out->attempt);
    case JournalRecord::Type::kProgress:
      return in.GetU64(&out->relations_done) && in.GetU64(&out->rounds_done);
    case JournalRecord::Type::kTerminal:
      return in.GetU8(&out->terminal_state) && in.GetString(&out->error) &&
             in.GetU64(&out->num_facts);
  }
  return false;
}

Status WriteFully(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("journal write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open journal segment " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  std::string data;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("read failed on journal segment " + path +
                             ": " + err);
    }
    if (n == 0) break;
    data.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

/// journal.NNNNNN.log -> NNNNNN; 0 when the name does not match.
uint64_t SegmentSeqFromName(const std::string& name) {
  uint64_t seq = 0;
  char trailing = '\0';
  if (std::sscanf(name.c_str(), "journal.%06" SCNu64 ".lo%c", &seq,
                  &trailing) == 2 &&
      trailing == 'g' && name == [&] {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "journal.%06" PRIu64 ".log", seq);
        return std::string(buf);
      }()) {
    return seq;
  }
  return 0;
}

/// All `journal.*.log` segments in `dir`, plus stale `.tmp` leftovers.
struct SegmentScan {
  std::vector<uint64_t> seqs;  // sorted ascending
  std::vector<std::string> stale_tmp;
};

Result<SegmentScan> ScanSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot open journal dir " + dir + ": " +
                           std::string(std::strerror(errno)));
  }
  SegmentScan scan;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const uint64_t seq = SegmentSeqFromName(name);
    if (seq != 0) {
      scan.seqs.push_back(seq);
    } else if (name.rfind("journal.", 0) == 0 &&
               name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      scan.stale_tmp.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(scan.seqs.begin(), scan.seqs.end());
  return scan;
}

}  // namespace

std::string JobJournal::SegmentHeader() {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kFormatVersion);
  return header;
}

std::string JobJournal::EncodeRecord(const JournalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutString(&payload, record.job_id);
  switch (record.type) {
    case JournalRecord::Type::kSubmitted:
      PutString(&payload, record.config_text);
      break;
    case JournalRecord::Type::kStarted:
      PutU32(&payload, record.attempt);
      break;
    case JournalRecord::Type::kProgress:
      PutU64(&payload, record.relations_done);
      PutU64(&payload, record.rounds_done);
      break;
    case JournalRecord::Type::kTerminal:
      payload.push_back(static_cast<char>(record.terminal_state));
      PutString(&payload, record.error);
      PutU64(&payload, record.num_facts);
      break;
  }
  std::string frame;
  frame.reserve(payload.size() + 2 * sizeof(uint32_t));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

JobJournal::JobJournal(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string JobJournal::SegmentPathFor(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "journal.%06" PRIu64 ".log", seq);
  return dir_ + "/" + buf;
}

Status JobJournal::OpenSegmentForAppend(uint64_t seq, uint64_t size) {
  const std::string path = SegmentPathFor(seq);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open journal segment for append " +
                           path + ": " + std::string(std::strerror(errno)));
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  seq_ = seq;
  path_ = path;
  bytes_ = size;
  return Status::OK();
}

Result<std::unique_ptr<JobJournal>> JobJournal::Open(
    const std::string& dir, const Options& options, ReplayResult* replay) {
  KGFD_FAIL_POINT(kFailPointJournalReplay);
  *replay = ReplayResult{};
  KGFD_ASSIGN_OR_RETURN(const SegmentScan scan, ScanSegments(dir));
  // A crash mid-rotation may leave a half-written `.tmp`; it was never
  // renamed, so it never became authoritative — drop it.
  for (const std::string& tmp : scan.stale_tmp) ::unlink(tmp.c_str());

  std::unique_ptr<JobJournal> journal(new JobJournal(dir, options));
  if (scan.seqs.empty()) {
    // Fresh journal: segment 1 with just the header.
    const std::string path = journal->SegmentPathFor(1);
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IoError("cannot create journal segment " + path +
                             ": " + std::string(std::strerror(errno)));
    }
    const std::string header = SegmentHeader();
    const Status written = WriteFully(fd, header);
    ::close(fd);
    KGFD_RETURN_NOT_OK(written);
    KGFD_RETURN_NOT_OK(journal->OpenSegmentForAppend(1, header.size()));
    replay->segment_seq = 1;
    return journal;
  }

  // Replay the newest segment only: rotation writes a complete snapshot,
  // so older segments are strictly stale (kept until this replay succeeds,
  // in case the newest one turns out not to be ours).
  const uint64_t seq = scan.seqs.back();
  const std::string path = journal->SegmentPathFor(seq);
  KGFD_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));

  uint64_t valid_end = 0;
  if (data.size() < kHeaderBytes) {
    // Torn header: the segment was created but the crash hit before even
    // the 12 header bytes landed. Nothing was ever recorded in it —
    // rewrite the header and recover empty.
    replay->truncated_bytes = data.size();
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IoError("cannot rewrite torn journal segment " + path +
                             ": " + std::string(std::strerror(errno)));
    }
    const std::string header = SegmentHeader();
    const Status written = WriteFully(fd, header);
    ::close(fd);
    KGFD_RETURN_NOT_OK(written);
    valid_end = header.size();
  } else {
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::IoError("not a kgfd job journal (bad magic): " + path);
    }
    uint32_t version = 0;
    std::memcpy(&version, data.data() + sizeof(kMagic), sizeof(version));
    if (version != kFormatVersion) {
      return Status::IoError("unsupported job journal version " +
                             std::to_string(version) + ": " + path);
    }
    // Walk the frames. The first frame that is short, oversized, or fails
    // its CRC marks the torn/corrupt tail: truncate there and stop. A
    // CRC-valid but unparseable payload (version skew) truncates too —
    // nothing after an unintelligible record can be trusted to apply in
    // order.
    size_t at = kHeaderBytes;
    valid_end = at;
    while (data.size() - at >= 2 * sizeof(uint32_t)) {
      uint32_t len = 0;
      uint32_t crc = 0;
      std::memcpy(&len, data.data() + at, sizeof(len));
      std::memcpy(&crc, data.data() + at + sizeof(len), sizeof(crc));
      const size_t payload_at = at + 2 * sizeof(uint32_t);
      if (len > kMaxRecordBytes || len > data.size() - payload_at) break;
      if (Crc32(data.data() + payload_at, len) != crc) break;
      JournalRecord record;
      if (!ParseRecordPayload(data.data() + payload_at, len, &record)) break;
      replay->records.push_back(std::move(record));
      at = payload_at + len;
      valid_end = at;
    }
    replay->truncated_bytes = data.size() - valid_end;
    if (replay->truncated_bytes > 0) {
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
        return Status::IoError("cannot truncate torn journal tail of " +
                               path + ": " +
                               std::string(std::strerror(errno)));
      }
    }
  }

  // The newest segment replayed: older ones are now provably stale.
  for (const uint64_t old_seq : scan.seqs) {
    if (old_seq != seq) ::unlink(journal->SegmentPathFor(old_seq).c_str());
  }
  KGFD_RETURN_NOT_OK(journal->OpenSegmentForAppend(seq, valid_end));
  replay->segment_seq = seq;
  return journal;
}

Status JobJournal::Append(const JournalRecord& record) {
  KGFD_FAIL_POINT(kFailPointJournalAppend);
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  const std::string frame = EncodeRecord(record);
  KGFD_RETURN_NOT_OK(WriteFully(fd_, frame));
  if (options_.fsync && ::fdatasync(fd_) != 0) {
    return Status::IoError("journal fdatasync failed: " +
                           std::string(std::strerror(errno)));
  }
  bytes_ += frame.size();
  return Status::OK();
}

Status JobJournal::Rotate(const std::vector<JournalRecord>& snapshot) {
  KGFD_FAIL_POINT(kFailPointJournalRotate);
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  const uint64_t next_seq = seq_ + 1;
  const std::string next_path = SegmentPathFor(next_seq);
  const std::string tmp_path = next_path + ".tmp";

  std::string contents = SegmentHeader();
  for (const JournalRecord& record : snapshot) {
    contents.append(EncodeRecord(record));
  }
  {
    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IoError("cannot create journal segment " + tmp_path +
                             ": " + std::string(std::strerror(errno)));
    }
    const Status written = WriteFully(fd, contents);
    if (!written.ok()) {
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return written;
    }
    // The snapshot must be on disk before the rename makes it
    // authoritative, or a crash could leave a hollow newest segment.
    if (::fdatasync(fd) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IoError("journal fdatasync failed: " + err);
    }
    ::close(fd);
  }
  if (std::rename(tmp_path.c_str(), next_path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::IoError("rename failed: " + tmp_path + " -> " +
                           next_path + ": " + err);
  }
  const std::string old_path = path_;
  KGFD_RETURN_NOT_OK(OpenSegmentForAppend(next_seq, contents.size()));
  ::unlink(old_path.c_str());
  return Status::OK();
}

Result<size_t> JobJournal::QuarantineSegments(const std::string& dir) {
  KGFD_ASSIGN_OR_RETURN(const SegmentScan scan, ScanSegments(dir));
  size_t moved = 0;
  JobJournal namer(dir, Options{});
  for (const uint64_t seq : scan.seqs) {
    const std::string path = namer.SegmentPathFor(seq);
    const std::string corrupt = path + ".corrupt";
    if (std::rename(path.c_str(), corrupt.c_str()) == 0) ++moved;
  }
  return moved;
}

}  // namespace kgfd
