#ifndef KGFD_SERVER_HTTP_SERVER_H_
#define KGFD_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "server/http.h"
#include "util/status.h"

namespace kgfd {

class ThreadPool;

/// Metric names recorded when HttpServer::Options::metrics is set.
inline constexpr char kServerRequestsCounter[] = "server.requests";
inline constexpr char kServerRequestErrorsCounter[] =
    "server.requests.errors";
inline constexpr char kServerRequestSecondsHist[] =
    "server.request.seconds";
/// Connections whose client stopped sending mid-request (SO_RCVTIMEO) or
/// stopped reading mid-response (SO_SNDTIMEO, the slow-loris reader).
inline constexpr char kServerRecvTimeoutsCounter[] =
    "server.requests.recv_timeouts";
inline constexpr char kServerSendTimeoutsCounter[] =
    "server.requests.send_timeouts";

class MetricsRegistry;

/// Thread-per-connection HTTP/1.1 server: a dedicated accept thread hands
/// each connection off to a worker task on the provided ThreadPool, which
/// reads one request, invokes the handler, writes the response and closes
/// (`Connection: close` — the job API is poll-based, keep-alive buys
/// nothing). Binds to loopback-or-given address; port 0 picks an ephemeral
/// port, readable via port() after Start() (how the integration tests avoid
/// collisions).
///
/// Shutdown is graceful by construction: Stop() closes the listening socket
/// (no new connections), then blocks until every in-flight connection task
/// has finished, so a handler is never torn mid-response.
class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
    /// Requests with a larger body are rejected with 413 before buffering.
    size_t max_body_bytes = 8u << 20;
    /// Per-socket receive timeout; a client that stops sending mid-request
    /// cannot hold a worker (and block drain) longer than this. A timed-out
    /// request gets a best-effort 408 before the close.
    double receive_timeout_s = 10.0;
    /// Per-socket send timeout (SO_SNDTIMEO): a slow-loris client reading a
    /// large /jobs/<id>/facts response a few bytes at a time cannot pin a
    /// connection worker past this; the connection is closed and counted
    /// in server.requests.send_timeouts.
    double send_timeout_s = 10.0;
    /// Test hook: shrink the kernel send buffer (SO_SNDBUF) so a
    /// non-reading client back-pressures SendAll quickly. 0 = OS default.
    int send_buffer_bytes = 0;
    /// Connection tasks run here. Required, borrowed.
    ThreadPool* pool = nullptr;
    /// Optional request count/error/latency metrics (names above).
    MetricsRegistry* metrics = nullptr;
  };

  /// The application: one full request in, one response out. Must be
  /// thread-safe (connections are concurrent).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Options options, Handler handler);
  /// Calls Stop() if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails (IoError) if the
  /// address cannot be bound.
  Status Start();

  /// The bound port (resolves ephemeral port 0); valid after Start().
  uint16_t port() const { return port_; }

  /// Stops accepting, then waits for all in-flight connection tasks.
  /// Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable idle_;
  size_t active_connections_ = 0;
};

}  // namespace kgfd

#endif  // KGFD_SERVER_HTTP_SERVER_H_
