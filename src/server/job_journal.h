#ifndef KGFD_SERVER_JOB_JOURNAL_H_
#define KGFD_SERVER_JOB_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgfd {

/// Durable write-ahead journal for the job queue: every job lifecycle
/// transition (submitted / started / progress / terminal) is appended to a
/// CRC-guarded segment file under the server's --work_dir, so a crashed or
/// redeployed server can rebuild its queue on boot instead of silently
/// dropping every accepted job (see JobManager recovery in job_manager.h).
///
/// Durability model:
///  * Each record is framed `[u32 length][u32 crc32(payload)][payload]`.
///    Replay verifies the CRC before parsing a single byte, so a torn tail
///    (crash mid-append) or a bit flip is detected, the segment is
///    truncated back to its last valid record, and recovery continues —
///    never a SIGBUS, abort, or garbage parse.
///  * Segments are rotated by *compaction*: a snapshot of the live state is
///    written to `journal.<seq+1>.log.tmp` and atomically renamed over the
///    `.tmp` suffix, then older segments are unlinked. Replay always uses
///    the highest-numbered complete segment; a crash at any point during
///    rotation leaves either the old segment, or the old and the new, or
///    the new alone — all of which recover to the same state.
///  * Appends hit the page cache by default (a SIGKILL'd process's writes
///    survive; only a kernel crash or power loss can lose the tail). Set
///    Options::fsync for fdatasync-per-append when that window matters.
///
/// Not thread-safe: the owner (JobManager) serializes all calls under its
/// own lock.

/// One journal entry. The record grammar (DESIGN.md §10): a `kSubmitted`
/// record creates a job, `kStarted` marks one execution attempt,
/// `kProgress` is a cosmetic relations/rounds heartbeat, and `kTerminal`
/// closes the job. Replay tolerates duplicated, reordered, or orphaned
/// records (each rule is defensive; see JobManager::RecoverFromJournal).
struct JournalRecord {
  enum class Type : uint8_t {
    kSubmitted = 1,
    kStarted = 2,
    kProgress = 3,
    kTerminal = 4,
  };

  Type type = Type::kSubmitted;
  std::string job_id;
  /// kSubmitted: the original POST /jobs body, re-parsed on recovery.
  std::string config_text;
  /// kStarted: 1-based execution attempt (carries retry counts across
  /// restarts, so a job that crashes the server repeatedly is quarantined
  /// instead of crash-looping forever).
  uint32_t attempt = 0;
  /// kProgress.
  uint64_t relations_done = 0;
  uint64_t rounds_done = 0;
  /// kTerminal: stable on-disk encoding of JobState (see
  /// JobStateToJournal / JobStateFromJournal in job_manager.cc).
  uint8_t terminal_state = 0;
  std::string error;
  uint64_t num_facts = 0;
};

class JobJournal {
 public:
  struct Options {
    /// Rotate (compact) once the active segment exceeds this many bytes.
    uint64_t rotate_bytes = 4ull << 20;
    /// fdatasync every append (power-loss durability; default relies on
    /// the page cache, which survives SIGKILL but not a kernel crash).
    bool fsync = false;
  };

  /// What Open() reconstructed, for logging/metrics and for the owner's
  /// state rebuild.
  struct ReplayResult {
    std::vector<JournalRecord> records;
    /// Bytes dropped from the active segment's torn/corrupt tail (0 on a
    /// clean shutdown). The segment was physically truncated to drop them.
    uint64_t truncated_bytes = 0;
    /// Sequence number of the segment replayed (and now active).
    uint64_t segment_seq = 1;
  };

  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Opens (or creates) the journal in `dir`, replaying the highest
  /// complete segment into `replay`. Stale `.tmp` segments and — once the
  /// newest segment replayed successfully — older segments are removed.
  /// A segment that is not a kgfd journal (bad magic/version) yields a
  /// descriptive IoError and touches nothing; the caller decides whether
  /// to quarantine (QuarantineSegments) or abort startup.
  static Result<std::unique_ptr<JobJournal>> Open(const std::string& dir,
                                                  const Options& options,
                                                  ReplayResult* replay);

  /// Appends one record to the active segment (write-through to the OS;
  /// fdatasync when Options::fsync). IoError leaves the journal usable —
  /// the record is simply not durable.
  Status Append(const JournalRecord& record);

  /// True once the active segment has outgrown Options::rotate_bytes and
  /// the owner should compact via Rotate().
  bool ShouldRotate() const { return bytes_ >= options_.rotate_bytes; }

  /// Compacts: writes `snapshot` to a fresh segment (tmp + atomic rename),
  /// switches appends to it, then unlinks the previous segment. On error
  /// the old segment stays active and intact.
  Status Rotate(const std::vector<JournalRecord>& snapshot);

  /// Bytes in the active segment (header + records).
  uint64_t bytes() const { return bytes_; }
  /// Active segment path (for tests and operator tooling).
  const std::string& segment_path() const { return path_; }

  /// Renames every `journal.*.log` in `dir` to `<name>.corrupt` so a
  /// damaged journal can be inspected later while the server boots with a
  /// fresh one. Returns the number of segments moved.
  static Result<size_t> QuarantineSegments(const std::string& dir);

  /// Serialization of one record (frame + payload), exposed for tests that
  /// hand-craft corrupt segments.
  static std::string EncodeRecord(const JournalRecord& record);
  /// The fixed segment header (magic + version) every segment begins with.
  static std::string SegmentHeader();

 private:
  JobJournal(std::string dir, Options options);

  std::string SegmentPathFor(uint64_t seq) const;
  Status OpenSegmentForAppend(uint64_t seq, uint64_t size);

  std::string dir_;
  Options options_;
  std::string path_;
  int fd_ = -1;
  uint64_t seq_ = 1;
  uint64_t bytes_ = 0;
};

}  // namespace kgfd

#endif  // KGFD_SERVER_JOB_JOURNAL_H_
