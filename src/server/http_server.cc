#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgfd {
namespace {

/// Full-buffer send. MSG_NOSIGNAL everywhere: a client that closed early
/// must surface as an error return, never as a process-killing SIGPIPE.
/// `timed_out`, when non-null, is set if the send gave up because the
/// socket's SO_SNDTIMEO expired (the client stopped reading).
bool SendAll(int fd, const std::string& data, bool* timed_out = nullptr) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          timed_out != nullptr) {
        *timed_out = true;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

timeval TimevalFromSeconds(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  return tv;
}

/// Reads one framed request (head + Content-Length body) off the socket.
/// Returns InvalidArgument for malformed framing, IoError for socket
/// trouble, and a special "too large" InvalidArgument the caller maps to
/// 413.
Status RecvRequestText(int fd, size_t max_body_bytes, std::string* out) {
  std::string buffer;
  char chunk[4096];
  size_t head_end = std::string::npos;
  uint64_t content_length = 0;
  while (true) {
    if (head_end == std::string::npos) {
      head_end = HttpHeaderEnd(buffer);
      if (head_end != std::string::npos) {
        // Head complete: learn how much body to expect (head-only parse —
        // the body may still be in flight).
        const auto parsed = ParseHttpRequestHead(buffer.substr(0, head_end));
        if (!parsed.ok()) return parsed.status();
        KGFD_ASSIGN_OR_RETURN(content_length,
                              HttpContentLength(parsed.value().headers));
        if (content_length > max_body_bytes) {
          return Status::InvalidArgument("request body too large");
        }
      } else if (buffer.size() > max_body_bytes + 8192) {
        return Status::InvalidArgument("request head too large");
      }
    }
    if (head_end != std::string::npos &&
        buffer.size() >= head_end + content_length) {
      *out = std::move(buffer);
      return Status::OK();
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("connection closed before full request");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the client started a request and stalled.
        // Distinct from plain IoError so the caller can close with a
        // descriptive 408 instead of silence.
        return Status::DeadlineExceeded(
            "timed out waiting for the rest of the request");
      }
      return Status::IoError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.pool == nullptr) {
    return Status::InvalidArgument("HttpServer requires a ThreadPool");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) +
                           ") failed: " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname() failed: " + err);
  }
  port_ = ntohs(bound.sin_port);
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after Stop() closed the socket: normal shutdown.
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_connections_;
    }
    options_.pool->Submit([this, fd] {
      ServeConnection(fd);
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_connections_ == 0) idle_.notify_all();
    });
  }
}

void HttpServer::ServeConnection(int fd) {
  WallTimer timer;
  // Bound how long a silent client can hold this worker, in both
  // directions: a client that stops sending its request (SO_RCVTIMEO) and
  // one that stops reading its response (SO_SNDTIMEO, the slow-loris
  // reader of a large facts TSV).
  if (options_.receive_timeout_s > 0) {
    const timeval tv = TimevalFromSeconds(options_.receive_timeout_s);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options_.send_timeout_s > 0) {
    const timeval tv = TimevalFromSeconds(options_.send_timeout_s);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (options_.send_buffer_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
  }

  Counter* requests = nullptr;
  Counter* errors = nullptr;
  if (options_.metrics != nullptr) {
    requests = options_.metrics->GetCounter(kServerRequestsCounter);
    errors = options_.metrics->GetCounter(kServerRequestErrorsCounter);
  }

  std::string text;
  const Status recv_status =
      RecvRequestText(fd, options_.max_body_bytes, &text);
  HttpResponse response;
  if (!recv_status.ok()) {
    if (recv_status.code() == StatusCode::kIoError) {
      // Nothing parseable arrived (client vanished): no response is owed;
      // just close.
      ::close(fd);
      return;
    }
    if (recv_status.code() == StatusCode::kDeadlineExceeded) {
      // Stalled mid-request: best-effort descriptive 408, then close.
      if (options_.metrics != nullptr) {
        options_.metrics->GetCounter(kServerRecvTimeoutsCounter)
            ->Increment();
      }
      response = TextResponse(408, recv_status.message());
    } else {
      const bool too_large =
          recv_status.message().find("too large") != std::string::npos;
      response = TextResponse(too_large ? 413 : 400, recv_status.message());
    }
  } else {
    const auto request = ParseHttpRequest(text);
    if (!request.ok()) {
      response = TextResponse(400, request.status().message());
    } else {
      response = handler_(request.value());
    }
  }
  if (requests != nullptr) {
    requests->Increment();
    if (response.status_code >= 400) errors->Increment();
    options_.metrics->GetHistogram(kServerRequestSecondsHist)
        ->Observe(timer.ElapsedSeconds());
  }
  bool send_timed_out = false;
  SendAll(fd, SerializeHttpResponse(response), &send_timed_out);
  if (send_timed_out && options_.metrics != nullptr) {
    options_.metrics->GetCounter(kServerSendTimeoutsCounter)->Increment();
  }
  ::shutdown(fd, SHUT_WR);  // flush FIN before close
  ::close(fd);
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listening socket pops the accept thread out of accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: every connection already accepted finishes its response.
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return active_connections_ == 0; });
  started_ = false;
}

}  // namespace kgfd
