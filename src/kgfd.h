#ifndef KGFD_KGFD_H_
#define KGFD_KGFD_H_

/// Umbrella header for the kgfd public API: knowledge-graph storage,
/// synthetic benchmark datasets, graph analytics, knowledge-graph embedding
/// models with training/evaluation, the fact-discovery algorithm with its
/// sampling strategies (including the adaptive bandit subsystem), and the
/// discovery-as-a-service HTTP server.

#include "adaptive/scheduler.h"       // IWYU pragma: export
#include "adaptive/score_sketch.h"    // IWYU pragma: export
#include "core/discovery.h"           // IWYU pragma: export
#include "core/discovery_cache.h"     // IWYU pragma: export
#include "core/embedding_analysis.h"  // IWYU pragma: export
#include "core/experiment.h"          // IWYU pragma: export
#include "core/job.h"                 // IWYU pragma: export
#include "core/report.h"              // IWYU pragma: export
#include "core/resume.h"              // IWYU pragma: export
#include "core/strategy.h"            // IWYU pragma: export
#include "core/type_filter.h"         // IWYU pragma: export
#include "graph/adjacency.h"   // IWYU pragma: export
#include "graph/metrics.h"     // IWYU pragma: export
#include "graph/pagerank.h"    // IWYU pragma: export
#include "kg/dataset.h"        // IWYU pragma: export
#include "kg/io.h"             // IWYU pragma: export
#include "kg/kg_stats.h"       // IWYU pragma: export
#include "kg/leakage.h"        // IWYU pragma: export
#include "kg/relation_stats.h" // IWYU pragma: export
#include "kg/synthetic.h"      // IWYU pragma: export
#include "kg/triple_store.h"   // IWYU pragma: export
#include "kg/types.h"          // IWYU pragma: export
#include "kg/vocab.h"          // IWYU pragma: export
#include "kge/checkpoint.h"       // IWYU pragma: export
#include "kge/embedding_store.h"  // IWYU pragma: export
#include "kge/evaluator.h"     // IWYU pragma: export
#include "kge/grid_search.h"   // IWYU pragma: export
#include "kge/kernels.h"       // IWYU pragma: export
#include "kge/model.h"         // IWYU pragma: export
#include "kge/trainer.h"       // IWYU pragma: export
#include "server/discovery_service.h"  // IWYU pragma: export
#include "server/http.h"               // IWYU pragma: export
#include "server/http_client.h"        // IWYU pragma: export
#include "server/http_server.h"        // IWYU pragma: export
#include "server/job_journal.h"        // IWYU pragma: export
#include "server/job_manager.h"        // IWYU pragma: export
#include "obs/export.h"        // IWYU pragma: export
#include "obs/metrics.h"       // IWYU pragma: export
#include "obs/span.h"          // IWYU pragma: export
#include "util/cancellation.h" // IWYU pragma: export
#include "util/crc32.h"        // IWYU pragma: export
#include "util/failpoint.h"    // IWYU pragma: export
#include "util/retry.h"        // IWYU pragma: export
#include "util/status.h"       // IWYU pragma: export

#endif  // KGFD_KGFD_H_
