#include "util/status.h"

namespace kgfd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::AbortIfNotOk(const char* context) const {
  if (ok()) return;
  std::cerr << "Fatal status";
  if (context != nullptr) std::cerr << " in " << context;
  std::cerr << ": " << ToString() << "\n";
  std::abort();
}

}  // namespace kgfd
