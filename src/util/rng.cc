#include "util/rng.h"

#include <cmath>

namespace kgfd {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace kgfd
