#ifndef KGFD_UTIL_STATUS_H_
#define KGFD_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace kgfd {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of machine-readable codes plus a
/// human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  /// The operation was cancelled cooperatively (CancellationToken).
  kCancelled,
  /// A Deadline expired before the operation finished.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. All fallible public APIs in kgfd return Status
/// (or Result<T>) instead of throwing; exceptions never cross the library
/// boundary.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

  /// Aborts the process with a diagnostic if the status is not OK. Use only
  /// in examples, benches and tests, never in library code.
  void AbortIfNotOk(const char* context = nullptr) const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error carrier: holds either a T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; aborts (in debug builds, asserts) if the
  /// status is OK, which would leave the Result with no value.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    if (std::get<Status>(value_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Returns the value. Must only be called when ok().
  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::move(std::get<T>(value_)); }

  /// Returns the value, aborting with a diagnostic on error. For examples,
  /// benches and tests.
  T ValueOrDie(const char* context = nullptr) && {
    if (!ok()) status().AbortIfNotOk(context);
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates an error status out of the current function.
#define KGFD_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::kgfd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define KGFD_CONCAT_IMPL(a, b) a##b
#define KGFD_CONCAT(a, b) KGFD_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` may include a declaration, e.g.
/// KGFD_ASSIGN_OR_RETURN(auto ds, LoadDataset(path));
#define KGFD_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto KGFD_CONCAT(_result_, __LINE__) = (rexpr);                \
  if (!KGFD_CONCAT(_result_, __LINE__).ok())                     \
    return KGFD_CONCAT(_result_, __LINE__).status();             \
  lhs = std::move(KGFD_CONCAT(_result_, __LINE__)).value()

}  // namespace kgfd

#endif  // KGFD_UTIL_STATUS_H_
