#ifndef KGFD_UTIL_FAILPOINT_H_
#define KGFD_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace kgfd {

class MetricsRegistry;
class Counter;

/// Names of the fail points compiled into the library (the "hot seams":
/// dataset I/O, model checkpointing, job phase boundaries, the discovery
/// relation loop, resume-manifest persistence, and thread-pool dispatch).
/// Tests and the CLI's --failpoints flag refer to sites by these names.
inline constexpr char kFailPointKgIoRead[] = "kg.io.read";
inline constexpr char kFailPointKgIoWrite[] = "kg.io.write";
inline constexpr char kFailPointCheckpointSave[] = "kge.checkpoint.save";
inline constexpr char kFailPointCheckpointLoad[] = "kge.checkpoint.load";
inline constexpr char kFailPointJobDataset[] = "core.job.dataset";
inline constexpr char kFailPointJobTrain[] = "core.job.train";
inline constexpr char kFailPointJobEval[] = "core.job.eval";
inline constexpr char kFailPointJobDiscovery[] = "core.job.discovery";
inline constexpr char kFailPointDiscoveryRelation[] =
    "core.discovery.relation";
inline constexpr char kFailPointResumeSave[] = "core.resume.save";
inline constexpr char kFailPointResumeLoad[] = "core.resume.load";
/// Evaluated at every cancellation checkpoint inside DiscoverFacts (per
/// relation and per ranking chunk). A return-mode spec here simulates a
/// stop request: inject Cancelled or DeadlineExceeded to drive the
/// graceful-shutdown path deterministically from tests.
inline constexpr char kFailPointDiscoveryCancel[] = "discovery.cancel";
/// Delay-only site (task dispatch has no Status channel): return-mode specs
/// enabled here count hits but never trigger.
inline constexpr char kFailPointThreadPoolDispatch[] = "threadpool.dispatch";
/// Job-journal seams (server durability, DESIGN.md §10): every record
/// append, segment rotation, and boot-time replay. A return-mode spec on
/// append/terminal simulates a crash between the in-memory transition and
/// its durable record — exactly the window restart recovery must close.
inline constexpr char kFailPointJournalAppend[] = "server.journal.append";
inline constexpr char kFailPointJournalRotate[] = "server.journal.rotate";
inline constexpr char kFailPointJournalReplay[] = "server.journal.replay";
/// Evaluated by JobManager just before a job's terminal flush (facts TSV
/// persist + terminal journal record): the deterministic
/// "crash pre-terminal-flush" chaos point.
inline constexpr char kFailPointJournalTerminal[] = "server.journal.terminal";

/// Every instrumented site, for documentation and coverage tests.
inline constexpr const char* kAllFailPointSites[] = {
    kFailPointKgIoRead,        kFailPointKgIoWrite,
    kFailPointCheckpointSave,  kFailPointCheckpointLoad,
    kFailPointJobDataset,      kFailPointJobTrain,
    kFailPointJobEval,         kFailPointJobDiscovery,
    kFailPointDiscoveryRelation, kFailPointResumeSave,
    kFailPointResumeLoad,      kFailPointDiscoveryCancel,
    kFailPointThreadPoolDispatch, kFailPointJournalAppend,
    kFailPointJournalRotate,   kFailPointJournalReplay,
    kFailPointJournalTerminal,
};

/// One parsed fail-point configuration. The textual grammar (inspired by
/// the Rust `fail` crate) is
///
///   [SKIP+][PROB%][MAX*]ACTION[(ARGS)]
///
/// where ACTION is one of
///   off            count hits only, inject nothing
///   return         inject an error Status (default IoError)
///   return(CODE[,MESSAGE])   inject the named StatusCode
///   delay(MS)      sleep MS milliseconds, then continue normally
///
/// and the optional modifiers mean: skip the first SKIP hits, then trigger
/// with probability PROB percent, at most MAX times total. Examples:
///
///   return(IoError)          every hit fails with IoError
///   2+return(IoError)        hits 3, 4, 5, ... fail
///   3*return                 the first 3 hits fail, later ones succeed
///   50%delay(10)             half of all hits sleep 10 ms
///   1+25%2*return(Internal)  after the first hit, fail with p=.25, twice
struct FailPointSpec {
  static constexpr uint64_t kUnlimited = UINT64_MAX;

  enum class Action { kOff, kReturnError, kDelay };

  Action action = Action::kOff;
  /// Injected status code (kReturnError).
  StatusCode code = StatusCode::kIoError;
  /// Injected status message; empty = "injected fault at <site>".
  std::string message;
  /// Sleep duration (kDelay).
  uint64_t delay_ms = 0;
  /// Probability in [0, 1] that an eligible hit triggers.
  double probability = 1.0;
  /// Hits to let through untouched before becoming eligible.
  uint64_t skip = 0;
  /// Cap on total triggers.
  uint64_t max_triggers = kUnlimited;

  static Result<FailPointSpec> Parse(const std::string& text);
};

/// Process-wide registry of fault-injection sites. Library code marks a
/// site with KGFD_FAIL_POINT("name"); the site is a single relaxed atomic
/// load when no fail point is armed, so production paths pay nothing.
///
/// Activation is programmatic (Enable / EnableFromSpec) or via the
/// KGFD_FAILPOINTS environment variable, read once at first use with the
/// same "site=spec;site2=spec2" syntax as EnableFromSpec.
///
/// While any site is armed, *every* evaluated site records hit counts, and
/// armed sites additionally record trigger counts; both are exported as
/// counters ("failpoint.<site>.hits" / "failpoint.<site>.triggers") when a
/// MetricsRegistry is attached. All methods are thread-safe.
class FailPoints {
 public:
  static FailPoints& Instance();

  FailPoints(const FailPoints&) = delete;
  FailPoints& operator=(const FailPoints&) = delete;

  /// Arms `site` with a parsed spec ("off" arms hit counting only).
  Status Enable(const std::string& site, const std::string& spec_text);
  Status Enable(const std::string& site, const FailPointSpec& spec);
  /// Parses "site=spec;site2=spec2" (';' or newline separated) and arms
  /// every entry. Empty segments are ignored.
  Status EnableFromSpec(const std::string& multi_spec);
  /// Disarms one site (counters are kept until Reset).
  void Disable(const std::string& site);
  /// Disarms every site.
  void DisableAll();
  /// Disarms everything and clears counters, seed and metrics attachment.
  /// Test fixtures call this between tests.
  void Reset();

  /// Starts mirroring per-site hit/trigger counts into `metrics`;
  /// nullptr detaches.
  void AttachMetrics(MetricsRegistry* metrics);
  /// Reseeds the per-site RNG streams driving probabilistic specs.
  void SetSeed(uint64_t seed);

  /// Evaluates `site`: returns the injected error if an armed return-mode
  /// spec triggers, applying delays inline. OK in every other case.
  Status Evaluate(const char* site);
  /// Delay-only evaluation for void contexts (thread-pool dispatch):
  /// return-mode specs count hits but cannot trigger here.
  void EvaluateDelay(const char* site);

  /// True if any site is armed (the Evaluate fast path, exposed for tests).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Times `site` was evaluated while the registry was armed.
  uint64_t HitCount(const std::string& site) const;
  /// Times `site` actually injected its action.
  uint64_t TriggerCount(const std::string& site) const;
  /// Currently armed sites, sorted.
  std::vector<std::string> ArmedSites() const;

 private:
  struct SiteState {
    FailPointSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t triggers = 0;
    Rng rng;
    Counter* hits_counter = nullptr;
    Counter* triggers_counter = nullptr;
  };

  FailPoints();

  /// Requires mu_ held; creates the site record on first touch.
  SiteState& SiteLocked(const std::string& site);
  void ResolveCountersLocked(const std::string& site, SiteState* state);

  Status EvaluateSlow(const char* site, bool allow_error);

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<uint64_t> armed_count_{0};
  MetricsRegistry* metrics_ = nullptr;
  uint64_t seed_ = 0x5bd1e995u;
};

/// Marks a fail-point site inside a Status- or Result-returning function:
/// propagates the injected error when the site triggers, no-op otherwise.
#define KGFD_FAIL_POINT(site) \
  KGFD_RETURN_NOT_OK(::kgfd::FailPoints::Instance().Evaluate(site))

}  // namespace kgfd

#endif  // KGFD_UTIL_FAILPOINT_H_
