#ifndef KGFD_UTIL_STRING_UTIL_H_
#define KGFD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgfd {

/// Splits on a single delimiter character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace kgfd

#endif  // KGFD_UTIL_STRING_UTIL_H_
