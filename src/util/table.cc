#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace kgfd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Fmt(size_t v) { return std::to_string(v); }
std::string Table::Fmt(int64_t v) { return std::to_string(v); }

std::string Table::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsv();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace kgfd
