#ifndef KGFD_UTIL_CANCELLATION_H_
#define KGFD_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace kgfd {

/// Cooperative cancellation and deadlines for long-running jobs (discovery
/// sweeps, training, evaluation). Nothing here preempts anything: library
/// code polls a CancelContext at cheap checkpoints (per relation, per
/// ranking chunk, per training batch) and winds down gracefully when a stop
/// is requested — completed work is kept, manifests are flushed, and the
/// caller learns why the run stopped.

/// Metric names recorded by code that observes a cancellation (see
/// src/obs/). `cancel.requested` counts runs that saw a stop request;
/// `cancel.observed_seconds` is the latency from RequestCancel() to the
/// first checkpoint that noticed it — the "how fast does ctrl-C take
/// effect" number.
inline constexpr char kCancelRequestedCounter[] = "cancel.requested";
inline constexpr char kCancelObservedSecondsHist[] =
    "cancel.observed_seconds";

/// Why a run stopped before finishing its full workload.
enum class StoppedReason {
  kNone = 0,       ///< ran to completion
  kCancelled = 1,  ///< CancellationToken::RequestCancel (e.g. SIGINT)
  kDeadline = 2,   ///< Deadline expired
};

/// Stable name ("none", "cancelled", "deadline") for logs and reports.
const char* StoppedReasonName(StoppedReason reason);

/// Maps a reason to the matching error Status (kNone maps to OK). `context`
/// names the operation in the message; may be null.
Status StoppedStatus(StoppedReason reason, const char* context);

/// A manually triggered stop signal, shareable across threads. Checking is
/// one relaxed-ish atomic load; requesting is async-signal-safe (atomics
/// and clock_gettime only), so a SIGINT handler may call RequestCancel()
/// directly. A token cannot be un-cancelled — create a fresh one per run.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent; the first call records the request
  /// time so observers can report signal-to-stop latency.
  void RequestCancel() noexcept;

  bool IsCancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while not cancelled; Status::Cancelled naming `context` afterwards.
  Status CheckCancelled(const char* context = nullptr) const;

  /// Seconds elapsed since the first RequestCancel(); 0 if not cancelled.
  double SecondsSinceRequest() const;

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock nanos of the first RequestCancel (0 = never).
  std::atomic<int64_t> request_time_ns_{0};
};

/// Installs a process-wide SIGINT + SIGTERM handler that requests
/// cancellation on `token` (which must outlive the handler's use; pass
/// nullptr to detach and restore default disposition). The handler only
/// flips the token — the interrupted job winds down at its next
/// cancellation checkpoint, flushing manifests and metrics on the way out.
void InstallSignalCancellation(CancellationToken* token);

/// A wall-clock budget. Default-constructed deadlines never expire.
/// Deadlines are plain values: copy them freely into option structs.
class Deadline {
 public:
  /// No deadline: Expired() is always false.
  Deadline() = default;

  /// Expires `seconds` from now (steady clock). Non-positive budgets are
  /// already expired.
  static Deadline After(double seconds);

  bool has_deadline() const { return has_deadline_; }
  bool Expired() const;

  /// Seconds until expiry; +inf when unset, <= 0 once expired.
  double RemainingSeconds() const;

  /// OK while unexpired; Status::DeadlineExceeded naming `context` after.
  Status CheckExpired(const char* context = nullptr) const;

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// The bundle library code actually polls: an optional external token plus
/// an optional deadline. Copyable value (the token is borrowed, not owned);
/// a default-constructed context never stops anything, so existing callers
/// pay one branch per checkpoint.
class CancelContext {
 public:
  CancelContext() = default;
  explicit CancelContext(const CancellationToken* token,
                         Deadline deadline = Deadline())
      : token_(token), deadline_(deadline) {}
  explicit CancelContext(Deadline deadline) : deadline_(deadline) {}

  /// True if this context can ever request a stop.
  bool CanStop() const {
    return token_ != nullptr || deadline_.has_deadline();
  }

  /// kNone while the run may continue; the stop reason otherwise. Token
  /// cancellation wins over deadline expiry when both hold. The deadline
  /// branch reads the clock — call at checkpoint granularity (per relation,
  /// chunk or batch), not per element of a tight inner loop.
  StoppedReason StopReason() const {
    if (token_ != nullptr && token_->IsCancelled()) {
      return StoppedReason::kCancelled;
    }
    if (deadline_.Expired()) return StoppedReason::kDeadline;
    return StoppedReason::kNone;
  }

  /// StopReason() as a Status (OK / Cancelled / DeadlineExceeded).
  Status Check(const char* context = nullptr) const {
    return StoppedStatus(StopReason(), context);
  }

  const CancellationToken* token() const { return token_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  const CancellationToken* token_ = nullptr;
  Deadline deadline_;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_CANCELLATION_H_
