#ifndef KGFD_UTIL_CONFIG_FILE_H_
#define KGFD_UTIL_CONFIG_FILE_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgfd {

/// Flat `key = value` configuration file (a minimal stand-in for the YAML
/// job definitions the paper praises in LibKGE §4.1.1). Grammar:
///   * one `dotted.key = value` pair per line,
///   * `#` starts a comment (full-line or trailing),
///   * blank lines ignored, whitespace trimmed,
///   * duplicate keys are an error (config typos should not silently win).
class ConfigFile {
 public:
  static Result<ConfigFile> Load(const std::string& path);
  /// Parses from a string (used by tests and inline configs).
  static Result<ConfigFile> Parse(const std::string& text);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  Result<double> GetDouble(const std::string& key,
                           double default_value) const;
  Result<bool> GetBool(const std::string& key, bool default_value) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Keys consumed via any getter so far; RemainingKeys() flags typos.
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> entries_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_CONFIG_FILE_H_
