#ifndef KGFD_UTIL_RETRY_H_
#define KGFD_UTIL_RETRY_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

#include "util/status.h"

namespace kgfd {

class MetricsRegistry;

/// Metric names recorded when RetryPolicy::metrics is set.
inline constexpr char kRetryAttemptsCounter[] = "retry.attempts";
inline constexpr char kRetryBackoffsCounter[] = "retry.backoffs";
inline constexpr char kRetryExhaustedCounter[] = "retry.exhausted";

/// Bounded-retry policy with exponential backoff, wrapped around the
/// transient-failure-prone I/O paths (dataset loading, checkpoint and
/// resume-manifest I/O). Only IoError is considered transient by default.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  size_t max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  /// Per-attempt timeout: a *failed* attempt that ran longer than this is
  /// treated as non-transient and returned immediately instead of retried
  /// (bounds worst-case wall time to roughly max_attempts * timeout).
  /// 0 disables the bound. Successful attempts are never discarded.
  double attempt_timeout_ms = 0.0;
  /// Extra codes to retry besides kIoError; null = IoError only.
  bool (*retryable)(StatusCode) = nullptr;
  /// When set, records retry.attempts / retry.backoffs / retry.exhausted.
  MetricsRegistry* metrics = nullptr;
};

/// True if `policy` retries `code` (the policy's predicate, or the default
/// IoError-only rule).
bool RetryableCode(const RetryPolicy& policy, StatusCode code);

/// Backoff before attempt `attempt` (1-based count of failures so far):
/// initial * multiplier^(attempt-1), capped at max_backoff_ms.
double RetryBackoffMs(const RetryPolicy& policy, size_t failures);

namespace internal {
/// Sleeps and records the backoff counter.
void RetrySleep(const RetryPolicy& policy, size_t failures);
void RecordAttempt(const RetryPolicy& policy);
void RecordExhausted(const RetryPolicy& policy);
/// Wraps the terminal error with attempt context (no-op on the first
/// attempt, where nothing was retried and the message should stay pristine).
Status DecorateExhausted(const RetryPolicy& policy, const char* op,
                         size_t attempts, Status status);
}  // namespace internal

/// Runs `fn` until it succeeds or the policy gives up; see RetryPolicy for
/// the stop conditions. `op` names the operation in the final error.
template <typename T>
Result<T> Retry(const RetryPolicy& policy, const char* op,
                const std::function<Result<T>()>& fn) {
  const size_t max_attempts = policy.max_attempts == 0
                                  ? size_t{1}
                                  : policy.max_attempts;
  for (size_t attempt = 1;; ++attempt) {
    internal::RecordAttempt(policy);
    const auto start = std::chrono::steady_clock::now();
    Result<T> result = fn();
    if (result.ok()) return result;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (!RetryableCode(policy, result.status().code())) return result;
    if (policy.attempt_timeout_ms > 0.0 &&
        elapsed_ms > policy.attempt_timeout_ms) {
      return internal::DecorateExhausted(policy, op, attempt,
                                         result.status());
    }
    if (attempt >= max_attempts) {
      return internal::DecorateExhausted(policy, op, attempt,
                                         result.status());
    }
    internal::RetrySleep(policy, attempt);
  }
}

/// Status-returning flavor of Retry.
Status RetryStatus(const RetryPolicy& policy, const char* op,
                   const std::function<Status()>& fn);

}  // namespace kgfd

#endif  // KGFD_UTIL_RETRY_H_
