#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace kgfd {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  double var = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    var += (v - s.mean) * (v - s.mean);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double q) {
    const double idx = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.median = pct(0.5);
  s.p90 = pct(0.9);
  s.p99 = pct(0.99);
  return s;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::Add(double v) {
  const double span = hi_ - lo_;
  size_t bin = 0;
  if (span > 0) {
    double frac = (v - lo_) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    bin = std::min(static_cast<size_t>(frac * static_cast<double>(bins())),
                   bins() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::BinLow(size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::BinHigh(size_t bin) const { return BinLow(bin + 1); }

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 1;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (size_t b = 0; b < bins(); ++b) {
    const size_t bar =
        counts_[b] * width / max_count;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%8.4f, %8.4f) %8zu ", BinLow(b),
                  BinHigh(b), counts_[b]);
    out << buf << std::string(bar, '#') << "\n";
  }
  return out.str();
}

Result<double> ChiSquareStatistic(const std::vector<size_t>& observed,
                                  const std::vector<double>& expected_probs) {
  if (observed.size() != expected_probs.size()) {
    return Status::InvalidArgument(
        "observed and expected_probs must have equal length");
  }
  size_t n = 0;
  for (size_t o : observed) n += o;
  if (n == 0) return Status::InvalidArgument("no observations");
  double chi2 = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(n);
    if (expected <= 0.0) {
      if (observed[i] != 0) {
        return Status::InvalidArgument(
            "observation in zero-probability bucket");
      }
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace kgfd
