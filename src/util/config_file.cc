#include "util/config_file.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace kgfd {

Result<ConfigFile> ConfigFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open config: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

Result<ConfigFile> ConfigFile::Parse(const std::string& text) {
  ConfigFile config;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("config line " +
                                     std::to_string(line_no) +
                                     ": expected 'key = value'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("config line " +
                                     std::to_string(line_no) +
                                     ": empty key");
    }
    if (!config.entries_.emplace(key, value).second) {
      return Status::InvalidArgument("duplicate config key: " + key);
    }
  }
  return config;
}

bool ConfigFile::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string ConfigFile::GetString(const std::string& key,
                                  const std::string& default_value) const {
  consumed_[key] = true;
  auto it = entries_.find(key);
  return it == entries_.end() ? default_value : it->second;
}

Result<int64_t> ConfigFile::GetInt(const std::string& key,
                                   int64_t default_value) const {
  consumed_[key] = true;
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not an integer: " + it->second);
  }
  return v;
}

Result<double> ConfigFile::GetDouble(const std::string& key,
                                     double default_value) const {
  consumed_[key] = true;
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not a number: " + it->second);
  }
  return v;
}

Result<bool> ConfigFile::GetBool(const std::string& key,
                                 bool default_value) const {
  consumed_[key] = true;
  auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "' is not a boolean: " + it->second);
}

std::vector<std::string> ConfigFile::UnconsumedKeys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_) {
    if (!consumed_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace kgfd
