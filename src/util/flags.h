#ifndef KGFD_UTIL_FLAGS_H_
#define KGFD_UTIL_FLAGS_H_

#include <map>
#include <string>

#include "util/status.h"

namespace kgfd {

/// Minimal command-line flag parser for the bench and example binaries.
/// Accepts `--name=value` and `--name value`; bare `--name` is treated as
/// the boolean "true". Unknown positional arguments are rejected.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_FLAGS_H_
