#ifndef KGFD_UTIL_RNG_H_
#define KGFD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kgfd {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the library (negative sampling,
/// entity sampling, embedding init, synthetic data generation) takes an
/// explicit Rng so experiments are reproducible end-to-end from one seed.
///
/// Not thread-safe; give each worker its own Rng (see Fork()).
class Rng {
 public:
  /// Seeds the generator. The same seed always produces the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased method.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal variate (Box-Muller, cached pair).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Deterministically derives an independent child generator. Used to hand
  /// per-worker or per-relation streams out of one master seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_RNG_H_
