#ifndef KGFD_UTIL_CRC32_H_
#define KGFD_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kgfd {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by zlib
/// and PNG. Binary artifacts (model checkpoints, resume manifests) append
/// a 4-byte little-endian CRC of the payload so loaders can reject
/// truncated or bit-flipped files with a clear error instead of parsing
/// garbage.

/// Incremental update: feed `crc = 0` for the first chunk, then thread the
/// returned value through subsequent chunks.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// One-shot CRC of a buffer.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

}  // namespace kgfd

#endif  // KGFD_UTIL_CRC32_H_
