#ifndef KGFD_UTIL_THREAD_POOL_H_
#define KGFD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgfd {

class Counter;
class Gauge;
class MetricsRegistry;

/// Metric names AttachMetrics registers (see src/obs/).
inline constexpr char kThreadPoolTasksSubmitted[] =
    "threadpool.tasks.submitted";
inline constexpr char kThreadPoolTasksCompleted[] =
    "threadpool.tasks.completed";
inline constexpr char kThreadPoolQueueDepth[] = "threadpool.queue.depth";

/// Fixed-size worker pool used for data-parallel loops (batch scoring,
/// corruption ranking). Tasks are plain std::function<void()>; Wait() blocks
/// until all submitted tasks have finished.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Starts recording tasks-submitted/completed counters and a queue-depth
  /// gauge (with high-water mark) into `metrics`; nullptr detaches. Call
  /// before submitting work.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and no task is running.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  // Resolved once by AttachMetrics; accessed under mu_.
  Counter* tasks_submitted_ = nullptr;
  Counter* tasks_completed_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

/// Splits [0, n) into contiguous chunks and runs `body(begin, end)` on the
/// pool, blocking until completion. With a null pool (or a single worker and
/// small n) the body runs inline, which keeps single-core machines free of
/// synchronization overhead.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace kgfd

#endif  // KGFD_UTIL_THREAD_POOL_H_
