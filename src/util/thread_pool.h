#ifndef KGFD_UTIL_THREAD_POOL_H_
#define KGFD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kgfd {

class CancelContext;
class Counter;
class Gauge;
class MetricsRegistry;

/// Metric names AttachMetrics registers (see src/obs/).
inline constexpr char kThreadPoolTasksSubmitted[] =
    "threadpool.tasks.submitted";
inline constexpr char kThreadPoolTasksCompleted[] =
    "threadpool.tasks.completed";
inline constexpr char kThreadPoolQueueDepth[] = "threadpool.queue.depth";
/// Gauge: number of live TaskGroups (high-water mark tracks peak nesting /
/// concurrency of ParallelFor callers).
inline constexpr char kThreadPoolGroupsActive[] = "threadpool.groups.active";
/// Counter: tasks executed inline by a thread blocked in TaskGroup::Wait
/// (work-assisting wait), as opposed to a pool worker.
inline constexpr char kThreadPoolTasksHelped[] = "threadpool.tasks.helped";

/// Fixed-size worker pool used for data-parallel loops (batch scoring,
/// corruption ranking). Tasks are plain std::function<void()>.
///
/// Waiting comes in two flavors:
///  - ThreadPool::Wait() blocks until *every* task submitted to the pool has
///    finished — pool-global, only meaningful when a single caller owns the
///    pool's whole workload.
///  - ThreadPool::TaskGroup scopes Wait() to the tasks submitted through
///    that group, so independent callers (concurrent ParallelFor from two
///    threads, or a nested ParallelFor issued from inside a pool task) never
///    wait on — or deadlock against — each other's work.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// A handle scoping Wait() to the tasks submitted through it. Wait() is
  /// work-assisting: while this group has queued tasks, the waiting thread
  /// pops and runs them itself instead of blocking, which makes nested
  /// ParallelFor (a pool task waiting on sub-tasks of the same pool) both
  /// deadlock-free and fast even when every worker is busy.
  ///
  /// A group is owned by one submitting thread: Submit() and Wait() may not
  /// race with each other from different threads (the tasks themselves run
  /// anywhere, of course).
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool);
    /// Blocks until all of this group's tasks finished (equivalent to
    /// Wait()), then unregisters the group.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues a task belonging to this group.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted through this group has finished.
    /// Tasks of *other* groups are neither waited on nor stolen, so
    /// recursion depth stays bounded by the caller's own nesting depth.
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* const pool_;
    /// Unfinished tasks of this group; guarded by pool_->mu_.
    size_t pending_ = 0;
    /// Signalled each time one of this group's tasks completes.
    std::condition_variable done_;
  };

  size_t num_threads() const { return workers_.size(); }

  /// Starts recording tasks-submitted/completed/helped counters and
  /// queue-depth / groups-active gauges (with high-water marks) into
  /// `metrics`; nullptr detaches. Call before submitting work.
  void AttachMetrics(MetricsRegistry* metrics);

  /// Enqueues an ungrouped task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and no task is running — including
  /// tasks submitted by other threads or through TaskGroups. Prefer
  /// TaskGroup::Wait for anything that can run concurrently or nested.
  void Wait();

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;  // nullptr for ungrouped Submit()
  };

  void WorkerLoop();
  void Enqueue(std::function<void()> fn, TaskGroup* group);
  /// Marks `task`'s bookkeeping as finished; requires mu_ held.
  void FinishTaskLocked(const Task& task);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  size_t groups_active_ = 0;
  bool shutdown_ = false;
  // Resolved once by AttachMetrics; accessed under mu_.
  Counter* tasks_submitted_ = nullptr;
  Counter* tasks_completed_ = nullptr;
  Counter* tasks_helped_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  Gauge* groups_active_gauge_ = nullptr;
};

/// Splits [0, n) into chunks and runs `body(begin, end)` on the pool,
/// blocking until completion. Scheduling is dynamic: workers claim small
/// chunks off a shared atomic index, so skewed per-index costs load-balance
/// instead of serializing behind the slowest static shard. The calling
/// thread participates via TaskGroup::Wait's work-assisting loop, which also
/// makes nested and concurrent ParallelFor calls on one pool safe.
///
/// With a null pool, a single worker, or n == 1 the body runs inline —
/// exactly one body(0, n) call, which callers may rely on for the serial
/// path. Chunk boundaries are otherwise unspecified; bodies must be correct
/// for any partition of [0, n).
///
/// When `cancel` is non-null, workers re-check it before claiming each
/// chunk and stop claiming once a stop is requested, so even a loop with
/// many queued chunks winds down within one chunk's latency. Chunks that
/// already started still finish (bodies are never interrupted mid-range);
/// the caller decides what to do with partially filled output. On the
/// serial path the single body call is only skipped when the context is
/// already stopped on entry.
///
/// `grain` rounds every chunk size up to a multiple of itself (the final
/// chunk may be a remainder), so bodies that process indices in fixed-size
/// sub-blocks — batch scoring kernels working in kernels::kQueryBlock
/// groups — never receive a sliver smaller than one block except at the end
/// of the range. grain == 1 (the default) is plain dynamic chunking.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 const CancelContext* cancel = nullptr, size_t grain = 1);

}  // namespace kgfd

#endif  // KGFD_UTIL_THREAD_POOL_H_
