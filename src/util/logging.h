#ifndef KGFD_UTIL_LOGGING_H_
#define KGFD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kgfd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo. Not synchronized: set it once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KGFD_LOG(level)                                               \
  ::kgfd::internal::LogMessage(::kgfd::LogLevel::k##level, __FILE__, \
                               __LINE__)

}  // namespace kgfd

#endif  // KGFD_UTIL_LOGGING_H_
