#include "util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgfd {

namespace {

/// FNV-1a, used to derive a per-site RNG stream from the registry seed.
uint64_t HashSiteName(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Result<StatusCode> StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kNotImplemented,
        StatusCode::kCancelled, StatusCode::kDeadlineExceeded}) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code: " + name);
}

Result<uint64_t> ParseUint(const std::string& text,
                           const std::string& what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("failpoint spec: bad " + what + ": '" +
                                   text + "'");
  }
  return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

}  // namespace

Result<FailPointSpec> FailPointSpec::Parse(const std::string& text) {
  FailPointSpec spec;
  std::string s = Trim(text);
  if (s.empty()) {
    return Status::InvalidArgument("failpoint spec: empty");
  }

  // Modifiers: a number followed by '+' (skip), '%' (probability) or
  // '*' (max triggers), repeated.
  for (;;) {
    const size_t digits = s.find_first_not_of("0123456789.");
    if (digits == 0 || digits == std::string::npos) break;
    const char kind = s[digits];
    if (kind != '+' && kind != '%' && kind != '*') break;
    const std::string number = s.substr(0, digits);
    if (kind == '%') {
      char* end = nullptr;
      const double percent = std::strtod(number.c_str(), &end);
      if (end != number.c_str() + number.size() || percent < 0.0 ||
          percent > 100.0) {
        return Status::InvalidArgument(
            "failpoint spec: bad probability: '" + number + "%'");
      }
      spec.probability = percent / 100.0;
    } else if (kind == '+') {
      KGFD_ASSIGN_OR_RETURN(spec.skip, ParseUint(number, "skip count"));
    } else {
      KGFD_ASSIGN_OR_RETURN(spec.max_triggers,
                            ParseUint(number, "trigger cap"));
    }
    s.erase(0, digits + 1);
  }

  // Action word with optional parenthesized arguments.
  std::string action = s;
  std::vector<std::string> args;
  const size_t paren = s.find('(');
  if (paren != std::string::npos) {
    if (s.back() != ')') {
      return Status::InvalidArgument("failpoint spec: unbalanced '(' in '" +
                                     text + "'");
    }
    action = s.substr(0, paren);
    const std::string inner = s.substr(paren + 1, s.size() - paren - 2);
    if (!inner.empty()) {
      for (const std::string& a : Split(inner, ',')) {
        args.push_back(Trim(a));
      }
    }
  }

  if (action == "off") {
    spec.action = Action::kOff;
    if (!args.empty()) {
      return Status::InvalidArgument("failpoint spec: off takes no args");
    }
  } else if (action == "return") {
    spec.action = Action::kReturnError;
    if (!args.empty()) {
      KGFD_ASSIGN_OR_RETURN(spec.code, StatusCodeFromName(args[0]));
      if (args.size() > 1) spec.message = args[1];
      if (args.size() > 2) {
        return Status::InvalidArgument(
            "failpoint spec: return takes at most (CODE, MESSAGE)");
      }
    }
  } else if (action == "delay") {
    spec.action = Action::kDelay;
    if (args.size() != 1) {
      return Status::InvalidArgument("failpoint spec: delay requires (MS)");
    }
    KGFD_ASSIGN_OR_RETURN(spec.delay_ms, ParseUint(args[0], "delay ms"));
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action '" +
                                   action + "'");
  }
  return spec;
}

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

FailPoints::FailPoints() {
  const char* env = std::getenv("KGFD_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    const Status status = EnableFromSpec(env);
    if (!status.ok()) {
      KGFD_LOG(Warn) << "ignoring invalid KGFD_FAILPOINTS: "
                     << status.ToString();
    }
  }
}

FailPoints::SiteState& FailPoints::SiteLocked(const std::string& site) {
  auto [it, inserted] = sites_.try_emplace(site);
  if (inserted) {
    it->second.rng = Rng(HashSiteName(site) ^ seed_);
    ResolveCountersLocked(site, &it->second);
  }
  return it->second;
}

void FailPoints::ResolveCountersLocked(const std::string& site,
                                       SiteState* state) {
  if (metrics_ == nullptr) {
    state->hits_counter = nullptr;
    state->triggers_counter = nullptr;
    return;
  }
  state->hits_counter = metrics_->GetCounter("failpoint." + site + ".hits");
  state->triggers_counter =
      metrics_->GetCounter("failpoint." + site + ".triggers");
}

Status FailPoints::Enable(const std::string& site,
                          const std::string& spec_text) {
  KGFD_ASSIGN_OR_RETURN(const FailPointSpec spec,
                        FailPointSpec::Parse(spec_text));
  return Enable(site, spec);
}

Status FailPoints::Enable(const std::string& site,
                          const FailPointSpec& spec) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint site name is empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = SiteLocked(site);
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.spec = spec;
  return Status::OK();
}

Status FailPoints::EnableFromSpec(const std::string& multi_spec) {
  std::string normalized = multi_spec;
  std::replace(normalized.begin(), normalized.end(), '\n', ';');
  for (const std::string& entry : Split(normalized, ';')) {
    const std::string trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "failpoint spec entry missing '=': '" + trimmed + "'");
    }
    KGFD_RETURN_NOT_OK(
        Enable(Trim(trimmed.substr(0, eq)), Trim(trimmed.substr(eq + 1))));
  }
  return Status::OK();
}

void FailPoints::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.spec = FailPointSpec();
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailPoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : sites_) {
    if (state.armed) {
      state.armed = false;
      state.spec = FailPointSpec();
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FailPoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  metrics_ = nullptr;
  seed_ = 0x5bd1e995u;
}

void FailPoints::AttachMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  for (auto& [name, state] : sites_) ResolveCountersLocked(name, &state);
}

void FailPoints::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [name, state] : sites_) {
    state.rng = Rng(HashSiteName(name) ^ seed_);
  }
}

Status FailPoints::Evaluate(const char* site) {
  if (!AnyArmed()) return Status::OK();
  return EvaluateSlow(site, /*allow_error=*/true);
}

void FailPoints::EvaluateDelay(const char* site) {
  if (!AnyArmed()) return;
  // allow_error=false means EvaluateSlow can only apply delays, never fail.
  (void)EvaluateSlow(site, /*allow_error=*/false);
}

Status FailPoints::EvaluateSlow(const char* site, bool allow_error) {
  uint64_t delay_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = SiteLocked(site);
    ++state.hits;
    if (state.hits_counter != nullptr) state.hits_counter->Increment();
    if (state.armed && state.spec.action != FailPointSpec::Action::kOff) {
      const FailPointSpec& spec = state.spec;
      const bool action_applies =
          spec.action == FailPointSpec::Action::kDelay ||
          (spec.action == FailPointSpec::Action::kReturnError && allow_error);
      const bool eligible = action_applies && state.hits > spec.skip &&
                            state.triggers < spec.max_triggers &&
                            (spec.probability >= 1.0 ||
                             state.rng.UniformDouble() < spec.probability);
      if (eligible) {
        ++state.triggers;
        if (state.triggers_counter != nullptr) {
          state.triggers_counter->Increment();
        }
        if (spec.action == FailPointSpec::Action::kDelay) {
          delay_ms = spec.delay_ms;
        } else {
          injected = Status(spec.code,
                            spec.message.empty()
                                ? "injected fault at " + std::string(site)
                                : spec.message);
        }
      }
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return injected;
}

uint64_t FailPoints::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

std::vector<std::string> FailPoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> armed;
  for (const auto& [name, state] : sites_) {
    if (state.armed) armed.push_back(name);
  }
  std::sort(armed.begin(), armed.end());
  return armed;
}

}  // namespace kgfd
