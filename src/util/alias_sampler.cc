#include "util/alias_sampler.h"

namespace kgfd {

Result<AliasSampler> AliasSampler::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("alias sampler needs at least one weight");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("all weights are zero");
  }

  const size_t n = weights.size();
  AliasSampler sampler;
  sampler.prob_.assign(n, 0.0);
  sampler.alias_.assign(n, 0);
  sampler.normalized_.assign(n, 0.0);

  // Scaled probabilities; stable two-worklist construction (Vose).
  std::vector<double> scaled(n);
  std::vector<size_t> small;
  std::vector<size_t> large;
  for (size_t i = 0; i < n; ++i) {
    sampler.normalized_[i] = weights[i] / total;
    scaled[i] = sampler.normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    sampler.prob_[s] = scaled[s];
    sampler.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) sampler.prob_[i] = 1.0;
  for (size_t i : small) sampler.prob_[i] = 1.0;  // numerical leftovers
  return sampler;
}

size_t AliasSampler::Sample(Rng* rng) const {
  const size_t column = static_cast<size_t>(rng->UniformInt(prob_.size()));
  return rng->UniformDouble() < prob_[column] ? column : alias_[column];
}

std::vector<size_t> AliasSampler::SampleMany(size_t n, Rng* rng) const {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = Sample(rng);
  return out;
}

}  // namespace kgfd
