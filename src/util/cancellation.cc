#include "util/cancellation.h"

#include <csignal>

namespace kgfd {

namespace {

using SteadyClock = std::chrono::steady_clock;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StoppedReasonName(StoppedReason reason) {
  switch (reason) {
    case StoppedReason::kNone:
      return "none";
    case StoppedReason::kCancelled:
      return "cancelled";
    case StoppedReason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

Status StoppedStatus(StoppedReason reason, const char* context) {
  const char* what = context != nullptr ? context : "operation";
  switch (reason) {
    case StoppedReason::kNone:
      return Status::OK();
    case StoppedReason::kCancelled:
      return Status::Cancelled(std::string(what) + " cancelled");
    case StoppedReason::kDeadline:
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its deadline");
  }
  return Status::Internal("unknown StoppedReason");
}

void CancellationToken::RequestCancel() noexcept {
  // Record the time before publishing the flag so any observer that sees
  // cancelled==true also sees a valid timestamp. Both stores are
  // async-signal-safe: lock-free atomics plus a steady-clock read.
  int64_t expected = 0;
  request_time_ns_.compare_exchange_strong(expected, NowNanos(),
                                           std::memory_order_relaxed);
  cancelled_.store(true, std::memory_order_release);
}

Status CancellationToken::CheckCancelled(const char* context) const {
  if (!IsCancelled()) return Status::OK();
  return StoppedStatus(StoppedReason::kCancelled, context);
}

double CancellationToken::SecondsSinceRequest() const {
  if (!IsCancelled()) return 0.0;
  const int64_t at = request_time_ns_.load(std::memory_order_relaxed);
  if (at == 0) return 0.0;
  return static_cast<double>(NowNanos() - at) * 1e-9;
}

namespace {

/// The token the installed signal handler forwards to. A lock-free atomic
/// pointer so the handler itself stays async-signal-safe.
std::atomic<CancellationToken*> g_signal_token{nullptr};

extern "C" void KgfdSignalHandler(int /*signum*/) {
  CancellationToken* token = g_signal_token.load(std::memory_order_acquire);
  if (token != nullptr) token->RequestCancel();
}

}  // namespace

void InstallSignalCancellation(CancellationToken* token) {
  g_signal_token.store(token, std::memory_order_release);
  if (token != nullptr) {
    std::signal(SIGINT, &KgfdSignalHandler);
    std::signal(SIGTERM, &KgfdSignalHandler);
  } else {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
}

Deadline Deadline::After(double seconds) {
  Deadline d;
  d.has_deadline_ = true;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

bool Deadline::Expired() const {
  return has_deadline_ && Clock::now() >= at_;
}

double Deadline::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

Status Deadline::CheckExpired(const char* context) const {
  if (!Expired()) return Status::OK();
  return StoppedStatus(StoppedReason::kDeadline, context);
}

}  // namespace kgfd
