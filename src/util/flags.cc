#include "util/flags.h"

#include <cstdlib>
#include <string_view>

#include "util/string_util.h"

namespace kgfd {

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[++i];
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace kgfd
