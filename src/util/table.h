#ifndef KGFD_UTIL_TABLE_H_
#define KGFD_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kgfd {

/// Row-oriented string table with aligned ASCII rendering and CSV export.
/// All bench binaries emit their paper-shaped rows through this class so
/// output is uniform and machine-scrapable.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 4);
  static std::string Fmt(size_t v);
  static std::string Fmt(int64_t v);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Renders with column alignment and a header rule.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Writes the CSV rendering to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_TABLE_H_
