#ifndef KGFD_UTIL_STATS_H_
#define KGFD_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgfd {

/// Descriptive statistics of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes descriptive statistics. Returns a zeroed Summary for an empty
/// sample.
Summary Summarize(const std::vector<double>& values);

/// Linear interpolation percentile (q in [0,1]) of an unsorted sample.
/// Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi] with `bins` equal buckets; values
/// outside the range clamp to the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double v);
  void AddAll(const std::vector<double>& values);

  size_t bins() const { return counts_.size(); }
  size_t count(size_t bin) const { return counts_[bin]; }
  size_t total() const { return total_; }
  /// Inclusive lower edge of a bucket.
  double BinLow(size_t bin) const;
  double BinHigh(size_t bin) const;

  /// Renders a compact ASCII bar chart, one line per bucket, used by the
  /// figure benches (e.g. Fig. 3 clustering-coefficient distributions).
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (which must sum to ~1). Buckets with expected probability 0
/// must have 0 observations. Used by the sampler distribution tests.
Result<double> ChiSquareStatistic(const std::vector<size_t>& observed,
                                  const std::vector<double>& expected_probs);

/// Pearson correlation coefficient of two equal-length samples; 0 if either
/// sample has zero variance or fewer than 2 points.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace kgfd

#endif  // KGFD_UTIL_STATS_H_
