#ifndef KGFD_UTIL_TIMER_H_
#define KGFD_UTIL_TIMER_H_

#include <chrono>

namespace kgfd {

/// Monotonic wall-clock stopwatch used for all runtime / efficiency
/// measurements reported by the benches.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals. Used to
/// split discovery runtime into generation vs evaluation phases.
class IntervalTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_ += timer_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_TIMER_H_
