#include "util/retry.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace kgfd {

bool RetryableCode(const RetryPolicy& policy, StatusCode code) {
  if (policy.retryable != nullptr) return policy.retryable(code);
  return code == StatusCode::kIoError;
}

double RetryBackoffMs(const RetryPolicy& policy, size_t failures) {
  if (failures == 0) return 0.0;
  double backoff = policy.initial_backoff_ms;
  for (size_t i = 1; i < failures; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_ms) break;
  }
  return std::clamp(backoff, 0.0, policy.max_backoff_ms);
}

namespace internal {

void RetrySleep(const RetryPolicy& policy, size_t failures) {
  if (policy.metrics != nullptr) {
    policy.metrics->GetCounter(kRetryBackoffsCounter)->Increment();
  }
  const double ms = RetryBackoffMs(policy, failures);
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

void RecordAttempt(const RetryPolicy& policy) {
  if (policy.metrics != nullptr) {
    policy.metrics->GetCounter(kRetryAttemptsCounter)->Increment();
  }
}

void RecordExhausted(const RetryPolicy& policy) {
  if (policy.metrics != nullptr) {
    policy.metrics->GetCounter(kRetryExhaustedCounter)->Increment();
  }
}

Status DecorateExhausted(const RetryPolicy& policy, const char* op,
                         size_t attempts, Status status) {
  RecordExhausted(policy);
  if (attempts <= 1) return status;
  return Status(status.code(), std::string(op) + " failed after " +
                                   std::to_string(attempts) +
                                   " attempts: " + status.message());
}

}  // namespace internal

Status RetryStatus(const RetryPolicy& policy, const char* op,
                   const std::function<Status()>& fn) {
  // Piggyback on the Result flavor with a throwaway value type.
  Result<char> result = Retry<char>(policy, op, [&fn]() -> Result<char> {
    Status status = fn();
    if (!status.ok()) return status;
    return '\0';
  });
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace kgfd
