#ifndef KGFD_UTIL_ALIAS_SAMPLER_H_
#define KGFD_UTIL_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace kgfd {

/// Walker alias-method sampler: O(n) construction, O(1) draws from an
/// arbitrary discrete distribution. This is the sampling engine behind every
/// strategy's entity draws and behind the synthetic generators' popularity
/// draws.
class AliasSampler {
 public:
  /// An empty sampler; Sample() must not be called before assigning a
  /// Build() result. Exists so samplers can live in containers/members.
  AliasSampler() = default;

  /// Builds from non-negative weights (not necessarily normalized). At least
  /// one weight must be positive.
  static Result<AliasSampler> Build(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng* rng) const;

  /// Draws n indexes (with replacement).
  std::vector<size_t> SampleMany(size_t n, Rng* rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index i (for tests).
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace kgfd

#endif  // KGFD_UTIL_ALIAS_SAMPLER_H_
