#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/failpoint.h"

namespace kgfd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::AttachMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    tasks_submitted_ = nullptr;
    tasks_completed_ = nullptr;
    tasks_helped_ = nullptr;
    queue_depth_ = nullptr;
    groups_active_gauge_ = nullptr;
    return;
  }
  tasks_submitted_ = metrics->GetCounter(kThreadPoolTasksSubmitted);
  tasks_completed_ = metrics->GetCounter(kThreadPoolTasksCompleted);
  tasks_helped_ = metrics->GetCounter(kThreadPoolTasksHelped);
  queue_depth_ = metrics->GetGauge(kThreadPoolQueueDepth);
  groups_active_gauge_ = metrics->GetGauge(kThreadPoolGroupsActive);
  queue_depth_->Set(static_cast<double>(queue_.size()));
  groups_active_gauge_->Set(static_cast<double>(groups_active_));
}

void ThreadPool::Enqueue(std::function<void()> fn, TaskGroup* group) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(fn), group});
    ++in_flight_;
    if (group != nullptr) ++group->pending_;
    if (tasks_submitted_ != nullptr) {
      tasks_submitted_->Increment();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  task_available_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(std::move(task), nullptr);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::FinishTaskLocked(const Task& task) {
  --in_flight_;
  if (tasks_completed_ != nullptr) tasks_completed_->Increment();
  if (task.group != nullptr) {
    if (--task.group->pending_ == 0) task.group->done_.notify_all();
  }
  if (in_flight_ == 0) all_done_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
    }
    // Delay-only fault injection: lets stress tests stretch the window
    // between dequeue and execution to amplify scheduling races.
    FailPoints::Instance().EvaluateDelay(kFailPointThreadPoolDispatch);
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      FinishTaskLocked(task);
    }
  }
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  ++pool_->groups_active_;
  if (pool_->groups_active_gauge_ != nullptr) {
    pool_->groups_active_gauge_->Set(
        static_cast<double>(pool_->groups_active_));
  }
}

ThreadPool::TaskGroup::~TaskGroup() {
  Wait();
  std::lock_guard<std::mutex> lock(pool_->mu_);
  --pool_->groups_active_;
  if (pool_->groups_active_gauge_ != nullptr) {
    pool_->groups_active_gauge_->Set(
        static_cast<double>(pool_->groups_active_));
  }
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  pool_->Enqueue(std::move(task), this);
}

void ThreadPool::TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mu_);
  while (pending_ > 0) {
    // Work-assisting wait: run our own queued tasks (newest first, so a
    // nested loop drains itself before its parent) rather than blocking.
    // Other groups' tasks are left alone — stealing them could recurse
    // arbitrarily deep and would make us wait on work we never submitted.
    auto it = std::find_if(pool_->queue_.rbegin(), pool_->queue_.rend(),
                           [this](const Task& t) { return t.group == this; });
    if (it != pool_->queue_.rend()) {
      Task task = std::move(*it);
      pool_->queue_.erase(std::next(it).base());
      if (pool_->queue_depth_ != nullptr) {
        pool_->queue_depth_->Set(static_cast<double>(pool_->queue_.size()));
      }
      lock.unlock();
      FailPoints::Instance().EvaluateDelay(kFailPointThreadPoolDispatch);
      task.fn();
      lock.lock();
      if (pool_->tasks_helped_ != nullptr) pool_->tasks_helped_->Increment();
      pool_->FinishTaskLocked(task);
      continue;
    }
    // All remaining tasks of this group are running on other threads; each
    // completion signals done_, so no wakeup can be missed.
    done_.wait(lock, [this] { return pending_ == 0; });
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 const CancelContext* cancel, size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const bool stoppable = cancel != nullptr && cancel->CanStop();
  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  if (pool == nullptr || workers <= 1 || n < 2 || n <= grain) {
    if (stoppable && cancel->StopReason() != StoppedReason::kNone) return;
    body(0, n);
    return;
  }
  // Dynamic chunking: enough chunks per worker that a skewed chunk cannot
  // serialize the loop, claimed off a shared index so idle threads keep
  // pulling work until the range is exhausted. Chunk sizes are rounded up
  // to a multiple of `grain` so per-chunk fixed costs (a batch kernel
  // invocation, a cache-line's worth of output) amortize over at least one
  // full sub-block — handing a kernel-based body a 3-candidate sliver costs
  // nearly as much as a full block and was the PR2 regression.
  const size_t target_chunks = 8 * workers;
  size_t chunk = std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  chunk = (chunk + grain - 1) / grain * grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;
  // shared_ptr: a claiming task may outlive this frame's locals only if the
  // caller abandons Wait via exception; keep the index alive regardless.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto run_chunks = [next, chunk, n, num_chunks, &body, stoppable, cancel] {
    size_t c;
    while ((c = next->fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
      // Checked after the claim so a stop request costs at most one extra
      // chunk per worker; in-flight bodies always run to their chunk end.
      if (stoppable && cancel->StopReason() != StoppedReason::kNone) break;
      const size_t begin = c * chunk;
      body(begin, std::min(begin + chunk, n));
    }
  };
  ThreadPool::TaskGroup group(pool);
  // One claiming task per worker is enough: each loops until the index runs
  // out, and the caller joins in through the group's work-assisting Wait.
  const size_t num_tasks = std::min(workers, num_chunks);
  for (size_t t = 0; t < num_tasks; ++t) group.Submit(run_chunks);
  group.Wait();
}

}  // namespace kgfd
