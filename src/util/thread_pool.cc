#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace kgfd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::AttachMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    tasks_submitted_ = nullptr;
    tasks_completed_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  tasks_submitted_ = metrics->GetCounter(kThreadPoolTasksSubmitted);
  tasks_completed_ = metrics->GetCounter(kThreadPoolTasksCompleted);
  queue_depth_ = metrics->GetGauge(kThreadPoolQueueDepth);
  queue_depth_->Set(static_cast<double>(queue_.size()));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
    if (tasks_submitted_ != nullptr) {
      tasks_submitted_->Increment();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_completed_ != nullptr) tasks_completed_->Increment();
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  if (pool == nullptr || workers <= 1 || n < 2 * workers) {
    body(0, n);
    return;
  }
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(begin + chunk, n);
    pool->Submit([&body, begin, end] { body(begin, end); });
  }
  pool->Wait();
}

}  // namespace kgfd
