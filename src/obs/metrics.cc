#include "obs/metrics.h"

#include <algorithm>

namespace kgfd {

void Gauge::Set(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  value_ = v;
  if (!set_ || v > max_) max_ = v;
  set_ = true;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_;
}

double Gauge::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  upper_bounds_.erase(
      std::unique(upper_bounds_.begin(), upper_bounds_.end()),
      upper_bounds_.end());
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void HistogramMetric::Observe(double v) {
  // First bucket whose inclusive upper bound admits v; past-the-end means
  // the overflow bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v) -
      upper_bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  sum_ += v;
  if (total_ == 0 || v < min_) min_ = v;
  if (total_ == 0 || v > max_) max_ = v;
  ++total_;
}

uint64_t HistogramMetric::bucket_count(size_t bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_[bucket];
}

uint64_t HistogramMetric::total_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double HistogramMetric::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double HistogramMetric::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double HistogramMetric::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  std::vector<double> bounds(count);
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = start + width * static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>(ExponentialBuckets(1e-6, 10.0, 8));
    b->push_back(60.0);
    return b;
  }();
  return *buckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBuckets());
}

HistogramMetric* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<HistogramMetric>(upper_bounds))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = {gauge->value(), gauge->max()};
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.upper_bounds = histogram->upper_bounds();
    value.counts.resize(histogram->num_buckets());
    for (size_t b = 0; b < value.counts.size(); ++b) {
      value.counts[b] = histogram->bucket_count(b);
    }
    value.total = histogram->total_count();
    value.sum = histogram->sum();
    value.min = histogram->min();
    value.max = histogram->max();
    snapshot.histograms[name] = std::move(value);
  }
  return snapshot;
}

}  // namespace kgfd
