#ifndef KGFD_OBS_METRICS_H_
#define KGFD_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace kgfd {

/// Monotonically increasing event count. Increments are lock-free and safe
/// from any thread (the discovery and evaluation hot paths increment from
/// thread-pool workers).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time measurement (e.g. thread-pool queue depth) that also
/// tracks its high-water mark.
class Gauge {
 public:
  void Set(double v);
  double value() const;
  /// Largest value ever Set (0 before the first Set).
  double max() const;

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
  double max_ = 0.0;
  bool set_ = false;
};

/// Fixed-bucket histogram: one count per inclusive upper bound plus a
/// catch-all overflow bucket, with running count/sum/min/max. Upper bounds
/// are sorted and deduplicated at construction and immutable afterwards;
/// Observe is thread-safe.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void Observe(double v);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// upper_bounds().size() + 1; the last bucket is the overflow bucket.
  size_t num_buckets() const { return upper_bounds_.size() + 1; }
  uint64_t bucket_count(size_t bucket) const;
  uint64_t total_count() const;
  double sum() const;
  /// Smallest / largest observed value; 0 when empty.
  double min() const;
  double max() const;

 private:
  std::vector<double> upper_bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// `count` bucket upper bounds starting at `start`, stepping by `width`.
std::vector<double> LinearBuckets(double start, double width, size_t count);
/// `count` bucket upper bounds starting at `start`, multiplying by `factor`.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);
/// Power-of-ten latency buckets from 1us to 60s, the default for the
/// ScopedSpan phase histograms.
const std::vector<double>& DefaultLatencyBuckets();

/// A consistent point-in-time copy of every registered metric, keyed by
/// name (sorted, so exports are deterministic).
struct MetricsSnapshot {
  struct GaugeValue {
    double value = 0.0;
    double max = 0.0;
  };
  struct HistogramValue {
    std::vector<double> upper_bounds;
    /// upper_bounds.size() + 1 entries; the last one is the overflow bucket.
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;
};

/// Thread-safe, name-keyed home of all metrics of one run. Get* registers
/// on first use and returns a stable pointer afterwards, so hot paths can
/// resolve their metrics once and increment lock-free. Counters, gauges and
/// histograms live in separate namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers with DefaultLatencyBuckets() on first use.
  HistogramMetric* GetHistogram(const std::string& name);
  /// First registration fixes the buckets; later calls (with any bounds)
  /// return the existing histogram.
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::vector<double>& upper_bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<HistogramMetric>>
      histograms_;
};

}  // namespace kgfd

#endif  // KGFD_OBS_METRICS_H_
