#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace kgfd {
namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsToText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, gauge] : snapshot.gauges) {
    out << "gauge " << name << " " << FmtDouble(gauge.value) << " max "
        << FmtDouble(gauge.max) << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "histogram " << name << " count " << h.total << " sum "
        << FmtDouble(h.sum) << " min " << FmtDouble(h.min) << " max "
        << FmtDouble(h.max) << "\n";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      out << "  le "
          << (b < h.upper_bounds.size() ? FmtDouble(h.upper_bounds[b])
                                        : std::string("+Inf"))
          << " " << h.counts[b] << "\n";
    }
  }
  return out.str();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : snapshot.gauges) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name)
        << "\": {\"value\": " << FmtDouble(gauge.value)
        << ", \"max\": " << FmtDouble(gauge.max) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name)
        << "\": {\"count\": " << h.total << ", \"sum\": " << FmtDouble(h.sum)
        << ", \"min\": " << FmtDouble(h.min)
        << ", \"max\": " << FmtDouble(h.max) << ", \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": ";
      if (b < h.upper_bounds.size()) {
        out << FmtDouble(h.upper_bounds[b]);
      } else {
        out << "\"+Inf\"";
      }
      out << ", \"count\": " << h.counts[b] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

namespace {

/// Minimal JSON document model, just rich enough to parse MetricsToJson
/// output (and any standard JSON document without \u surrogate pairs).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  // verbatim text, for exact uint64 parses
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : begin_(text.data()), p_(text.data()), end_(text.data() + text.size()) {}

  Result<JsonValue> Parse() {
    KGFD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (p_ != end_) return Error("trailing characters");
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        "json: " + message + " at offset " +
        std::to_string(static_cast<size_t>(p_ - begin_)));
  }

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const char* q = p_;
    for (const char* l = literal; *l != '\0'; ++l, ++q) {
      if (q == end_ || *q != *l) return false;
    }
    p_ = q;
    return true;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (p_ == end_) return Error("unexpected end of input");
    JsonValue value;
    switch (*p_) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        value.kind = JsonValue::Kind::kString;
        KGFD_ASSIGN_OR_RETURN(value.string, ParseString());
        return value;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        value.kind = JsonValue::Kind::kBool;
        return value;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        return value;
      default: return ParseNumber();
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return Error("unterminated escape");
      c = *p_++;
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          if (code > 0x7F) return Error("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: return Error("bad escape");
      }
    }
    if (!Consume('"')) return Error("unterminated string");
    return out;
  }

  Result<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Error("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.raw_number.assign(start, static_cast<size_t>(p_ - start));
    char* parse_end = nullptr;
    value.number = std::strtod(value.raw_number.c_str(), &parse_end);
    if (parse_end != value.raw_number.c_str() + value.raw_number.size()) {
      return Error("malformed number");
    }
    return value;
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected array");
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Consume(']')) return value;
    for (;;) {
      KGFD_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected object");
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      KGFD_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      KGFD_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.object.emplace_back(std::move(key), std::move(element));
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

Result<uint64_t> AsUint64(const JsonValue& value, const char* what) {
  if (value.kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(std::string(what) + " is not a number");
  }
  return static_cast<uint64_t>(
      std::strtoull(value.raw_number.c_str(), nullptr, 10));
}

Result<double> AsDouble(const JsonValue& value, const char* what) {
  if (value.kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(std::string(what) + " is not a number");
  }
  return value.number;
}

Result<MetricsSnapshot::HistogramValue> ParseHistogram(
    const JsonValue& value) {
  if (value.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("histogram is not an object");
  }
  MetricsSnapshot::HistogramValue h;
  const JsonValue* count = value.Find("count");
  const JsonValue* sum = value.Find("sum");
  const JsonValue* min = value.Find("min");
  const JsonValue* max = value.Find("max");
  const JsonValue* buckets = value.Find("buckets");
  if (count == nullptr || sum == nullptr || min == nullptr ||
      max == nullptr || buckets == nullptr ||
      buckets->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("histogram is missing a field");
  }
  KGFD_ASSIGN_OR_RETURN(h.total, AsUint64(*count, "histogram count"));
  KGFD_ASSIGN_OR_RETURN(h.sum, AsDouble(*sum, "histogram sum"));
  KGFD_ASSIGN_OR_RETURN(h.min, AsDouble(*min, "histogram min"));
  KGFD_ASSIGN_OR_RETURN(h.max, AsDouble(*max, "histogram max"));
  for (const JsonValue& bucket : buckets->array) {
    const JsonValue* le = bucket.Find("le");
    const JsonValue* bucket_count = bucket.Find("count");
    if (le == nullptr || bucket_count == nullptr) {
      return Status::InvalidArgument("histogram bucket is missing a field");
    }
    if (le->kind == JsonValue::Kind::kNumber) {
      h.upper_bounds.push_back(le->number);
    } else if (le->kind != JsonValue::Kind::kString ||
               le->string != "+Inf") {
      return Status::InvalidArgument("bucket le is neither number nor +Inf");
    }
    KGFD_ASSIGN_OR_RETURN(const uint64_t n,
                          AsUint64(*bucket_count, "bucket count"));
    h.counts.push_back(n);
  }
  if (h.counts.size() != h.upper_bounds.size() + 1) {
    return Status::InvalidArgument("histogram lacks exactly one +Inf bucket");
  }
  return h;
}

}  // namespace

Result<MetricsSnapshot> ParseMetricsJson(const std::string& json) {
  KGFD_ASSIGN_OR_RETURN(const JsonValue root, JsonParser(json).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("metrics document is not a JSON object");
  }
  MetricsSnapshot snapshot;
  const JsonValue* counters = root.Find("counters");
  const JsonValue* gauges = root.Find("gauges");
  const JsonValue* histograms = root.Find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    return Status::InvalidArgument(
        "metrics document is missing counters/gauges/histograms");
  }
  for (const auto& [name, value] : counters->object) {
    KGFD_ASSIGN_OR_RETURN(snapshot.counters[name],
                          AsUint64(value, "counter"));
  }
  for (const auto& [name, value] : gauges->object) {
    const JsonValue* v = value.Find("value");
    const JsonValue* m = value.Find("max");
    if (v == nullptr || m == nullptr) {
      return Status::InvalidArgument("gauge is missing value/max");
    }
    MetricsSnapshot::GaugeValue gauge;
    KGFD_ASSIGN_OR_RETURN(gauge.value, AsDouble(*v, "gauge value"));
    KGFD_ASSIGN_OR_RETURN(gauge.max, AsDouble(*m, "gauge max"));
    snapshot.gauges[name] = gauge;
  }
  for (const auto& [name, value] : histograms->object) {
    KGFD_ASSIGN_OR_RETURN(snapshot.histograms[name], ParseHistogram(value));
  }
  return snapshot;
}

Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  file << MetricsToJson(registry.Snapshot());
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace kgfd
