#ifndef KGFD_OBS_EXPORT_H_
#define KGFD_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace kgfd {

/// Human-readable dump, one metric per line (counters, then gauges, then
/// histograms with per-bucket counts).
std::string MetricsToText(const MetricsSnapshot& snapshot);

/// JSON document with top-level "counters" / "gauges" / "histograms"
/// objects. Histogram buckets carry their inclusive upper bound as "le"
/// (the overflow bucket uses the string "+Inf", Prometheus-style); doubles
/// are printed with round-trip precision.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Parses a document produced by MetricsToJson back into a snapshot — the
/// inverse used by the export round-trip tests and by external tooling
/// that wants to validate a --metrics_out file.
Result<MetricsSnapshot> ParseMetricsJson(const std::string& json);

/// Snapshots `registry` and writes MetricsToJson to `path`.
Status WriteMetricsJsonFile(const MetricsRegistry& registry,
                            const std::string& path);

}  // namespace kgfd

#endif  // KGFD_OBS_EXPORT_H_
