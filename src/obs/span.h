#ifndef KGFD_OBS_SPAN_H_
#define KGFD_OBS_SPAN_H_

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace kgfd {

/// RAII trace timer: measures the wall time from construction to Stop() (or
/// destruction) and records it into the named latency histogram of
/// `registry`. Null-registry spans still measure, so instrumented code can
/// use the same Stop() return value for its own stats whether or not
/// metrics are enabled — which also keeps the exported histogram totals
/// exactly consistent with those stats.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, std::string histogram_name)
      : registry_(registry), name_(std::move(histogram_name)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { Stop(); }

  /// Stops the clock, records the elapsed seconds (once), and returns
  /// them. Subsequent calls return the same value without re-recording.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ = timer_.ElapsedSeconds();
      if (registry_ != nullptr) {
        registry_->GetHistogram(name_)->Observe(elapsed_);
      }
    }
    return elapsed_;
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  WallTimer timer_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace kgfd

#endif  // KGFD_OBS_SPAN_H_
