#ifndef KGFD_ADAPTIVE_SCHEDULER_H_
#define KGFD_ADAPTIVE_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/strategy.h"
#include "util/rng.h"

namespace kgfd {

class MetricsRegistry;
class Counter;
class HistogramMetric;

/// Metric names the scheduler records when constructed with a registry.
/// The per-strategy series are suffixed with the canonical strategy name,
/// e.g. "adaptive.budget.ENTITY_FREQUENCY".
inline constexpr char kAdaptiveRoundsCounter[] = "adaptive.rounds";
inline constexpr char kAdaptiveBudgetPrefix[] = "adaptive.budget.";
inline constexpr char kAdaptiveRewardPrefix[] = "adaptive.reward.";
inline constexpr char kAdaptiveCostPrefix[] = "adaptive.cost.";

/// The arm set of strategy=ADAPTIVE discovery: the paper's five comparative
/// strategies plus the model-score-sketch extension, so the bandit chooses
/// among exactly the columns of the comparative tables.
std::vector<SamplingStrategy> AdaptiveArmStrategies();

/// Configuration of one per-relation bandit run.
struct BanditOptions {
  /// Number of budget rounds max_candidates is split into.
  size_t rounds = 8;
  /// UCB1 exploration constant c in  mean + c * sqrt(ln(N) / n_i).
  double exploration = 0.5;
  /// Seeds the tie-break stream. Every (seed, report sequence) pair yields
  /// one deterministic arm sequence, independent of wall clock or threads.
  uint64_t seed = 0;
  /// Total candidate budget to split across rounds (max_candidates).
  size_t total_budget = 500;
  /// When set, allocation and reward series are recorded (names above).
  MetricsRegistry* metrics = nullptr;
};

/// Per-relation UCB1 budget scheduler: splits a candidate budget into
/// `rounds` rounds and picks the sampling strategy for each round from the
/// observed reward (accepted facts per candidate scored) of earlier rounds.
///
/// Determinism contract: the arm sequence is a pure function of
/// (arms, options.seed, the reported (candidates, facts) sequence). Wall
/// time is observability only — Report() records ranking seconds into the
/// metrics registry but never feeds them into the allocation decision, so
/// the schedule is bit-identical across thread counts and across a
/// checkpoint/replay cycle (resume replays Report() from the manifest and
/// the scheduler re-derives the same remaining schedule).
class BanditScheduler {
 public:
  BanditScheduler(std::vector<SamplingStrategy> arms,
                  const BanditOptions& options);

  /// One round's allocation.
  struct RoundPlan {
    size_t round = 0;  ///< 0-based round number
    size_t arm = 0;    ///< index into arms()
    size_t quota = 0;  ///< candidate budget granted to this round
  };

  /// True when every round ran or the budget is exhausted.
  bool Done() const { return next_round_ >= rounds_ || remaining_ == 0; }

  /// Selects the next round's arm (UCB1: each arm once, then argmax of
  /// mean + c*sqrt(ln N / n_i), seeded-RNG tie-break) and grants it an
  /// even share of the remaining budget. Call exactly once per round,
  /// followed by exactly one Report() for the returned plan.
  RoundPlan NextRound();

  /// Feeds the round's outcome back: reward is
  /// facts_accepted / candidates_scored (0 when nothing was scored).
  /// `ranking_seconds` is recorded as the round's cost metric only.
  void Report(const RoundPlan& plan, size_t candidates_scored,
              size_t facts_accepted, double ranking_seconds);

  const std::vector<SamplingStrategy>& arms() const { return arms_; }
  size_t rounds() const { return rounds_; }
  size_t remaining_budget() const { return remaining_; }
  size_t plays(size_t arm) const { return plays_[arm]; }
  size_t budget_granted(size_t arm) const { return granted_[arm]; }
  double mean_reward(size_t arm) const {
    return plays_[arm] > 0
               ? reward_sum_[arm] / static_cast<double>(plays_[arm])
               : 0.0;
  }

 private:
  std::vector<SamplingStrategy> arms_;
  size_t rounds_;
  double exploration_;
  size_t remaining_;
  size_t next_round_ = 0;
  size_t total_plays_ = 0;
  Rng rng_;
  std::vector<size_t> plays_;
  std::vector<size_t> granted_;
  std::vector<double> reward_sum_;

  MetricsRegistry* metrics_ = nullptr;
  Counter* rounds_counter_ = nullptr;
  std::vector<Counter*> budget_counters_;
  std::vector<HistogramMetric*> reward_hists_;
  std::vector<HistogramMetric*> cost_hists_;
};

}  // namespace kgfd

#endif  // KGFD_ADAPTIVE_SCHEDULER_H_
