#include "adaptive/score_sketch.h"

#include <algorithm>
#include <numeric>

#include "kge/kernels.h"
#include "util/rng.h"

namespace kgfd {
namespace {

/// Credits the top_k entities of one scoring pass into `weight`, breaking
/// score ties by entity id so the sketch is independent of sort internals.
void AccumulateTopK(const std::vector<double>& scores, size_t top_k,
                    std::vector<double>* weight) {
  const size_t n = scores.size();
  const size_t k = std::min(top_k, n);
  std::vector<EntityId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), [&scores](EntityId a, EntityId b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  for (size_t pos = 0; pos < k; ++pos) {
    (*weight)[order[pos]] +=
        static_cast<double>(k - pos) / static_cast<double>(k);
  }
}

/// Runs `queries` through the model's batch API in kQueryBlock blocks and
/// folds each pass's top-k into `weight`. Accumulation is serial and in
/// query order, so the result is deterministic regardless of how the
/// kernels tile the scoring internally.
void SweepSide(const Model& model, bool object_side,
               const std::vector<SideQuery>& queries, size_t top_k,
               std::vector<double>* weight) {
  std::vector<std::vector<double>> block_scores(kernels::kQueryBlock);
  std::vector<std::vector<double>*> outs(kernels::kQueryBlock);
  for (size_t i = 0; i < kernels::kQueryBlock; ++i) {
    outs[i] = &block_scores[i];
  }
  for (size_t begin = 0; begin < queries.size();
       begin += kernels::kQueryBlock) {
    const size_t count =
        std::min(kernels::kQueryBlock, queries.size() - begin);
    if (object_side) {
      model.ScoreObjectsBatch(queries.data() + begin, count, outs.data());
    } else {
      model.ScoreSubjectsBatch(queries.data() + begin, count, outs.data());
    }
    for (size_t q = 0; q < count; ++q) {
      AccumulateTopK(block_scores[q], top_k, weight);
    }
  }
}

}  // namespace

Result<ScoreSketch> ComputeScoreSketch(const Model& model,
                                       const TripleStore& kg,
                                       const ScoreSketchOptions& options) {
  if (kg.size() == 0) {
    return Status::InvalidArgument(
        "cannot compute a score sketch on an empty KG");
  }
  if (options.num_probes == 0 || options.top_k == 0) {
    return Status::InvalidArgument(
        "score sketch num_probes and top_k must be > 0");
  }
  KGFD_RETURN_NOT_OK(
      ValidateModelShape(model, kg.num_entities(), kg.num_relations()));

  // Probe triples: sampled with replacement from the training triples under
  // the sketch's own fixed seed. Sampling real (s, r) / (r, o) contexts
  // keeps every pass on-distribution — probing random id pairs would mostly
  // measure score noise on contexts the model never trained on.
  Rng rng(options.seed);
  const std::vector<Triple>& triples = kg.triples();
  std::vector<SideQuery> object_queries(options.num_probes);
  std::vector<SideQuery> subject_queries(options.num_probes);
  for (size_t i = 0; i < options.num_probes; ++i) {
    const Triple& probe = triples[rng.UniformInt(triples.size())];
    object_queries[i] = SideQuery{probe.subject, probe.relation};
    subject_queries[i] = SideQuery{probe.object, probe.relation};
  }

  ScoreSketch sketch;
  sketch.num_probes = options.num_probes;
  sketch.top_k = options.top_k;
  sketch.subject_weight.assign(kg.num_entities(), 0.0);
  sketch.object_weight.assign(kg.num_entities(), 0.0);
  // Object-side passes score (s, r, o') for all o' — they tell us which
  // entities the model likes as *objects*, and vice versa.
  SweepSide(model, /*object_side=*/true, object_queries, options.top_k,
            &sketch.object_weight);
  SweepSide(model, /*object_side=*/false, subject_queries, options.top_k,
            &sketch.subject_weight);
  return sketch;
}

StrategyWeights ModelScoreWeights(const ScoreSketch& sketch) {
  StrategyWeights w;
  const size_t n = sketch.subject_weight.size();
  w.subject_pool.resize(n);
  std::iota(w.subject_pool.begin(), w.subject_pool.end(), 0);
  w.object_pool = w.subject_pool;
  auto normalize = [&w](const std::vector<double>& raw,
                        std::vector<double>* out) {
    const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
    if (total <= 0.0) {
      out->assign(raw.size(), 1.0 / static_cast<double>(raw.size()));
      w.fell_back_to_uniform = true;
    } else {
      out->resize(raw.size());
      for (size_t i = 0; i < raw.size(); ++i) (*out)[i] = raw[i] / total;
    }
  };
  normalize(sketch.subject_weight, &w.subject_weights);
  normalize(sketch.object_weight, &w.object_weights);
  return w;
}

Result<StrategyWeights> ComputeModelScoreWeights(
    const Model& model, const TripleStore& kg,
    const ScoreSketchOptions& options) {
  KGFD_ASSIGN_OR_RETURN(const ScoreSketch sketch,
                        ComputeScoreSketch(model, kg, options));
  return ModelScoreWeights(sketch);
}

}  // namespace kgfd
