#ifndef KGFD_ADAPTIVE_SCORE_SKETCH_H_
#define KGFD_ADAPTIVE_SCORE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/strategy.h"
#include "kg/triple_store.h"
#include "kge/model.h"
#include "util/status.h"

namespace kgfd {

/// Controls the MODEL_SCORE sketch precompute. The defaults are what every
/// production caller uses: the sketch must be a pure function of
/// (model, KG) so DiscoveryCache can key it by fingerprint alone, which is
/// why the probe seed is a fixed constant rather than the run seed.
struct ScoreSketchOptions {
  /// Probe queries drawn per side; each probe is one full scoring pass.
  size_t num_probes = 64;
  /// Entities credited per probe pass (weight (top_k - position) / top_k).
  size_t top_k = 32;
  /// Seed of the probe-selection stream. Fixed so two runs over the same
  /// (model, KG) build byte-identical sketches.
  uint64_t seed = 0x5ce7c4b1d2a8f00dULL;
};

/// Compact per-entity summary of where the model concentrates its score
/// mass: `num_probes` training triples are drawn deterministically, each
/// contributes one object-side pass (s, r, ·) and one subject-side pass
/// (·, r, o) through the batch scoring kernels, and each pass credits its
/// top_k entities with linearly decaying weight. Entities the model never
/// surfaces stay at zero.
struct ScoreSketch {
  std::vector<double> subject_weight;  ///< per entity, unnormalized
  std::vector<double> object_weight;   ///< per entity, unnormalized
  size_t num_probes = 0;
  size_t top_k = 0;
};

/// Builds the sketch with one batched scoring sweep per side. Deterministic
/// in (model, KG, options): probe order, tie-breaks (score descending, then
/// entity id ascending) and accumulation order are all fixed.
/// InvalidArgument on an empty KG.
Result<ScoreSketch> ComputeScoreSketch(const Model& model,
                                       const TripleStore& kg,
                                       const ScoreSketchOptions& options = {});

/// Converts a sketch into SamplingStrategy-shaped weights over the full
/// entity pool (the MODEL_SCORE strategy): per-side normalized sketch
/// weights, falling back to uniform when a side's sketch is identically
/// zero. Composes with type_filter exactly like every other strategy —
/// filtering happens on the generated candidates, not the pool.
StrategyWeights ModelScoreWeights(const ScoreSketch& sketch);

/// ComputeScoreSketch + ModelScoreWeights in one call — the seam
/// DiscoveryCache and DiscoverFacts use.
Result<StrategyWeights> ComputeModelScoreWeights(
    const Model& model, const TripleStore& kg,
    const ScoreSketchOptions& options = {});

}  // namespace kgfd

#endif  // KGFD_ADAPTIVE_SCORE_SKETCH_H_
