#include "adaptive/scheduler.h"

#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace kgfd {

std::vector<SamplingStrategy> AdaptiveArmStrategies() {
  std::vector<SamplingStrategy> arms = ComparativeStrategies();
  arms.push_back(SamplingStrategy::kModelScore);
  return arms;
}

BanditScheduler::BanditScheduler(std::vector<SamplingStrategy> arms,
                                 const BanditOptions& options)
    : arms_(std::move(arms)),
      rounds_(options.rounds),
      exploration_(options.exploration),
      remaining_(options.total_budget),
      rng_(options.seed),
      plays_(arms_.size(), 0),
      granted_(arms_.size(), 0),
      reward_sum_(arms_.size(), 0.0),
      metrics_(options.metrics) {
  if (metrics_ != nullptr) {
    rounds_counter_ = metrics_->GetCounter(kAdaptiveRoundsCounter);
    budget_counters_.reserve(arms_.size());
    reward_hists_.reserve(arms_.size());
    cost_hists_.reserve(arms_.size());
    for (SamplingStrategy arm : arms_) {
      const std::string name = SamplingStrategyName(arm);
      budget_counters_.push_back(
          metrics_->GetCounter(kAdaptiveBudgetPrefix + name));
      reward_hists_.push_back(
          metrics_->GetHistogram(kAdaptiveRewardPrefix + name));
      cost_hists_.push_back(metrics_->GetHistogram(kAdaptiveCostPrefix + name));
    }
  }
}

BanditScheduler::RoundPlan BanditScheduler::NextRound() {
  RoundPlan plan;
  plan.round = next_round_;

  // Initialization phase: play every arm once, in arm order — the standard
  // UCB1 opening, and deterministic by construction.
  size_t chosen = arms_.size();
  for (size_t i = 0; i < arms_.size(); ++i) {
    if (plays_[i] == 0) {
      chosen = i;
      break;
    }
  }
  if (chosen == arms_.size()) {
    // UCB1: argmax of mean + c * sqrt(ln N / n_i). Exact ties (e.g. two
    // arms with identical reward histories) break via the seeded stream so
    // no arm is structurally starved; the draw is consumed only on a tie,
    // and the tie set is itself deterministic, so the sequence stays
    // reproducible.
    double best = -1.0;
    std::vector<size_t> tied;
    for (size_t i = 0; i < arms_.size(); ++i) {
      const double mean =
          reward_sum_[i] / static_cast<double>(plays_[i]);
      const double bonus =
          exploration_ *
          std::sqrt(std::log(static_cast<double>(total_plays_)) /
                    static_cast<double>(plays_[i]));
      const double ucb = mean + bonus;
      if (ucb > best) {
        best = ucb;
        tied.assign(1, i);
      } else if (ucb == best) {
        tied.push_back(i);
      }
    }
    chosen = tied.size() == 1
                 ? tied.front()
                 : tied[rng_.UniformInt(tied.size())];
  }
  plan.arm = chosen;

  // Even split of what's left over the rounds that remain (ceiling
  // division), so the quotas sum to exactly the original budget and every
  // scheduled round gets at least one candidate while budget lasts.
  const size_t rounds_left = rounds_ - next_round_;
  plan.quota = (remaining_ + rounds_left - 1) / rounds_left;
  remaining_ -= plan.quota;
  granted_[chosen] += plan.quota;
  ++next_round_;

  if (metrics_ != nullptr) {
    rounds_counter_->Increment();
    budget_counters_[chosen]->Increment(plan.quota);
  }
  return plan;
}

void BanditScheduler::Report(const RoundPlan& plan, size_t candidates_scored,
                             size_t facts_accepted, double ranking_seconds) {
  const double reward =
      candidates_scored > 0
          ? static_cast<double>(facts_accepted) /
                static_cast<double>(candidates_scored)
          : 0.0;
  ++plays_[plan.arm];
  ++total_plays_;
  reward_sum_[plan.arm] += reward;
  if (metrics_ != nullptr) {
    reward_hists_[plan.arm]->Observe(reward);
    // Wall-clock cost is deliberately observability-only: feeding it into
    // the allocation would make the schedule thread-count dependent.
    cost_hists_[plan.arm]->Observe(ranking_seconds);
  }
}

}  // namespace kgfd
