#ifndef KGFD_KGE_NEGATIVE_SAMPLING_H_
#define KGFD_KGE_NEGATIVE_SAMPLING_H_

#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"
#include "util/rng.h"

namespace kgfd {

/// How the corrupted side of a negative is chosen.
enum class CorruptionScheme {
  /// 50/50 subject/object (Bordes et al. 2013).
  kUniform,
  /// Bernoulli scheme (Wang et al. 2014): corrupt the subject with
  /// probability tph / (tph + hpt) per relation, reducing false negatives
  /// on 1-N / N-1 relations.
  kBernoulli,
};

/// Corruption sampler: replaces the subject or the object of a positive
/// triple with a uniformly drawn entity. With `filtered` set, draws that
/// happen to be true triples in the training graph are rejected (up to a
/// bounded number of retries), the common "filtered negatives" setting.
class NegativeSampler {
 public:
  NegativeSampler(const TripleStore* train, bool filtered,
                  CorruptionScheme scheme = CorruptionScheme::kUniform);

  /// One corruption of `positive`; the side follows the scheme.
  Triple Corrupt(const Triple& positive, Rng* rng) const;

  /// Probability of corrupting the subject side of a triple with this
  /// relation (0.5 under kUniform).
  double SubjectCorruptionProbability(RelationId r) const;

  /// One corruption of a specific side.
  Triple CorruptSide(const Triple& positive, TripleSide side, Rng* rng) const;

  /// `count` corruptions (sides alternate).
  std::vector<Triple> CorruptMany(const Triple& positive, size_t count,
                                  Rng* rng) const;

 private:
  const TripleStore* train_;
  bool filtered_;
  CorruptionScheme scheme_;
  /// Per-relation subject-corruption probabilities (Bernoulli scheme).
  std::vector<double> subject_prob_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_NEGATIVE_SAMPLING_H_
