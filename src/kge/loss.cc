#include "kge/loss.h"

#include <cmath>

namespace kgfd {
namespace {

double Sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Numerically stable log(1 + exp(x)).
double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace

const char* LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kMarginRanking:
      return "margin_ranking";
    case LossKind::kBinaryCrossEntropy:
      return "bce";
    case LossKind::kSoftplus:
      return "softplus";
  }
  return "unknown";
}

Result<LossKind> LossKindFromName(const std::string& name) {
  for (LossKind kind : {LossKind::kMarginRanking,
                        LossKind::kBinaryCrossEntropy, LossKind::kSoftplus}) {
    if (name == LossKindName(kind)) return kind;
  }
  return Status::NotFound("unknown loss: " + name);
}

PointwiseLoss EvalPointwiseLoss(LossKind kind, double score, int label) {
  PointwiseLoss out;
  switch (kind) {
    case LossKind::kBinaryCrossEntropy: {
      // L = -(y log σ(x) + (1-y) log(1-σ(x))); dL/dx = σ(x) - y.
      const double y = label > 0 ? 1.0 : 0.0;
      out.value = Softplus(score) - y * score;
      out.dscore = Sigmoid(score) - y;
      return out;
    }
    case LossKind::kSoftplus: {
      // L = softplus(-y x); dL/dx = -y σ(-y x).
      const double y = label > 0 ? 1.0 : -1.0;
      out.value = Softplus(-y * score);
      out.dscore = -y * Sigmoid(-y * score);
      return out;
    }
    case LossKind::kMarginRanking:
      // Margin ranking is pairwise; treated here as hinge on y*score so a
      // pointwise caller still gets something sane.
      const double y = label > 0 ? 1.0 : -1.0;
      const double hinge = 1.0 - y * score;
      out.value = hinge > 0.0 ? hinge : 0.0;
      out.dscore = hinge > 0.0 ? -y : 0.0;
      return out;
  }
  return out;
}

PairwiseLoss EvalMarginRankingLoss(double score_pos, double score_neg,
                                   double margin) {
  PairwiseLoss out;
  const double violation = margin - score_pos + score_neg;
  if (violation > 0.0) {
    out.value = violation;
    out.dscore_pos = -1.0;
    out.dscore_neg = 1.0;
  }
  return out;
}

}  // namespace kgfd
