#ifndef KGFD_KGE_LOSS_H_
#define KGFD_KGE_LOSS_H_

#include <string>

#include "util/status.h"

namespace kgfd {

enum class LossKind {
  /// max(0, margin - score_pos + score_neg) per positive/negative pair.
  kMarginRanking,
  /// Pointwise binary cross-entropy with logits; labels 1 (pos) / 0 (neg).
  kBinaryCrossEntropy,
  /// Pointwise softplus: log(1 + exp(-y * score)), y in {+1, -1}.
  kSoftplus,
};

const char* LossKindName(LossKind kind);
Result<LossKind> LossKindFromName(const std::string& name);

/// Value and d(loss)/d(score) of a pointwise loss for one scored triple.
struct PointwiseLoss {
  double value = 0.0;
  double dscore = 0.0;
};

/// Pointwise losses: label +1 for positives, -1 for negatives.
PointwiseLoss EvalPointwiseLoss(LossKind kind, double score, int label);

/// Pairwise margin ranking loss for one (positive, negative) score pair.
struct PairwiseLoss {
  double value = 0.0;
  double dscore_pos = 0.0;
  double dscore_neg = 0.0;
};

PairwiseLoss EvalMarginRankingLoss(double score_pos, double score_neg,
                                   double margin);

}  // namespace kgfd

#endif  // KGFD_KGE_LOSS_H_
