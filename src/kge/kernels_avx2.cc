/// AVX2 batch-scoring kernels. Compiled with -mavx2 -mfma only when the
/// build supports it (KGFD_HAVE_AVX2 is defined by src/CMakeLists.txt for
/// this file alone); every other translation unit stays portable, and the
/// *running* CPU is still checked via cpuid before dispatch.
///
/// Vectorization strategy: eight entities per tile, transposed once into a
/// column-major scratch buffer and scored by every query of the block. The
/// vector lanes run eight *independent* per-entity accumulator chains in
/// ascending dimension order — the same double-precision operations, in the
/// same order, as the scalar path — so results are bit-identical to the
/// portable backend (see the determinism contract in kernels.h). The
/// speedup comes from breaking the scalar path's single add-latency-bound
/// accumulation chain and from loading each table row once per block of
/// queries, not from FMA contraction (which would change results and is
/// deliberately not used in the accumulation loops).

#include "kge/kernels.h"

#if defined(KGFD_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace kgfd {
namespace kernels {
namespace {

constexpr size_t kRowBlock = 8;

/// Dequantizes 8 quantized rows straight into the transposed scratch
/// layout (scratch[c * 8 + lane]). Scalar on purpose: it runs once per
/// 8-row tile and is amortized over the whole query block, and the scalar
/// multiply-after-subtract produces floats bit-identical to the portable
/// quantized path (the contract the quantized kernels are tested against).
template <typename Q>
void DequantTransposeRows(const QuantTable& table, size_t row0, size_t dim,
                          float* scratch) {
  const Q* codes = static_cast<const Q*>(table.data);
  for (size_t l = 0; l < kRowBlock; ++l) {
    const size_t e = row0 + l;
    const float scale = table.scales[e];
    const float zp = table.zero_points[e];
    const Q* row = codes + e * dim;
    for (size_t c = 0; c < dim; ++c) {
      scratch[c * 8 + l] = scale * (static_cast<float>(row[c]) - zp);
    }
  }
}

void DequantTransposeBlock(const QuantTable& table, size_t row0, size_t dim,
                           float* scratch) {
  if (table.is_int16) {
    DequantTransposeRows<int16_t>(table, row0, dim, scratch);
  } else {
    DequantTransposeRows<int8_t>(table, row0, dim, scratch);
  }
}

/// Dequantizes one row into `dst` (tail rows of a non-multiple-of-8 table).
void DequantRow(const QuantTable& table, size_t e, size_t dim, float* dst) {
  const float scale = table.scales[e];
  const float zp = table.zero_points[e];
  if (table.is_int16) {
    const int16_t* row = static_cast<const int16_t*>(table.data) + e * dim;
    for (size_t i = 0; i < dim; ++i) {
      dst[i] = scale * (static_cast<float>(row[i]) - zp);
    }
  } else {
    const int8_t* row = static_cast<const int8_t*>(table.data) + e * dim;
    for (size_t i = 0; i < dim; ++i) {
      dst[i] = scale * (static_cast<float>(row[i]) - zp);
    }
  }
}

/// Transposes 8 rows of `dim` floats into scratch[c * 8 + lane].
void TransposeBlock(const float* table, size_t row0, size_t dim,
                    float* scratch) {
  const float* rows[kRowBlock];
  for (size_t l = 0; l < kRowBlock; ++l) rows[l] = table + (row0 + l) * dim;
  size_t c = 0;
  for (; c + 8 <= dim; c += 8) {
    const __m256 a0 = _mm256_loadu_ps(rows[0] + c);
    const __m256 a1 = _mm256_loadu_ps(rows[1] + c);
    const __m256 a2 = _mm256_loadu_ps(rows[2] + c);
    const __m256 a3 = _mm256_loadu_ps(rows[3] + c);
    const __m256 a4 = _mm256_loadu_ps(rows[4] + c);
    const __m256 a5 = _mm256_loadu_ps(rows[5] + c);
    const __m256 a6 = _mm256_loadu_ps(rows[6] + c);
    const __m256 a7 = _mm256_loadu_ps(rows[7] + c);
    const __m256 t0 = _mm256_unpacklo_ps(a0, a1);
    const __m256 t1 = _mm256_unpackhi_ps(a0, a1);
    const __m256 t2 = _mm256_unpacklo_ps(a2, a3);
    const __m256 t3 = _mm256_unpackhi_ps(a2, a3);
    const __m256 t4 = _mm256_unpacklo_ps(a4, a5);
    const __m256 t5 = _mm256_unpackhi_ps(a4, a5);
    const __m256 t6 = _mm256_unpacklo_ps(a6, a7);
    const __m256 t7 = _mm256_unpackhi_ps(a6, a7);
    const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    _mm256_storeu_ps(scratch + (c + 0) * 8,
                     _mm256_permute2f128_ps(u0, u4, 0x20));
    _mm256_storeu_ps(scratch + (c + 1) * 8,
                     _mm256_permute2f128_ps(u1, u5, 0x20));
    _mm256_storeu_ps(scratch + (c + 2) * 8,
                     _mm256_permute2f128_ps(u2, u6, 0x20));
    _mm256_storeu_ps(scratch + (c + 3) * 8,
                     _mm256_permute2f128_ps(u3, u7, 0x20));
    _mm256_storeu_ps(scratch + (c + 4) * 8,
                     _mm256_permute2f128_ps(u0, u4, 0x31));
    _mm256_storeu_ps(scratch + (c + 5) * 8,
                     _mm256_permute2f128_ps(u1, u5, 0x31));
    _mm256_storeu_ps(scratch + (c + 6) * 8,
                     _mm256_permute2f128_ps(u2, u6, 0x31));
    _mm256_storeu_ps(scratch + (c + 7) * 8,
                     _mm256_permute2f128_ps(u3, u7, 0x31));
  }
  for (; c < dim; ++c) {
    for (size_t l = 0; l < kRowBlock; ++l) scratch[c * 8 + l] = rows[l][c];
  }
}

/// Loads transposed column `c` (8 floats, one per entity lane) widened to
/// two 4-double vectors.
inline void LoadColumn(const float* scratch, size_t c, __m256d* lo,
                       __m256d* hi) {
  const __m256 v = _mm256_loadu_ps(scratch + c * 8);
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

const __m256d kSignMask = _mm256_set1_pd(-0.0);

/// The two tile sources the kernel skeletons below are generic over. The
/// float source reads the entity table directly; the quantized source
/// dequantizes each 8-row tile into the same transposed scratch layout
/// (once per tile, amortized over the whole query block) so the identical
/// vector loop body runs on both representations.
struct FloatTileSource {
  const float* table;
  size_t dim;
  void LoadTile(size_t row0, float* scratch) const {
    TransposeBlock(table, row0, dim, scratch);
  }
  const float* TailRow(size_t e, float* /*buf*/) const {
    return table + e * dim;
  }
};

struct QuantTileSource {
  const QuantTable* table;
  size_t dim;
  void LoadTile(size_t row0, float* scratch) const {
    DequantTransposeBlock(*table, row0, dim, scratch);
  }
  const float* TailRow(size_t e, float* buf) const {
    DequantRow(*table, e, dim, buf);
    return buf;
  }
};

/// Shared skeleton of the single-factor kernels (L1 / L2 / dot): `step`
/// folds one widened column into the accumulator pair, `finish` maps the
/// raw accumulators to scores. Queries are walked in pairs so each tile
/// pass runs four independent accumulator chains (two queries × lo/hi) —
/// enough to hide the vector-add latency the single-chain walk stalls on —
/// and each widened column load is shared by both queries. Per-(query,
/// entity) accumulation order is unchanged, so pairing cannot perturb
/// results. Tail rows (rows % 8) fall back to the bit-identical scalar
/// loop via `scalar_row`.
template <typename TileSource, typename Step, typename Finish,
          typename ScalarRow>
void BlockedScore(const TileSource& source, size_t rows, size_t dim,
                  const double* const* qs, size_t num_queries,
                  double* const* outs, const Step& step,
                  const Finish& finish, const ScalarRow& scalar_row) {
  std::vector<float> scratch(dim * kRowBlock);
  std::vector<float> tail(dim);
  const size_t full = rows - rows % kRowBlock;
  for (size_t e0 = 0; e0 < full; e0 += kRowBlock) {
    source.LoadTile(e0, scratch.data());
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const double* qa = qs[q];
      const double* qb = qs[q + 1];
      __m256d a_lo = _mm256_setzero_pd();
      __m256d a_hi = _mm256_setzero_pd();
      __m256d b_lo = _mm256_setzero_pd();
      __m256d b_hi = _mm256_setzero_pd();
      for (size_t i = 0; i < dim; ++i) {
        __m256d vlo, vhi;
        LoadColumn(scratch.data(), i, &vlo, &vhi);
        step(_mm256_broadcast_sd(qa + i), vlo, vhi, &a_lo, &a_hi);
        step(_mm256_broadcast_sd(qb + i), vlo, vhi, &b_lo, &b_hi);
      }
      finish(&a_lo, &a_hi);
      finish(&b_lo, &b_hi);
      _mm256_storeu_pd(outs[q] + e0, a_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, a_hi);
      _mm256_storeu_pd(outs[q + 1] + e0, b_lo);
      _mm256_storeu_pd(outs[q + 1] + e0 + 4, b_hi);
    }
    for (; q < num_queries; ++q) {
      const double* qv = qs[q];
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (size_t i = 0; i < dim; ++i) {
        __m256d vlo, vhi;
        LoadColumn(scratch.data(), i, &vlo, &vhi);
        step(_mm256_broadcast_sd(qv + i), vlo, vhi, &acc_lo, &acc_hi);
      }
      finish(&acc_lo, &acc_hi);
      _mm256_storeu_pd(outs[q] + e0, acc_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, acc_hi);
    }
  }
  for (size_t e = full; e < rows; ++e) {
    const float* row = source.TailRow(e, tail.data());
    for (size_t q = 0; q < num_queries; ++q) {
      outs[q][e] = scalar_row(qs[q], row);
    }
  }
}

template <typename TileSource>
void L1Kernel(const TileSource& source, size_t rows, size_t dim,
              const double* const* qs, size_t num_queries,
              double* const* outs) {
  BlockedScore(
      source, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        *acc_lo = _mm256_add_pd(
            *acc_lo, _mm256_andnot_pd(kSignMask, _mm256_sub_pd(qb, vlo)));
        *acc_hi = _mm256_add_pd(
            *acc_hi, _mm256_andnot_pd(kSignMask, _mm256_sub_pd(qb, vhi)));
      },
      [](__m256d* acc_lo, __m256d* acc_hi) {
        *acc_lo = _mm256_xor_pd(*acc_lo, kSignMask);
        *acc_hi = _mm256_xor_pd(*acc_hi, kSignMask);
      },
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += std::fabs(qv[i] - row[i]);
        return -acc;
      });
}

template <typename TileSource>
void L2Kernel(const TileSource& source, size_t rows, size_t dim,
              const double* const* qs, size_t num_queries,
              double* const* outs) {
  BlockedScore(
      source, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        const __m256d dlo = _mm256_sub_pd(qb, vlo);
        const __m256d dhi = _mm256_sub_pd(qb, vhi);
        // mul then add, not FMA: the scalar path rounds the square before
        // accumulating, and bit-compatibility wins over contraction here.
        *acc_lo = _mm256_add_pd(*acc_lo, _mm256_mul_pd(dlo, dlo));
        *acc_hi = _mm256_add_pd(*acc_hi, _mm256_mul_pd(dhi, dhi));
      },
      [](__m256d* acc_lo, __m256d* acc_hi) {
        *acc_lo = _mm256_xor_pd(_mm256_sqrt_pd(*acc_lo), kSignMask);
        *acc_hi = _mm256_xor_pd(_mm256_sqrt_pd(*acc_hi), kSignMask);
      },
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          const double d = qv[i] - row[i];
          acc += d * d;
        }
        return -std::sqrt(acc);
      });
}

template <typename TileSource>
void DotKernel(const TileSource& source, size_t rows, size_t dim,
               const double* const* qs, size_t num_queries,
               double* const* outs) {
  BlockedScore(
      source, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        *acc_lo = _mm256_add_pd(*acc_lo, _mm256_mul_pd(qb, vlo));
        *acc_hi = _mm256_add_pd(*acc_hi, _mm256_mul_pd(qb, vhi));
      },
      [](__m256d*, __m256d*) {},
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += qv[i] * row[i];
        return acc;
      });
}

template <typename TileSource>
void PairedDotKernel(const TileSource& source, size_t rows, size_t half,
                     const double* const* qs, size_t num_queries,
                     double* const* outs) {
  const size_t dim = 2 * half;
  std::vector<float> scratch(dim * kRowBlock);
  std::vector<float> tail(dim);
  const size_t full = rows - rows % kRowBlock;
  for (size_t e0 = 0; e0 < full; e0 += kRowBlock) {
    source.LoadTile(e0, scratch.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (size_t k = 0; k < half; ++k) {
        __m256d re_lo, re_hi, im_lo, im_hi;
        LoadColumn(scratch.data(), k, &re_lo, &re_hi);
        LoadColumn(scratch.data(), half + k, &im_lo, &im_hi);
        const __m256d wrb = _mm256_broadcast_sd(wr + k);
        const __m256d wib = _mm256_broadcast_sd(wi + k);
        // (wr*re + wi*im) summed per k before accumulating — the scalar
        // ComplEx association, so no FMA here either.
        acc_lo = _mm256_add_pd(
            acc_lo, _mm256_add_pd(_mm256_mul_pd(wrb, re_lo),
                                  _mm256_mul_pd(wib, im_lo)));
        acc_hi = _mm256_add_pd(
            acc_hi, _mm256_add_pd(_mm256_mul_pd(wrb, re_hi),
                                  _mm256_mul_pd(wib, im_hi)));
      }
      _mm256_storeu_pd(outs[q] + e0, acc_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, acc_hi);
    }
  }
  for (size_t e = full; e < rows; ++e) {
    const float* row = source.TailRow(e, tail.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      double acc = 0.0;
      for (size_t k = 0; k < half; ++k) {
        acc += wr[k] * row[k] + wi[k] * row[half + k];
      }
      outs[q][e] = acc;
    }
  }
}

// Dispatch-table entry points: the float kernels instantiate the skeletons
// with the direct-read tile source (unchanged operations — bit-identical
// to the pre-quantization AVX2 kernels), the quantized ones with the
// dequantize-per-tile source.

void Avx2L1(const float* table, size_t rows, size_t dim,
            const double* const* qs, size_t num_queries,
            double* const* outs) {
  L1Kernel(FloatTileSource{table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2L2(const float* table, size_t rows, size_t dim,
            const double* const* qs, size_t num_queries,
            double* const* outs) {
  L2Kernel(FloatTileSource{table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2Dot(const float* table, size_t rows, size_t dim,
             const double* const* qs, size_t num_queries,
             double* const* outs) {
  DotKernel(FloatTileSource{table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2PairedDot(const float* table, size_t rows, size_t half,
                   const double* const* qs, size_t num_queries,
                   double* const* outs) {
  PairedDotKernel(FloatTileSource{table, 2 * half}, rows, half, qs,
                  num_queries, outs);
}

void Avx2L1Quant(const QuantTable& table, size_t rows, size_t dim,
                 const double* const* qs, size_t num_queries,
                 double* const* outs) {
  L1Kernel(QuantTileSource{&table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2L2Quant(const QuantTable& table, size_t rows, size_t dim,
                 const double* const* qs, size_t num_queries,
                 double* const* outs) {
  L2Kernel(QuantTileSource{&table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2DotQuant(const QuantTable& table, size_t rows, size_t dim,
                  const double* const* qs, size_t num_queries,
                  double* const* outs) {
  DotKernel(QuantTileSource{&table, dim}, rows, dim, qs, num_queries, outs);
}

void Avx2PairedDotQuant(const QuantTable& table, size_t rows, size_t half,
                        const double* const* qs, size_t num_queries,
                        double* const* outs) {
  PairedDotKernel(QuantTileSource{&table, 2 * half}, rows, half, qs,
                  num_queries, outs);
}

constexpr KernelOps kAvx2Ops = {
    "avx2",        Avx2L1,      Avx2L2,       Avx2Dot,
    Avx2PairedDot, Avx2L1Quant, Avx2L2Quant,  Avx2DotQuant,
    Avx2PairedDotQuant,
};

}  // namespace

const KernelOps* Avx2Kernels() {
  return CpuSupportsAvx2() ? &kAvx2Ops : nullptr;
}

}  // namespace kernels
}  // namespace kgfd

#else  // !KGFD_HAVE_AVX2

namespace kgfd {
namespace kernels {

const KernelOps* Avx2Kernels() { return nullptr; }

}  // namespace kernels
}  // namespace kgfd

#endif  // KGFD_HAVE_AVX2
