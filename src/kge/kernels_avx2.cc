/// AVX2 batch-scoring kernels. Compiled with -mavx2 -mfma only when the
/// build supports it (KGFD_HAVE_AVX2 is defined by src/CMakeLists.txt for
/// this file alone); every other translation unit stays portable, and the
/// *running* CPU is still checked via cpuid before dispatch.
///
/// Vectorization strategy: eight entities per tile, transposed once into a
/// column-major scratch buffer and scored by every query of the block. The
/// vector lanes run eight *independent* per-entity accumulator chains in
/// ascending dimension order — the same double-precision operations, in the
/// same order, as the scalar path — so results are bit-identical to the
/// portable backend (see the determinism contract in kernels.h). The
/// speedup comes from breaking the scalar path's single add-latency-bound
/// accumulation chain and from loading each table row once per block of
/// queries, not from FMA contraction (which would change results and is
/// deliberately not used in the accumulation loops).

#include "kge/kernels.h"

#if defined(KGFD_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <vector>

namespace kgfd {
namespace kernels {
namespace {

constexpr size_t kRowBlock = 8;

/// Transposes 8 rows of `dim` floats into scratch[c * 8 + lane].
void TransposeBlock(const float* table, size_t row0, size_t dim,
                    float* scratch) {
  const float* rows[kRowBlock];
  for (size_t l = 0; l < kRowBlock; ++l) rows[l] = table + (row0 + l) * dim;
  size_t c = 0;
  for (; c + 8 <= dim; c += 8) {
    const __m256 a0 = _mm256_loadu_ps(rows[0] + c);
    const __m256 a1 = _mm256_loadu_ps(rows[1] + c);
    const __m256 a2 = _mm256_loadu_ps(rows[2] + c);
    const __m256 a3 = _mm256_loadu_ps(rows[3] + c);
    const __m256 a4 = _mm256_loadu_ps(rows[4] + c);
    const __m256 a5 = _mm256_loadu_ps(rows[5] + c);
    const __m256 a6 = _mm256_loadu_ps(rows[6] + c);
    const __m256 a7 = _mm256_loadu_ps(rows[7] + c);
    const __m256 t0 = _mm256_unpacklo_ps(a0, a1);
    const __m256 t1 = _mm256_unpackhi_ps(a0, a1);
    const __m256 t2 = _mm256_unpacklo_ps(a2, a3);
    const __m256 t3 = _mm256_unpackhi_ps(a2, a3);
    const __m256 t4 = _mm256_unpacklo_ps(a4, a5);
    const __m256 t5 = _mm256_unpackhi_ps(a4, a5);
    const __m256 t6 = _mm256_unpacklo_ps(a6, a7);
    const __m256 t7 = _mm256_unpackhi_ps(a6, a7);
    const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    _mm256_storeu_ps(scratch + (c + 0) * 8,
                     _mm256_permute2f128_ps(u0, u4, 0x20));
    _mm256_storeu_ps(scratch + (c + 1) * 8,
                     _mm256_permute2f128_ps(u1, u5, 0x20));
    _mm256_storeu_ps(scratch + (c + 2) * 8,
                     _mm256_permute2f128_ps(u2, u6, 0x20));
    _mm256_storeu_ps(scratch + (c + 3) * 8,
                     _mm256_permute2f128_ps(u3, u7, 0x20));
    _mm256_storeu_ps(scratch + (c + 4) * 8,
                     _mm256_permute2f128_ps(u0, u4, 0x31));
    _mm256_storeu_ps(scratch + (c + 5) * 8,
                     _mm256_permute2f128_ps(u1, u5, 0x31));
    _mm256_storeu_ps(scratch + (c + 6) * 8,
                     _mm256_permute2f128_ps(u2, u6, 0x31));
    _mm256_storeu_ps(scratch + (c + 7) * 8,
                     _mm256_permute2f128_ps(u3, u7, 0x31));
  }
  for (; c < dim; ++c) {
    for (size_t l = 0; l < kRowBlock; ++l) scratch[c * 8 + l] = rows[l][c];
  }
}

/// Loads transposed column `c` (8 floats, one per entity lane) widened to
/// two 4-double vectors.
inline void LoadColumn(const float* scratch, size_t c, __m256d* lo,
                       __m256d* hi) {
  const __m256 v = _mm256_loadu_ps(scratch + c * 8);
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

const __m256d kSignMask = _mm256_set1_pd(-0.0);

/// Shared skeleton of the single-factor kernels (L1 / L2 / dot): `step`
/// folds one widened column into the accumulator pair, `finish` maps the
/// raw accumulators to scores. Queries are walked in pairs so each tile
/// pass runs four independent accumulator chains (two queries × lo/hi) —
/// enough to hide the vector-add latency the single-chain walk stalls on —
/// and each widened column load is shared by both queries. Per-(query,
/// entity) accumulation order is unchanged, so pairing cannot perturb
/// results. Tail rows (rows % 8) fall back to the bit-identical scalar
/// loop via `scalar_row`.
template <typename Step, typename Finish, typename ScalarRow>
void BlockedScore(const float* table, size_t rows, size_t dim,
                  const double* const* qs, size_t num_queries,
                  double* const* outs, const Step& step,
                  const Finish& finish, const ScalarRow& scalar_row) {
  std::vector<float> scratch(dim * kRowBlock);
  const size_t full = rows - rows % kRowBlock;
  for (size_t e0 = 0; e0 < full; e0 += kRowBlock) {
    TransposeBlock(table, e0, dim, scratch.data());
    size_t q = 0;
    for (; q + 2 <= num_queries; q += 2) {
      const double* qa = qs[q];
      const double* qb = qs[q + 1];
      __m256d a_lo = _mm256_setzero_pd();
      __m256d a_hi = _mm256_setzero_pd();
      __m256d b_lo = _mm256_setzero_pd();
      __m256d b_hi = _mm256_setzero_pd();
      for (size_t i = 0; i < dim; ++i) {
        __m256d vlo, vhi;
        LoadColumn(scratch.data(), i, &vlo, &vhi);
        step(_mm256_broadcast_sd(qa + i), vlo, vhi, &a_lo, &a_hi);
        step(_mm256_broadcast_sd(qb + i), vlo, vhi, &b_lo, &b_hi);
      }
      finish(&a_lo, &a_hi);
      finish(&b_lo, &b_hi);
      _mm256_storeu_pd(outs[q] + e0, a_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, a_hi);
      _mm256_storeu_pd(outs[q + 1] + e0, b_lo);
      _mm256_storeu_pd(outs[q + 1] + e0 + 4, b_hi);
    }
    for (; q < num_queries; ++q) {
      const double* qv = qs[q];
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (size_t i = 0; i < dim; ++i) {
        __m256d vlo, vhi;
        LoadColumn(scratch.data(), i, &vlo, &vhi);
        step(_mm256_broadcast_sd(qv + i), vlo, vhi, &acc_lo, &acc_hi);
      }
      finish(&acc_lo, &acc_hi);
      _mm256_storeu_pd(outs[q] + e0, acc_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, acc_hi);
    }
  }
  for (size_t e = full; e < rows; ++e) {
    const float* row = table + e * dim;
    for (size_t q = 0; q < num_queries; ++q) {
      outs[q][e] = scalar_row(qs[q], row);
    }
  }
}

void Avx2L1(const float* table, size_t rows, size_t dim,
            const double* const* qs, size_t num_queries,
            double* const* outs) {
  BlockedScore(
      table, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        *acc_lo = _mm256_add_pd(
            *acc_lo, _mm256_andnot_pd(kSignMask, _mm256_sub_pd(qb, vlo)));
        *acc_hi = _mm256_add_pd(
            *acc_hi, _mm256_andnot_pd(kSignMask, _mm256_sub_pd(qb, vhi)));
      },
      [](__m256d* acc_lo, __m256d* acc_hi) {
        *acc_lo = _mm256_xor_pd(*acc_lo, kSignMask);
        *acc_hi = _mm256_xor_pd(*acc_hi, kSignMask);
      },
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += std::fabs(qv[i] - row[i]);
        return -acc;
      });
}

void Avx2L2(const float* table, size_t rows, size_t dim,
            const double* const* qs, size_t num_queries,
            double* const* outs) {
  BlockedScore(
      table, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        const __m256d dlo = _mm256_sub_pd(qb, vlo);
        const __m256d dhi = _mm256_sub_pd(qb, vhi);
        // mul then add, not FMA: the scalar path rounds the square before
        // accumulating, and bit-compatibility wins over contraction here.
        *acc_lo = _mm256_add_pd(*acc_lo, _mm256_mul_pd(dlo, dlo));
        *acc_hi = _mm256_add_pd(*acc_hi, _mm256_mul_pd(dhi, dhi));
      },
      [](__m256d* acc_lo, __m256d* acc_hi) {
        *acc_lo = _mm256_xor_pd(_mm256_sqrt_pd(*acc_lo), kSignMask);
        *acc_hi = _mm256_xor_pd(_mm256_sqrt_pd(*acc_hi), kSignMask);
      },
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          const double d = qv[i] - row[i];
          acc += d * d;
        }
        return -std::sqrt(acc);
      });
}

void Avx2Dot(const float* table, size_t rows, size_t dim,
             const double* const* qs, size_t num_queries,
             double* const* outs) {
  BlockedScore(
      table, rows, dim, qs, num_queries, outs,
      [](__m256d qb, __m256d vlo, __m256d vhi, __m256d* acc_lo,
         __m256d* acc_hi) {
        *acc_lo = _mm256_add_pd(*acc_lo, _mm256_mul_pd(qb, vlo));
        *acc_hi = _mm256_add_pd(*acc_hi, _mm256_mul_pd(qb, vhi));
      },
      [](__m256d*, __m256d*) {},
      [dim](const double* qv, const float* row) {
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += qv[i] * row[i];
        return acc;
      });
}

void Avx2PairedDot(const float* table, size_t rows, size_t half,
                   const double* const* qs, size_t num_queries,
                   double* const* outs) {
  const size_t dim = 2 * half;
  std::vector<float> scratch(dim * kRowBlock);
  const size_t full = rows - rows % kRowBlock;
  for (size_t e0 = 0; e0 < full; e0 += kRowBlock) {
    TransposeBlock(table, e0, dim, scratch.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (size_t k = 0; k < half; ++k) {
        __m256d re_lo, re_hi, im_lo, im_hi;
        LoadColumn(scratch.data(), k, &re_lo, &re_hi);
        LoadColumn(scratch.data(), half + k, &im_lo, &im_hi);
        const __m256d wrb = _mm256_broadcast_sd(wr + k);
        const __m256d wib = _mm256_broadcast_sd(wi + k);
        // (wr*re + wi*im) summed per k before accumulating — the scalar
        // ComplEx association, so no FMA here either.
        acc_lo = _mm256_add_pd(
            acc_lo, _mm256_add_pd(_mm256_mul_pd(wrb, re_lo),
                                  _mm256_mul_pd(wib, im_lo)));
        acc_hi = _mm256_add_pd(
            acc_hi, _mm256_add_pd(_mm256_mul_pd(wrb, re_hi),
                                  _mm256_mul_pd(wib, im_hi)));
      }
      _mm256_storeu_pd(outs[q] + e0, acc_lo);
      _mm256_storeu_pd(outs[q] + e0 + 4, acc_hi);
    }
  }
  for (size_t e = full; e < rows; ++e) {
    const float* row = table + e * dim;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      double acc = 0.0;
      for (size_t k = 0; k < half; ++k) {
        acc += wr[k] * row[k] + wi[k] * row[half + k];
      }
      outs[q][e] = acc;
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2", Avx2L1, Avx2L2, Avx2Dot, Avx2PairedDot,
};

}  // namespace

const KernelOps* Avx2Kernels() {
  return CpuSupportsAvx2() ? &kAvx2Ops : nullptr;
}

}  // namespace kernels
}  // namespace kgfd

#else  // !KGFD_HAVE_AVX2

namespace kgfd {
namespace kernels {

const KernelOps* Avx2Kernels() { return nullptr; }

}  // namespace kernels
}  // namespace kgfd

#endif  // KGFD_HAVE_AVX2
