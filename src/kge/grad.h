#ifndef KGFD_KGE_GRAD_H_
#define KGFD_KGE_GRAD_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "kge/tensor.h"

namespace kgfd {

/// Row-sparse gradient accumulator for one mini-batch. KGE batches touch a
/// tiny fraction of the embedding rows, so gradients are stored per touched
/// row; dense parameters (conv filters, projections) simply touch all their
/// rows. Models accumulate into this during backprop; an Optimizer consumes
/// it.
class GradientBatch {
 public:
  /// Returns the gradient row for (tensor, row), zero-initialized on first
  /// touch. The pointer is valid until Clear().
  float* RowGrad(Tensor* tensor, size_t row);

  /// Adds `scale * values[0..n)` into the gradient row.
  void AccumulateRow(Tensor* tensor, size_t row, const float* values,
                     size_t n, float scale);

  /// All touched rows of a tensor (unordered).
  const std::unordered_map<size_t, std::vector<float>>* RowsFor(
      Tensor* tensor) const;

  /// Tensors with at least one touched row.
  std::vector<Tensor*> TouchedTensors() const;

  void Clear() { grads_.clear(); }

 private:
  std::unordered_map<Tensor*,
                     std::unordered_map<size_t, std::vector<float>>>
      grads_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_GRAD_H_
