#include "kge/negative_sampling.h"

#include <unordered_map>
#include <unordered_set>

namespace kgfd {

NegativeSampler::NegativeSampler(const TripleStore* train, bool filtered,
                                 CorruptionScheme scheme)
    : train_(train), filtered_(filtered), scheme_(scheme) {
  subject_prob_.assign(train->num_relations(), 0.5);
  if (scheme_ != CorruptionScheme::kBernoulli) return;
  // tph: mean distinct tails per (head, relation); hpt: mean distinct
  // heads per (relation, tail).
  for (RelationId r = 0; r < train->num_relations(); ++r) {
    const std::vector<Triple>& triples = train->ByRelation(r);
    if (triples.empty()) continue;
    std::unordered_map<EntityId, std::unordered_set<EntityId>> by_head;
    std::unordered_map<EntityId, std::unordered_set<EntityId>> by_tail;
    for (const Triple& t : triples) {
      by_head[t.subject].insert(t.object);
      by_tail[t.object].insert(t.subject);
    }
    double tph = 0.0;
    for (const auto& [head, tails] : by_head) tph += tails.size();
    tph /= static_cast<double>(by_head.size());
    double hpt = 0.0;
    for (const auto& [tail, heads] : by_tail) hpt += heads.size();
    hpt /= static_cast<double>(by_tail.size());
    subject_prob_[r] = tph / (tph + hpt);
  }
}

double NegativeSampler::SubjectCorruptionProbability(RelationId r) const {
  return r < subject_prob_.size() ? subject_prob_[r] : 0.5;
}

Triple NegativeSampler::Corrupt(const Triple& positive, Rng* rng) const {
  const TripleSide side =
      rng->Bernoulli(SubjectCorruptionProbability(positive.relation))
          ? TripleSide::kSubject
          : TripleSide::kObject;
  return CorruptSide(positive, side, rng);
}

Triple NegativeSampler::CorruptSide(const Triple& positive, TripleSide side,
                                    Rng* rng) const {
  constexpr int kMaxRetries = 16;
  Triple corrupted = positive;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    const EntityId e =
        static_cast<EntityId>(rng->UniformInt(train_->num_entities()));
    if (side == TripleSide::kSubject) {
      corrupted.subject = e;
    } else {
      corrupted.object = e;
    }
    if (corrupted == positive) continue;
    if (filtered_ && train_->Contains(corrupted)) continue;
    return corrupted;
  }
  // Dense neighborhoods can exhaust retries; the last draw is still a valid
  // (possibly false-negative) corruption, matching common practice.
  return corrupted;
}

std::vector<Triple> NegativeSampler::CorruptMany(const Triple& positive,
                                                 size_t count,
                                                 Rng* rng) const {
  std::vector<Triple> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const TripleSide side =
        i % 2 == 0 ? TripleSide::kSubject : TripleSide::kObject;
    out.push_back(CorruptSide(positive, side, rng));
  }
  return out;
}

}  // namespace kgfd
