#ifndef KGFD_KGE_GRID_SEARCH_H_
#define KGFD_KGE_GRID_SEARCH_H_

#include <memory>
#include <vector>

#include "kg/dataset.h"
#include "kge/model.h"
#include "kge/trainer.h"
#include "util/status.h"

namespace kgfd {

/// Hyperparameter grid for one model family — the paper's §3.2 "Model
/// Training" step ("we are open to hyperparameters used by prior research
/// as well as doing our own tuning, for instance through grid search").
/// Empty dimensions fall back to the base config's value.
struct GridSearchSpace {
  std::vector<size_t> embedding_dims;
  std::vector<double> learning_rates;
  std::vector<LossKind> losses;
  std::vector<size_t> negatives_per_positive;
};

/// One evaluated grid point.
struct GridTrial {
  ModelConfig model_config;
  TrainerConfig trainer_config;
  double valid_mrr = 0.0;
  double train_seconds = 0.0;
};

struct GridSearchResult {
  /// All trials, in evaluation order.
  std::vector<GridTrial> trials;
  /// Index of the best trial (highest filtered validation MRR).
  size_t best_index = 0;
  /// The trained model of the best trial, kept so callers can use it
  /// without retraining.
  std::unique_ptr<Model> best_model;

  const GridTrial& best() const { return trials[best_index]; }
};

/// Exhaustive grid search: trains one model per grid point on
/// dataset.train(), scores filtered MRR on dataset.valid(), and returns
/// every trial plus the best-trial model. Deterministic in
/// base_trainer.seed.
Result<GridSearchResult> RunGridSearch(ModelKind kind,
                                       const Dataset& dataset,
                                       const ModelConfig& base_model,
                                       const TrainerConfig& base_trainer,
                                       const GridSearchSpace& space);

}  // namespace kgfd

#endif  // KGFD_KGE_GRID_SEARCH_H_
