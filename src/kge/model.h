#ifndef KGFD_KGE_MODEL_H_
#define KGFD_KGE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "kg/types.h"
#include "kge/grad.h"
#include "kge/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgfd {

class QuantizedTable;  // kge/embedding_store.h

/// The KGE models evaluated or described by the paper.
enum class ModelKind {
  kTransE,
  kDistMult,
  kComplEx,
  kRescal,
  kHolE,
  kConvE,
};

const char* ModelKindName(ModelKind kind);
Result<ModelKind> ModelKindFromName(const std::string& name);

/// One corruption-side scoring query. For object-side scoring `entity` is
/// the subject (score (entity, relation, o') for all o'); for subject-side
/// scoring it is the object (score (s', relation, entity) for all s').
struct SideQuery {
  EntityId entity = 0;
  RelationId relation = 0;
};

/// Abstract knowledge-graph embedding model: a scoring function
/// f(s, r, o; Θ) with analytic gradients. Higher scores mean "more
/// plausible". Implementations store all parameters in named Tensors so one
/// optimizer / checkpoint path serves every model.
class Model {
 public:
  virtual ~Model() = default;

  virtual ModelKind kind() const = 0;
  std::string name() const { return ModelKindName(kind()); }

  virtual size_t num_entities() const = 0;
  virtual size_t num_relations() const = 0;
  /// Entity embedding width (model-specific meaning; ComplEx counts real
  /// plus imaginary parts).
  virtual size_t embedding_dim() const = 0;

  /// Plausibility score of one triple.
  virtual double Score(const Triple& t) const = 0;

  /// Scores (s, r, o') for every entity o'. `out` is resized to the entity
  /// count. The workhorse of both link-prediction evaluation and candidate
  /// ranking; implementations share per-(s, r) work across objects.
  virtual void ScoreObjects(EntityId s, RelationId r,
                            std::vector<double>* out) const = 0;

  /// Scores (s', r, o) for every entity s'.
  virtual void ScoreSubjects(RelationId r, EntityId o,
                             std::vector<double>* out) const = 0;

  /// Batch form of ScoreObjects: scores queries[q] = (s, r) against every
  /// entity, resizing and filling *outs[q] like ScoreObjects would. The
  /// hot path of candidate ranking, SideScoreCache precompute and
  /// link-prediction evaluation: TransE/DistMult/ComplEx override this
  /// with blocked, cache-tiled kernels (see kge/kernels.h) that walk the
  /// entity table once per *block* of queries instead of once per query.
  /// Results are bit-identical to per-query ScoreObjects on every kernel
  /// backend. The base implementation loops ScoreObjects.
  virtual void ScoreObjectsBatch(const SideQuery* queries, size_t num_queries,
                                 std::vector<double>* const* outs) const;

  /// Batch form of ScoreSubjects: queries[q] = (o, r) in SideQuery terms.
  virtual void ScoreSubjectsBatch(const SideQuery* queries,
                                  size_t num_queries,
                                  std::vector<double>* const* outs) const;

  /// The scalar the trainer differentiates. Equal to Score() for all models
  /// except those with direction-specific heads (ConvE's reciprocal
  /// relations), where it averages both directions so that
  /// AccumulateScoreGradient() is exactly its gradient.
  virtual double TrainingScore(const Triple& t) const { return Score(t); }

  /// Backpropagates d(loss)/d(score) = `dscore` for triple `t` into the
  /// batch gradients (chain rule through the scoring function only; the
  /// loss derivative is the caller's job).
  virtual void AccumulateScoreGradient(const Triple& t, double dscore,
                                       GradientBatch* grads) = 0;

  /// All trainable parameters. Names are stable across runs and versions
  /// (used by checkpoints).
  virtual std::vector<NamedTensor> Parameters() = 0;

  /// (Re-)initializes all parameters from `rng`.
  virtual void InitParameters(Rng* rng) = 0;

  /// Non-null when the entity table is held quantized (int8/int16 codes +
  /// per-row affine parameters) instead of as a float Parameters() tensor.
  /// Only the kernel-backed pair models (TransE/DistMult/ComplEx) support
  /// quantized storage; everything else always returns null.
  virtual const QuantizedTable* quantized_entities() const { return nullptr; }

  /// Fingerprint of storage NOT visible through Parameters() (quantized
  /// entity tables). Mixed into HashModelParameters so two models that
  /// differ only in quantization never alias a DiscoveryCache. Zero for
  /// float-backed models.
  virtual uint64_t StorageFingerprint() const { return 0; }

  /// Keeps checkpoint-owned backing storage (the mmap'd file a tensor
  /// view points into) alive for the model's lifetime.
  void AttachStorageKeepalive(std::shared_ptr<const void> keepalive) {
    storage_keepalive_ = std::move(keepalive);
  }

  /// Total number of scalar parameters.
  size_t NumParameters() {
    size_t n = 0;
    for (const NamedTensor& p : Parameters()) n += p.tensor->size();
    return n;
  }

 private:
  std::shared_ptr<const void> storage_keepalive_;
};

/// Model construction options. Fields irrelevant to a given model are
/// ignored (e.g. conv settings for TransE).
struct ModelConfig {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t embedding_dim = 32;
  /// TransE distance: 1 = L1, 2 = L2.
  int transe_norm = 1;
  /// ConvE: number of 3x3 filters.
  size_t conve_num_filters = 8;
  /// ConvE: embedding reshape height; dim must be divisible by it.
  size_t conve_reshape_height = 4;
};

/// Instantiates a model with freshly initialized parameters.
Result<std::unique_ptr<Model>> CreateModel(ModelKind kind,
                                           const ModelConfig& config,
                                           Rng* rng);

/// Instantiates a model WITHOUT random parameter initialization — all
/// parameters are zero until the caller fills them. Checkpoint loaders use
/// this so a load never pays the RNG sweep its parameters would only
/// overwrite.
Result<std::unique_ptr<Model>> CreateModelUninitialized(
    ModelKind kind, const ModelConfig& config);

/// The shared model/graph shape contract enforced by both fact discovery
/// and link-prediction evaluation: the model's entity vocabulary must match
/// the graph's exactly — ScoreObjects/ScoreSubjects rank over *every* model
/// entity, so extra or missing entities would silently change all ranks —
/// while the model may know *more* relations than the graph uses (a model
/// trained on a superset vocabulary can score a sub-KG slice).
Status ValidateModelShape(const Model& model, size_t num_entities,
                          size_t num_relations);

}  // namespace kgfd

#endif  // KGFD_KGE_MODEL_H_
