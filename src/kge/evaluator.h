#ifndef KGFD_KGE_EVALUATOR_H_
#define KGFD_KGE_EVALUATOR_H_

#include <vector>

#include "kg/dataset.h"
#include "kge/model.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace kgfd {

/// Aggregate link-prediction metrics over a set of ranks.
struct LinkPredictionMetrics {
  double mrr = 0.0;
  double mean_rank = 0.0;
  double hits_at_1 = 0.0;
  double hits_at_3 = 0.0;
  double hits_at_10 = 0.0;
  size_t num_ranks = 0;
};

/// Folds a list of (possibly fractional, mid-tie) ranks into metrics.
LinkPredictionMetrics MetricsFromRanks(const std::vector<double>& ranks);

/// Mid-tie rank of `scores[target]` among the non-excluded entries:
///   rank = 1 + |greater| + |ties| / 2.
/// `excluded[i] != 0` removes entry i from the corruption pool (the target
/// itself is never counted as its own corruption). This is the tie handling
/// of LibKGE ("rank mean").
double RankAgainstScores(const std::vector<double>& scores, size_t target,
                         const std::vector<char>* excluded);

class MetricsRegistry;

/// Metric names EvaluateLinkPrediction populates when EvalConfig::metrics
/// is set (see src/obs/).
inline constexpr char kEvalSpan[] = "eval.link_prediction.seconds";
inline constexpr char kEvalTriplesCounter[] = "eval.triples.ranked";
inline constexpr char kEvalThroughputGauge[] = "eval.ranks_per_sec";

struct EvalConfig {
  /// Filtered protocol (Bordes et al.): corruptions that are known true
  /// triples (in any split) are excluded from the ranking pool.
  bool filtered = true;
  /// When set, evaluation latency, triples-ranked counters and a scoring
  /// throughput gauge are recorded here (metric names above).
  MetricsRegistry* metrics = nullptr;
  /// Cooperative stop signal, observed between ranked triples. Unlike
  /// discovery, a stopped evaluation returns an *error* (Cancelled /
  /// DeadlineExceeded) rather than partial metrics — metrics over an
  /// arbitrary prefix of the split would be silently misleading.
  CancelContext cancel;
};

class ThreadPool;

/// Both-side link-prediction evaluation of `split` (typically the test
/// split): each triple is ranked against all object corruptions and all
/// subject corruptions; both ranks enter the metrics. Scoring is read-only
/// on the model, so a non-null `pool` parallelizes over the split's triples
/// with identical (deterministic) results.
Result<LinkPredictionMetrics> EvaluateLinkPrediction(
    const Model& model, const Dataset& dataset, const TripleStore& split,
    const EvalConfig& config = EvalConfig(), ThreadPool* pool = nullptr);

/// Metrics split by the popularity (undirected training-graph degree) of
/// the predicted entity — the popularity-aware evaluation the paper's §6
/// points to (Mohamed et al. 2020): aggregate MRR hides that models do
/// well on hub entities and poorly on the long tail.
struct StratifiedMetrics {
  /// One entry per bucket, ordered least to most popular.
  std::vector<LinkPredictionMetrics> buckets;
  /// Inclusive upper degree edge of each bucket.
  std::vector<uint64_t> bucket_max_degree;
};

/// Both-side evaluation of `split` with each rank attributed to the degree
/// bucket of the entity being predicted (the target of the corrupted
/// side). Buckets are degree quantiles over entities that occur in train.
Result<StratifiedMetrics> EvaluateByPopularity(
    const Model& model, const Dataset& dataset, const TripleStore& split,
    size_t num_buckets, const EvalConfig& config = EvalConfig());

/// Per-triple side ranks, for callers that need the raw ranks (the fact
/// discovery pipeline, rank-distribution tests).
struct SideRanks {
  double subject_rank = 0.0;
  double object_rank = 0.0;
};

/// Ranks one triple against its corruptions on both sides. `known` supplies
/// the filter sets (pass the training store for discovery, or the whole
/// dataset's splits for test evaluation via `extra_known`).
SideRanks RankTriple(const Model& model, const Triple& t,
                     const TripleStore& known, bool filtered);

}  // namespace kgfd

#endif  // KGFD_KGE_EVALUATOR_H_
