#include "kge/models/conve.h"

#include <cstring>

namespace kgfd {

Status ConvEModel::ValidateConfig(const ModelConfig& config) {
  const size_t h = config.conve_reshape_height;
  if (h < 2 || config.embedding_dim % h != 0) {
    return Status::InvalidArgument(
        "ConvE needs conve_reshape_height >= 2 dividing embedding_dim (got "
        "height " +
        std::to_string(h) + ", dim " +
        std::to_string(config.embedding_dim) + ")");
  }
  if (config.embedding_dim / h < 3) {
    return Status::InvalidArgument(
        "ConvE reshape width must be >= 3 for a 3x3 convolution (got " +
        std::to_string(config.embedding_dim / h) + ")");
  }
  if (config.conve_num_filters == 0) {
    return Status::InvalidArgument("ConvE needs >= 1 filter");
  }
  return Status::OK();
}

ConvEModel::ConvEModel(const ModelConfig& config)
    : dim_(config.embedding_dim),
      img_h_(config.conve_reshape_height),
      img_w_(config.embedding_dim / config.conve_reshape_height),
      num_filters_(config.conve_num_filters),
      out_h_(2 * img_h_ - 2),
      out_w_(img_w_ - 2),
      flat_(num_filters_ * out_h_ * out_w_),
      entities_(config.num_entities, dim_),
      relations_(config.num_relations * 2, dim_),
      conv_w_(num_filters_, 9),
      conv_b_(1, num_filters_),
      fc_w_(flat_, dim_),
      fc_b_(1, dim_),
      ent_bias_(config.num_entities, 1) {}

std::vector<NamedTensor> ConvEModel::Parameters() {
  return {{"entities", &entities_}, {"relations", &relations_},
          {"conv_w", &conv_w_},     {"conv_b", &conv_b_},
          {"fc_w", &fc_w_},         {"fc_b", &fc_b_},
          {"ent_bias", &ent_bias_}};
}

void ConvEModel::InitParameters(Rng* rng) {
  entities_.InitXavierUniform(rng, dim_, dim_);
  relations_.InitXavierUniform(rng, dim_, dim_);
  conv_w_.InitXavierUniform(rng, 9, 9 * num_filters_);
  conv_b_.Fill(0.0f);
  fc_w_.InitXavierUniform(rng, flat_, dim_);
  fc_b_.Fill(0.0f);
  ent_bias_.Fill(0.0f);
}

void ConvEModel::Forward(EntityId in_entity, size_t relation_row,
                         ForwardCache* cache) const {
  ForwardCache local;
  ForwardCache& c = cache != nullptr ? *cache : local;

  // Stack [entity; relation] into a (2*img_h_, img_w_) image.
  const size_t in_h = 2 * img_h_;
  c.image.resize(in_h * img_w_);
  std::memcpy(c.image.data(), entities_.Row(in_entity),
              dim_ * sizeof(float));
  std::memcpy(c.image.data() + dim_, relations_.Row(relation_row),
              dim_ * sizeof(float));

  // Valid 3x3 convolution + ReLU.
  c.conv_pre.resize(flat_);
  c.conv_out.resize(flat_);
  for (size_t f = 0; f < num_filters_; ++f) {
    const float* w = conv_w_.Row(f);
    const float bias = conv_b_.At(0, f);
    float* pre = c.conv_pre.data() + f * out_h_ * out_w_;
    float* out = c.conv_out.data() + f * out_h_ * out_w_;
    for (size_t oy = 0; oy < out_h_; ++oy) {
      for (size_t ox = 0; ox < out_w_; ++ox) {
        float acc = bias;
        for (size_t ky = 0; ky < 3; ++ky) {
          const float* img_row = c.image.data() + (oy + ky) * img_w_ + ox;
          acc += w[ky * 3 + 0] * img_row[0] + w[ky * 3 + 1] * img_row[1] +
                 w[ky * 3 + 2] * img_row[2];
        }
        const size_t idx = oy * out_w_ + ox;
        pre[idx] = acc;
        out[idx] = acc > 0.0f ? acc : 0.0f;
      }
    }
  }

  // Dense projection back to embedding width + ReLU.
  c.fc_pre.assign(fc_b_.Row(0), fc_b_.Row(0) + dim_);
  for (size_t m = 0; m < flat_; ++m) {
    const float z = c.conv_out[m];
    if (z == 0.0f) continue;
    const float* wrow = fc_w_.Row(m);
    for (size_t j = 0; j < dim_; ++j) c.fc_pre[j] += z * wrow[j];
  }
  c.hidden.resize(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    c.hidden[j] = c.fc_pre[j] > 0.0f ? c.fc_pre[j] : 0.0f;
  }
}

double ConvEModel::OutputScore(const std::vector<float>& hidden,
                               EntityId out_entity) const {
  const float* e = entities_.Row(out_entity);
  double acc = ent_bias_.At(out_entity, 0);
  for (size_t j = 0; j < dim_; ++j) {
    acc += static_cast<double>(hidden[j]) * e[j];
  }
  return acc;
}

double ConvEModel::Score(const Triple& t) const {
  ForwardCache c;
  Forward(t.subject, t.relation, &c);
  return OutputScore(c.hidden, t.object);
}

double ConvEModel::TrainingScore(const Triple& t) const {
  ForwardCache fwd;
  Forward(t.subject, t.relation, &fwd);
  ForwardCache inv;
  Forward(t.object, InverseRow(t.relation), &inv);
  return 0.5 * (OutputScore(fwd.hidden, t.object) +
                OutputScore(inv.hidden, t.subject));
}

void ConvEModel::ScoreObjects(EntityId s, RelationId r,
                              std::vector<double>* out) const {
  ForwardCache c;
  Forward(s, r, &c);
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    (*out)[e] = OutputScore(c.hidden, e);
  }
}

void ConvEModel::ScoreSubjects(RelationId r, EntityId o,
                               std::vector<double>* out) const {
  // Reciprocal-relations head: (s', r, o) scored as (o, r^-1, s').
  ForwardCache c;
  Forward(o, InverseRow(r), &c);
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    (*out)[e] = OutputScore(c.hidden, e);
  }
}

void ConvEModel::BackpropDirection(EntityId in_entity, size_t relation_row,
                                   EntityId out_entity, double dscore,
                                   GradientBatch* grads) {
  ForwardCache c;
  Forward(in_entity, relation_row, &c);
  const float ds = static_cast<float>(dscore);

  // Output layer: score = hidden . e_out + bias[out].
  grads->AccumulateRow(&entities_, out_entity, c.hidden.data(), dim_, ds);
  grads->RowGrad(&ent_bias_, out_entity)[0] += ds;

  // d/d hidden, through the FC ReLU.
  const float* e_out = entities_.Row(out_entity);
  std::vector<float> d_pre(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    d_pre[j] = c.fc_pre[j] > 0.0f ? ds * e_out[j] : 0.0f;
  }
  grads->AccumulateRow(&fc_b_, 0, d_pre.data(), dim_, 1.0f);

  // FC weights and conv-output gradient.
  std::vector<float> d_conv_out(flat_, 0.0f);
  for (size_t m = 0; m < flat_; ++m) {
    const float z = c.conv_out[m];
    const float* wrow = fc_w_.Row(m);
    float dz = 0.0f;
    for (size_t j = 0; j < dim_; ++j) dz += wrow[j] * d_pre[j];
    d_conv_out[m] = dz;
    if (z != 0.0f) grads->AccumulateRow(&fc_w_, m, d_pre.data(), dim_, z);
  }

  // Through the conv ReLU, into filters, bias and the input image.
  std::vector<float> d_image(c.image.size(), 0.0f);
  float* g_conv_b = grads->RowGrad(&conv_b_, 0);
  for (size_t f = 0; f < num_filters_; ++f) {
    const float* w = conv_w_.Row(f);
    float* gw = grads->RowGrad(&conv_w_, f);
    const float* pre = c.conv_pre.data() + f * out_h_ * out_w_;
    const float* dout = d_conv_out.data() + f * out_h_ * out_w_;
    for (size_t oy = 0; oy < out_h_; ++oy) {
      for (size_t ox = 0; ox < out_w_; ++ox) {
        const size_t idx = oy * out_w_ + ox;
        if (pre[idx] <= 0.0f) continue;
        const float da = dout[idx];
        if (da == 0.0f) continue;
        g_conv_b[f] += da;
        for (size_t ky = 0; ky < 3; ++ky) {
          const size_t img_off = (oy + ky) * img_w_ + ox;
          for (size_t kx = 0; kx < 3; ++kx) {
            gw[ky * 3 + kx] += da * c.image[img_off + kx];
            d_image[img_off + kx] += da * w[ky * 3 + kx];
          }
        }
      }
    }
  }

  // Split the image gradient back into the entity and relation rows.
  grads->AccumulateRow(&entities_, in_entity, d_image.data(), dim_, 1.0f);
  grads->AccumulateRow(&relations_, relation_row, d_image.data() + dim_,
                       dim_, 1.0f);
}

void ConvEModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                         GradientBatch* grads) {
  // Matches TrainingScore: half weight per direction.
  BackpropDirection(t.subject, t.relation, t.object, 0.5 * dscore, grads);
  BackpropDirection(t.object, InverseRow(t.relation), t.subject,
                    0.5 * dscore, grads);
}

}  // namespace kgfd
