#ifndef KGFD_KGE_MODELS_COMPLEX_H_
#define KGFD_KGE_MODELS_COMPLEX_H_

#include "kge/models/pair_embedding_model.h"

namespace kgfd {

/// ComplEx (Trouillon et al. 2016): f(s, r, o) = Re(<s, r, conj(o)>) over
/// complex embeddings. Rows store [real_0..real_{l/2-1}, imag_0..imag_{l/2-1}];
/// `embedding_dim` counts real scalars, so the complex rank is dim / 2.
/// The asymmetric Hermitian product lets ComplEx model non-symmetric
/// relations that defeat DistMult.
class ComplExModel : public PairEmbeddingModel {
 public:
  /// InvalidArgument unless `config` can parameterize a ComplEx model
  /// (embedding_dim must be even: rows are real halves followed by
  /// imaginary halves). Must pass before constructing; the constructor
  /// assumes a validated config. CreateModel and LoadModel call this and
  /// surface the Status instead of aborting.
  static Status ValidateConfig(const ModelConfig& config);

  /// Requires ValidateConfig(config).ok().
  explicit ComplExModel(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kComplEx; }
  double Score(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void ScoreObjectsBatch(const SideQuery* queries, size_t num_queries,
                         std::vector<double>* const* outs) const override;
  void ScoreSubjectsBatch(const SideQuery* queries, size_t num_queries,
                          std::vector<double>* const* outs) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;

 private:
  size_t half_;  // complex rank = dim / 2
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_COMPLEX_H_
