#include "kge/models/transe.h"

#include <cmath>

namespace kgfd {

TransEModel::TransEModel(const ModelConfig& config)
    : PairEmbeddingModel(config, config.embedding_dim),
      norm_(config.transe_norm) {}

double TransEModel::Score(const Triple& t) const {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  double acc = 0.0;
  if (norm_ == 1) {
    for (size_t i = 0; i < dim_; ++i) {
      acc += std::fabs(static_cast<double>(s[i]) + r[i] - o[i]);
    }
    return -acc;
  }
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    acc += d * d;
  }
  return -std::sqrt(acc);
}

void TransEModel::ScoreObjects(EntityId s, RelationId r,
                               std::vector<double>* out) const {
  out->resize(num_entities());
  std::vector<double> q(dim_);
  const float* sv = entities_.Row(s);
  const float* rv = relations_.Row(r);
  for (size_t i = 0; i < dim_; ++i) q[i] = static_cast<double>(sv[i]) + rv[i];
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* ov = entities_.Row(e);
    double acc = 0.0;
    if (norm_ == 1) {
      for (size_t i = 0; i < dim_; ++i) acc += std::fabs(q[i] - ov[i]);
      (*out)[e] = -acc;
    } else {
      for (size_t i = 0; i < dim_; ++i) {
        const double d = q[i] - ov[i];
        acc += d * d;
      }
      (*out)[e] = -std::sqrt(acc);
    }
  }
}

void TransEModel::ScoreSubjects(RelationId r, EntityId o,
                                std::vector<double>* out) const {
  out->resize(num_entities());
  // -||s + r - o|| = -||s - (o - r)||: one target vector for all subjects.
  std::vector<double> q(dim_);
  const float* rv = relations_.Row(r);
  const float* ov = entities_.Row(o);
  for (size_t i = 0; i < dim_; ++i) q[i] = static_cast<double>(ov[i]) - rv[i];
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* sv = entities_.Row(e);
    double acc = 0.0;
    if (norm_ == 1) {
      for (size_t i = 0; i < dim_; ++i) acc += std::fabs(sv[i] - q[i]);
      (*out)[e] = -acc;
    } else {
      for (size_t i = 0; i < dim_; ++i) {
        const double d = sv[i] - q[i];
        acc += d * d;
      }
      (*out)[e] = -std::sqrt(acc);
    }
  }
}

void TransEModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                          GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);

  if (norm_ == 1) {
    // d(-||d||_1)/dd_i = -sign(d_i); subgradient 0 at d_i == 0.
    for (size_t i = 0; i < dim_; ++i) {
      const double d = static_cast<double>(s[i]) + r[i] - o[i];
      const double sign = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
      const float g = static_cast<float>(-sign * dscore);
      gs[i] += g;
      gr[i] += g;
      go[i] -= g;
    }
    return;
  }
  double norm = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    norm += d * d;
  }
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;  // gradient undefined at the origin
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    const float g = static_cast<float>(-(d / norm) * dscore);
    gs[i] += g;
    gr[i] += g;
    go[i] -= g;
  }
}

}  // namespace kgfd
