#include "kge/models/transe.h"

#include <cmath>

#include "kge/kernels.h"
#include "kge/models/query_prep.h"

namespace kgfd {

TransEModel::TransEModel(const ModelConfig& config)
    : PairEmbeddingModel(config, config.embedding_dim),
      norm_(config.transe_norm) {}

double TransEModel::Score(const Triple& t) const {
  thread_local std::vector<float> sbuf, obuf;
  const float* s = EntityRow(t.subject, &sbuf);
  const float* r = relations_.Row(t.relation);
  const float* o = EntityRow(t.object, &obuf);
  double acc = 0.0;
  if (norm_ == 1) {
    for (size_t i = 0; i < dim_; ++i) {
      acc += std::fabs(static_cast<double>(s[i]) + r[i] - o[i]);
    }
    return -acc;
  }
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    acc += d * d;
  }
  return -std::sqrt(acc);
}

// Both corruption sides reduce to a distance-to-one-target kernel: objects
// rank against q = s + r (score -||q - o'||), subjects against q = o - r
// (score -||s' - q||, and ||s' - q|| == ||q - s'|| exactly in IEEE
// arithmetic, so one kernel family serves both sides bit-identically).

void TransEModel::ScoreObjectsBatch(const SideQuery* queries,
                                    size_t num_queries,
                                    std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* sv = EntityRow(queries[q].entity, &ebuf);
    const float* rv = relations_.Row(queries[q].relation);
    double* dst = prep.query(q);
    for (size_t i = 0; i < dim_; ++i) {
      dst[i] = static_cast<double>(sv[i]) + rv[i];
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    (norm_ == 1 ? ops.l1_scores_quant : ops.l2_scores_quant)(
        qentities_.KernelTable(), num_entities(), dim_, prep.qs(),
        num_queries, prep.outs());
  } else {
    (norm_ == 1 ? ops.l1_scores : ops.l2_scores)(
        entities_.flat(), num_entities(), dim_, prep.qs(), num_queries,
        prep.outs());
  }
}

void TransEModel::ScoreSubjectsBatch(const SideQuery* queries,
                                     size_t num_queries,
                                     std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* rv = relations_.Row(queries[q].relation);
    const float* ov = EntityRow(queries[q].entity, &ebuf);
    double* dst = prep.query(q);
    for (size_t i = 0; i < dim_; ++i) {
      dst[i] = static_cast<double>(ov[i]) - rv[i];
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    (norm_ == 1 ? ops.l1_scores_quant : ops.l2_scores_quant)(
        qentities_.KernelTable(), num_entities(), dim_, prep.qs(),
        num_queries, prep.outs());
  } else {
    (norm_ == 1 ? ops.l1_scores : ops.l2_scores)(
        entities_.flat(), num_entities(), dim_, prep.qs(), num_queries,
        prep.outs());
  }
}

void TransEModel::ScoreObjects(EntityId s, RelationId r,
                               std::vector<double>* out) const {
  const SideQuery query{s, r};
  std::vector<double>* const outs[] = {out};
  ScoreObjectsBatch(&query, 1, outs);
}

void TransEModel::ScoreSubjects(RelationId r, EntityId o,
                                std::vector<double>* out) const {
  const SideQuery query{o, r};
  std::vector<double>* const outs[] = {out};
  ScoreSubjectsBatch(&query, 1, outs);
}

void TransEModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                          GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);

  if (norm_ == 1) {
    // d(-||d||_1)/dd_i = -sign(d_i); subgradient 0 at d_i == 0.
    for (size_t i = 0; i < dim_; ++i) {
      const double d = static_cast<double>(s[i]) + r[i] - o[i];
      const double sign = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
      const float g = static_cast<float>(-sign * dscore);
      gs[i] += g;
      gr[i] += g;
      go[i] -= g;
    }
    return;
  }
  double norm = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    norm += d * d;
  }
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;  // gradient undefined at the origin
  for (size_t i = 0; i < dim_; ++i) {
    const double d = static_cast<double>(s[i]) + r[i] - o[i];
    const float g = static_cast<float>(-(d / norm) * dscore);
    gs[i] += g;
    gr[i] += g;
    go[i] -= g;
  }
}

}  // namespace kgfd
