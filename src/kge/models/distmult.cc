#include "kge/models/distmult.h"

#include "kge/kernels.h"
#include "kge/models/query_prep.h"

namespace kgfd {

double DistMultModel::Score(const Triple& t) const {
  thread_local std::vector<float> sbuf, obuf;
  const float* s = EntityRow(t.subject, &sbuf);
  const float* r = relations_.Row(t.relation);
  const float* o = EntityRow(t.object, &obuf);
  double acc = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    acc += static_cast<double>(s[i]) * r[i] * o[i];
  }
  return acc;
}

// DistMult is bilinear and symmetric, so both corruption sides are one dot
// kernel against a per-query factor vector: w = s ⊙ r for objects,
// w = r ⊙ o for subjects.

void DistMultModel::ScoreObjectsBatch(const SideQuery* queries,
                                      size_t num_queries,
                                      std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* sv = EntityRow(queries[q].entity, &ebuf);
    const float* rv = relations_.Row(queries[q].relation);
    double* dst = prep.query(q);
    for (size_t i = 0; i < dim_; ++i) {
      dst[i] = static_cast<double>(sv[i]) * rv[i];
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    ops.dot_scores_quant(qentities_.KernelTable(), num_entities(), dim_,
                         prep.qs(), num_queries, prep.outs());
  } else {
    ops.dot_scores(entities_.flat(), num_entities(), dim_, prep.qs(),
                   num_queries, prep.outs());
  }
}

void DistMultModel::ScoreSubjectsBatch(
    const SideQuery* queries, size_t num_queries,
    std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* rv = relations_.Row(queries[q].relation);
    const float* ov = EntityRow(queries[q].entity, &ebuf);
    double* dst = prep.query(q);
    for (size_t i = 0; i < dim_; ++i) {
      dst[i] = static_cast<double>(rv[i]) * ov[i];
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    ops.dot_scores_quant(qentities_.KernelTable(), num_entities(), dim_,
                         prep.qs(), num_queries, prep.outs());
  } else {
    ops.dot_scores(entities_.flat(), num_entities(), dim_, prep.qs(),
                   num_queries, prep.outs());
  }
}

void DistMultModel::ScoreObjects(EntityId s, RelationId r,
                                 std::vector<double>* out) const {
  const SideQuery query{s, r};
  std::vector<double>* const outs[] = {out};
  ScoreObjectsBatch(&query, 1, outs);
}

void DistMultModel::ScoreSubjects(RelationId r, EntityId o,
                                  std::vector<double>* out) const {
  const SideQuery query{o, r};
  std::vector<double>* const outs[] = {out};
  ScoreSubjectsBatch(&query, 1, outs);
}

void DistMultModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                            GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);
  for (size_t i = 0; i < dim_; ++i) {
    gs[i] += static_cast<float>(dscore * r[i] * o[i]);
    gr[i] += static_cast<float>(dscore * s[i] * o[i]);
    go[i] += static_cast<float>(dscore * s[i] * r[i]);
  }
}

}  // namespace kgfd
