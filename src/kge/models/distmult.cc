#include "kge/models/distmult.h"

namespace kgfd {
namespace {

/// Scores every entity row against the fixed per-(s,r) factor vector w:
/// score(e) = sum_i w_i * E[e][i]. Shared by both corruption sides because
/// DistMult is bilinear and symmetric.
void DotAllRows(const Tensor& entities, const std::vector<double>& w,
                std::vector<double>* out) {
  out->resize(entities.rows());
  for (size_t e = 0; e < entities.rows(); ++e) {
    const float* ev = entities.Row(e);
    double acc = 0.0;
    for (size_t i = 0; i < w.size(); ++i) acc += w[i] * ev[i];
    (*out)[e] = acc;
  }
}

}  // namespace

double DistMultModel::Score(const Triple& t) const {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  double acc = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    acc += static_cast<double>(s[i]) * r[i] * o[i];
  }
  return acc;
}

void DistMultModel::ScoreObjects(EntityId s, RelationId r,
                                 std::vector<double>* out) const {
  const float* sv = entities_.Row(s);
  const float* rv = relations_.Row(r);
  std::vector<double> w(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    w[i] = static_cast<double>(sv[i]) * rv[i];
  }
  DotAllRows(entities_, w, out);
}

void DistMultModel::ScoreSubjects(RelationId r, EntityId o,
                                  std::vector<double>* out) const {
  const float* rv = relations_.Row(r);
  const float* ov = entities_.Row(o);
  std::vector<double> w(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    w[i] = static_cast<double>(rv[i]) * ov[i];
  }
  DotAllRows(entities_, w, out);
}

void DistMultModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                            GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);
  for (size_t i = 0; i < dim_; ++i) {
    gs[i] += static_cast<float>(dscore * r[i] * o[i]);
    gr[i] += static_cast<float>(dscore * s[i] * o[i]);
    go[i] += static_cast<float>(dscore * s[i] * r[i]);
  }
}

}  // namespace kgfd
