#include "kge/models/complex.h"

namespace kgfd {

Status ComplExModel::ValidateConfig(const ModelConfig& config) {
  if (config.embedding_dim % 2 != 0) {
    return Status::InvalidArgument(
        "ComplEx needs an even embedding_dim (got " +
        std::to_string(config.embedding_dim) +
        "): rows store real and imaginary halves of dim/2 complex numbers");
  }
  return Status::OK();
}

ComplExModel::ComplExModel(const ModelConfig& config)
    : PairEmbeddingModel(config, config.embedding_dim),
      half_(config.embedding_dim / 2) {}

double ComplExModel::Score(const Triple& t) const {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  const float* sr = s;
  const float* si = s + half_;
  const float* rr = r;
  const float* ri = r + half_;
  const float* orr = o;
  const float* oi = o + half_;
  double acc = 0.0;
  for (size_t k = 0; k < half_; ++k) {
    acc += static_cast<double>(sr[k]) * rr[k] * orr[k] +
           static_cast<double>(si[k]) * rr[k] * oi[k] +
           static_cast<double>(sr[k]) * ri[k] * oi[k] -
           static_cast<double>(si[k]) * ri[k] * orr[k];
  }
  return acc;
}

void ComplExModel::ScoreObjects(EntityId s, RelationId r,
                                std::vector<double>* out) const {
  const float* sv = entities_.Row(s);
  const float* rv = relations_.Row(r);
  // score(o) = <w_r, o_r> + <w_i, o_i> with w = s * r (complex product).
  std::vector<double> wr(half_), wi(half_);
  for (size_t k = 0; k < half_; ++k) {
    const double sr = sv[k], si = sv[half_ + k];
    const double rr = rv[k], ri = rv[half_ + k];
    wr[k] = sr * rr - si * ri;
    wi[k] = si * rr + sr * ri;
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* ov = entities_.Row(e);
    double acc = 0.0;
    for (size_t k = 0; k < half_; ++k) {
      acc += wr[k] * ov[k] + wi[k] * ov[half_ + k];
    }
    (*out)[e] = acc;
  }
}

void ComplExModel::ScoreSubjects(RelationId r, EntityId o,
                                 std::vector<double>* out) const {
  const float* rv = relations_.Row(r);
  const float* ov = entities_.Row(o);
  // score(s) = <u_r, s_r> + <u_i, s_i> with u = conj(r) * o... spelled out:
  //   u_r[k] = rr*or + ri*oi,  u_i[k] = rr*oi - ri*or.
  std::vector<double> ur(half_), ui(half_);
  for (size_t k = 0; k < half_; ++k) {
    const double rr = rv[k], ri = rv[half_ + k];
    const double orr = ov[k], oi = ov[half_ + k];
    ur[k] = rr * orr + ri * oi;
    ui[k] = rr * oi - ri * orr;
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* sv = entities_.Row(e);
    double acc = 0.0;
    for (size_t k = 0; k < half_; ++k) {
      acc += ur[k] * sv[k] + ui[k] * sv[half_ + k];
    }
    (*out)[e] = acc;
  }
}

void ComplExModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                           GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);
  for (size_t k = 0; k < half_; ++k) {
    const double sr = s[k], si = s[half_ + k];
    const double rr = r[k], ri = r[half_ + k];
    const double orr = o[k], oi = o[half_ + k];
    gs[k] += static_cast<float>(dscore * (rr * orr + ri * oi));
    gs[half_ + k] += static_cast<float>(dscore * (rr * oi - ri * orr));
    gr[k] += static_cast<float>(dscore * (sr * orr + si * oi));
    gr[half_ + k] += static_cast<float>(dscore * (sr * oi - si * orr));
    go[k] += static_cast<float>(dscore * (sr * rr - si * ri));
    go[half_ + k] += static_cast<float>(dscore * (si * rr + sr * ri));
  }
}

}  // namespace kgfd
