#include "kge/models/complex.h"

#include "kge/kernels.h"
#include "kge/models/query_prep.h"

namespace kgfd {

Status ComplExModel::ValidateConfig(const ModelConfig& config) {
  if (config.embedding_dim % 2 != 0) {
    return Status::InvalidArgument(
        "ComplEx needs an even embedding_dim (got " +
        std::to_string(config.embedding_dim) +
        "): rows store real and imaginary halves of dim/2 complex numbers");
  }
  return Status::OK();
}

ComplExModel::ComplExModel(const ModelConfig& config)
    : PairEmbeddingModel(config, config.embedding_dim),
      half_(config.embedding_dim / 2) {}

double ComplExModel::Score(const Triple& t) const {
  thread_local std::vector<float> sbuf, obuf;
  const float* s = EntityRow(t.subject, &sbuf);
  const float* r = relations_.Row(t.relation);
  const float* o = EntityRow(t.object, &obuf);
  const float* sr = s;
  const float* si = s + half_;
  const float* rr = r;
  const float* ri = r + half_;
  const float* orr = o;
  const float* oi = o + half_;
  double acc = 0.0;
  for (size_t k = 0; k < half_; ++k) {
    acc += static_cast<double>(sr[k]) * rr[k] * orr[k] +
           static_cast<double>(si[k]) * rr[k] * oi[k] +
           static_cast<double>(sr[k]) * ri[k] * oi[k] -
           static_cast<double>(si[k]) * ri[k] * orr[k];
  }
  return acc;
}

// Both corruption sides factor into one paired-dot kernel pass against a
// per-query complex vector, stored as [real half | imaginary half]:
// objects use w = s * r (complex product), subjects use u = conj(r) * o.

void ComplExModel::ScoreObjectsBatch(const SideQuery* queries,
                                     size_t num_queries,
                                     std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* sv = EntityRow(queries[q].entity, &ebuf);
    const float* rv = relations_.Row(queries[q].relation);
    double* wr = prep.query(q);
    double* wi = wr + half_;
    for (size_t k = 0; k < half_; ++k) {
      const double sr = sv[k], si = sv[half_ + k];
      const double rr = rv[k], ri = rv[half_ + k];
      wr[k] = sr * rr - si * ri;
      wi[k] = si * rr + sr * ri;
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    ops.paired_dot_scores_quant(qentities_.KernelTable(), num_entities(),
                                half_, prep.qs(), num_queries, prep.outs());
  } else {
    ops.paired_dot_scores(entities_.flat(), num_entities(), half_, prep.qs(),
                          num_queries, prep.outs());
  }
}

void ComplExModel::ScoreSubjectsBatch(
    const SideQuery* queries, size_t num_queries,
    std::vector<double>* const* outs) const {
  QueryPrep prep(num_queries, dim_, num_entities(), outs);
  std::vector<float> ebuf;
  for (size_t q = 0; q < num_queries; ++q) {
    const float* rv = relations_.Row(queries[q].relation);
    const float* ov = EntityRow(queries[q].entity, &ebuf);
    double* ur = prep.query(q);
    double* ui = ur + half_;
    // u = conj(r) * o: u_r[k] = rr*or + ri*oi, u_i[k] = rr*oi - ri*or.
    for (size_t k = 0; k < half_; ++k) {
      const double rr = rv[k], ri = rv[half_ + k];
      const double orr = ov[k], oi = ov[half_ + k];
      ur[k] = rr * orr + ri * oi;
      ui[k] = rr * oi - ri * orr;
    }
  }
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  if (quantized()) {
    ops.paired_dot_scores_quant(qentities_.KernelTable(), num_entities(),
                                half_, prep.qs(), num_queries, prep.outs());
  } else {
    ops.paired_dot_scores(entities_.flat(), num_entities(), half_, prep.qs(),
                          num_queries, prep.outs());
  }
}

void ComplExModel::ScoreObjects(EntityId s, RelationId r,
                                std::vector<double>* out) const {
  const SideQuery query{s, r};
  std::vector<double>* const outs[] = {out};
  ScoreObjectsBatch(&query, 1, outs);
}

void ComplExModel::ScoreSubjects(RelationId r, EntityId o,
                                 std::vector<double>* out) const {
  const SideQuery query{o, r};
  std::vector<double>* const outs[] = {out};
  ScoreSubjectsBatch(&query, 1, outs);
}

void ComplExModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                           GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);
  for (size_t k = 0; k < half_; ++k) {
    const double sr = s[k], si = s[half_ + k];
    const double rr = r[k], ri = r[half_ + k];
    const double orr = o[k], oi = o[half_ + k];
    gs[k] += static_cast<float>(dscore * (rr * orr + ri * oi));
    gs[half_ + k] += static_cast<float>(dscore * (rr * oi - ri * orr));
    gr[k] += static_cast<float>(dscore * (sr * orr + si * oi));
    gr[half_ + k] += static_cast<float>(dscore * (sr * oi - si * orr));
    go[k] += static_cast<float>(dscore * (sr * rr - si * ri));
    go[half_ + k] += static_cast<float>(dscore * (si * rr + sr * ri));
  }
}

}  // namespace kgfd
