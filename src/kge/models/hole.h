#ifndef KGFD_KGE_MODELS_HOLE_H_
#define KGFD_KGE_MODELS_HOLE_H_

#include "kge/models/pair_embedding_model.h"

namespace kgfd {

/// HolE (Nickel et al. 2016): f(s, r, o) = r^T (s ⋆ o) where ⋆ is circular
/// correlation, (s ⋆ o)_k = Σ_i s_i o_{(i+k) mod l}. Equivalent in
/// expressiveness to ComplEx. Implemented as the direct O(l²) correlation —
/// at the embedding widths used here that beats an FFT round-trip and keeps
/// the gradients transparent.
class HolEModel : public PairEmbeddingModel {
 public:
  explicit HolEModel(const ModelConfig& config)
      : PairEmbeddingModel(config, config.embedding_dim) {}

  ModelKind kind() const override { return ModelKind::kHolE; }
  double Score(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_HOLE_H_
