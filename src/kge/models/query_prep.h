#ifndef KGFD_KGE_MODELS_QUERY_PREP_H_
#define KGFD_KGE_MODELS_QUERY_PREP_H_

#include <cstddef>
#include <vector>

namespace kgfd {

/// Scratch for one batch-kernel call: a flat buffer of per-query prepared
/// double vectors (width doubles each) plus the pointer tables the kernels
/// take. Resizes every output vector to `rows` up front so outs() points at
/// stable storage.
class QueryPrep {
 public:
  QueryPrep(size_t num_queries, size_t width, size_t rows,
            std::vector<double>* const* outs)
      : width_(width),
        buf_(num_queries * width),
        qs_(num_queries),
        outs_(num_queries) {
    for (size_t q = 0; q < num_queries; ++q) {
      qs_[q] = buf_.data() + q * width_;
      outs[q]->resize(rows);
      outs_[q] = outs[q]->data();
    }
  }

  /// The query's prepared vector, to be filled by the model.
  double* query(size_t q) { return buf_.data() + q * width_; }

  const double* const* qs() const { return qs_.data(); }
  double* const* outs() const { return outs_.data(); }

 private:
  size_t width_;
  std::vector<double> buf_;
  std::vector<const double*> qs_;
  std::vector<double*> outs_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_QUERY_PREP_H_
