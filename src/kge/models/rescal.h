#ifndef KGFD_KGE_MODELS_RESCAL_H_
#define KGFD_KGE_MODELS_RESCAL_H_

#include "kge/models/pair_embedding_model.h"

namespace kgfd {

/// RESCAL (Nickel et al. 2011): f(s, r, o) = s^T R_r o with a full dim x dim
/// matrix per relation (stored row-major in the relation table's rows). The
/// most expressive — and most parameter-hungry — of the bilinear family.
class RescalModel : public PairEmbeddingModel {
 public:
  explicit RescalModel(const ModelConfig& config)
      : PairEmbeddingModel(config,
                           config.embedding_dim * config.embedding_dim) {}

  ModelKind kind() const override { return ModelKind::kRescal; }
  double Score(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_RESCAL_H_
