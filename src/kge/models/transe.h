#ifndef KGFD_KGE_MODELS_TRANSE_H_
#define KGFD_KGE_MODELS_TRANSE_H_

#include "kge/models/pair_embedding_model.h"

namespace kgfd {

/// TransE (Bordes et al. 2013): f(s, r, o) = -||s + r - o||_p with p in
/// {1, 2}. Relations are translations; the closer s + r lands to o the more
/// plausible the triple.
class TransEModel : public PairEmbeddingModel {
 public:
  explicit TransEModel(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kTransE; }
  double Score(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void ScoreObjectsBatch(const SideQuery* queries, size_t num_queries,
                         std::vector<double>* const* outs) const override;
  void ScoreSubjectsBatch(const SideQuery* queries, size_t num_queries,
                          std::vector<double>* const* outs) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;

  int norm() const { return norm_; }

 private:
  int norm_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_TRANSE_H_
