#include "kge/models/rescal.h"

namespace kgfd {

double RescalModel::Score(const Triple& t) const {
  const float* s = entities_.Row(t.subject);
  const float* R = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  double acc = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    double row = 0.0;
    const float* Ri = R + i * dim_;
    for (size_t j = 0; j < dim_; ++j) row += static_cast<double>(Ri[j]) * o[j];
    acc += static_cast<double>(s[i]) * row;
  }
  return acc;
}

void RescalModel::ScoreObjects(EntityId s, RelationId r,
                               std::vector<double>* out) const {
  const float* sv = entities_.Row(s);
  const float* R = relations_.Row(r);
  // w = s^T R, then score(o) = <w, o>.
  std::vector<double> w(dim_, 0.0);
  for (size_t i = 0; i < dim_; ++i) {
    const double si = sv[i];
    const float* Ri = R + i * dim_;
    for (size_t j = 0; j < dim_; ++j) w[j] += si * Ri[j];
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* ov = entities_.Row(e);
    double acc = 0.0;
    for (size_t j = 0; j < dim_; ++j) acc += w[j] * ov[j];
    (*out)[e] = acc;
  }
}

void RescalModel::ScoreSubjects(RelationId r, EntityId o,
                                std::vector<double>* out) const {
  const float* R = relations_.Row(r);
  const float* ov = entities_.Row(o);
  // u = R o, then score(s) = <s, u>.
  std::vector<double> u(dim_, 0.0);
  for (size_t i = 0; i < dim_; ++i) {
    const float* Ri = R + i * dim_;
    double acc = 0.0;
    for (size_t j = 0; j < dim_; ++j) acc += static_cast<double>(Ri[j]) * ov[j];
    u[i] = acc;
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* sv = entities_.Row(e);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) acc += u[i] * sv[i];
    (*out)[e] = acc;
  }
}

void RescalModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                          GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* R = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* go = grads->RowGrad(&entities_, t.object);
  float* gR = grads->RowGrad(&relations_, t.relation);
  for (size_t i = 0; i < dim_; ++i) {
    const float* Ri = R + i * dim_;
    float* gRi = gR + i * dim_;
    double row = 0.0;
    const double si = s[i];
    for (size_t j = 0; j < dim_; ++j) {
      row += static_cast<double>(Ri[j]) * o[j];
      // dScore/dR_ij = s_i * o_j
      gRi[j] += static_cast<float>(dscore * si * o[j]);
      // dScore/do_j += s_i * R_ij
      go[j] += static_cast<float>(dscore * si * Ri[j]);
    }
    // dScore/ds_i = (R o)_i
    gs[i] += static_cast<float>(dscore * row);
  }
}

}  // namespace kgfd
