#include "kge/models/hole.h"

namespace kgfd {

// Throughout: score = Σ_k r_k Σ_i s_i o_{(i+k) mod l}
//                   = Σ_i Σ_j s_i o_j r_{(j-i) mod l}.

double HolEModel::Score(const Triple& t) const {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  double acc = 0.0;
  for (size_t k = 0; k < dim_; ++k) {
    double corr = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      corr += static_cast<double>(s[i]) * o[(i + k) % dim_];
    }
    acc += static_cast<double>(r[k]) * corr;
  }
  return acc;
}

void HolEModel::ScoreObjects(EntityId s, RelationId r,
                             std::vector<double>* out) const {
  const float* sv = entities_.Row(s);
  const float* rv = relations_.Row(r);
  // w_j = Σ_i s_i r_{(j-i) mod l}; score(o) = <w, o>.
  std::vector<double> w(dim_, 0.0);
  for (size_t i = 0; i < dim_; ++i) {
    const double si = sv[i];
    for (size_t j = 0; j < dim_; ++j) {
      w[j] += si * rv[(j + dim_ - i) % dim_];
    }
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* ov = entities_.Row(e);
    double acc = 0.0;
    for (size_t j = 0; j < dim_; ++j) acc += w[j] * ov[j];
    (*out)[e] = acc;
  }
}

void HolEModel::ScoreSubjects(RelationId r, EntityId o,
                              std::vector<double>* out) const {
  const float* rv = relations_.Row(r);
  const float* ov = entities_.Row(o);
  // u_i = Σ_j o_j r_{(j-i) mod l} = Σ_k r_k o_{(i+k) mod l};
  // score(s) = <u, s>.
  std::vector<double> u(dim_, 0.0);
  for (size_t i = 0; i < dim_; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      acc += static_cast<double>(rv[k]) * ov[(i + k) % dim_];
    }
    u[i] = acc;
  }
  out->resize(num_entities());
  for (EntityId e = 0; e < num_entities(); ++e) {
    const float* sv = entities_.Row(e);
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) acc += u[i] * sv[i];
    (*out)[e] = acc;
  }
}

void HolEModel::AccumulateScoreGradient(const Triple& t, double dscore,
                                        GradientBatch* grads) {
  const float* s = entities_.Row(t.subject);
  const float* r = relations_.Row(t.relation);
  const float* o = entities_.Row(t.object);
  float* gs = grads->RowGrad(&entities_, t.subject);
  float* gr = grads->RowGrad(&relations_, t.relation);
  float* go = grads->RowGrad(&entities_, t.object);
  // dScore/dr_k = (s ⋆ o)_k
  // dScore/ds_i = Σ_j o_j r_{(j-i) mod l}
  // dScore/do_j = Σ_i s_i r_{(j-i) mod l}
  for (size_t k = 0; k < dim_; ++k) {
    double corr = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      corr += static_cast<double>(s[i]) * o[(i + k) % dim_];
    }
    gr[k] += static_cast<float>(dscore * corr);
  }
  for (size_t i = 0; i < dim_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      acc += static_cast<double>(o[j]) * r[(j + dim_ - i) % dim_];
    }
    gs[i] += static_cast<float>(dscore * acc);
  }
  for (size_t j = 0; j < dim_; ++j) {
    double acc = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      acc += static_cast<double>(s[i]) * r[(j + dim_ - i) % dim_];
    }
    go[j] += static_cast<float>(dscore * acc);
  }
}

}  // namespace kgfd
