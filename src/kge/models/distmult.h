#ifndef KGFD_KGE_MODELS_DISTMULT_H_
#define KGFD_KGE_MODELS_DISTMULT_H_

#include "kge/models/pair_embedding_model.h"

namespace kgfd {

/// DistMult (Yang et al. 2014): f(s, r, o) = s^T diag(r) o — RESCAL with a
/// diagonal relation matrix, hence symmetric in s and o.
class DistMultModel : public PairEmbeddingModel {
 public:
  explicit DistMultModel(const ModelConfig& config)
      : PairEmbeddingModel(config, config.embedding_dim) {}

  ModelKind kind() const override { return ModelKind::kDistMult; }
  double Score(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void ScoreObjectsBatch(const SideQuery* queries, size_t num_queries,
                         std::vector<double>* const* outs) const override;
  void ScoreSubjectsBatch(const SideQuery* queries, size_t num_queries,
                          std::vector<double>* const* outs) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_DISTMULT_H_
