#ifndef KGFD_KGE_MODELS_CONVE_H_
#define KGFD_KGE_MODELS_CONVE_H_

#include <vector>

#include "kge/model.h"

namespace kgfd {

/// ConvE (Dettmers et al. 2018), simplified per DESIGN.md: the subject and
/// relation embeddings are reshaped to 2D, stacked, convolved with a bank of
/// 3x3 filters (valid padding), ReLU'd, flattened, projected back to the
/// embedding width, ReLU'd, and dotted with the object embedding plus a
/// per-entity bias. Batch-norm and dropout of the original are omitted.
///
/// Subject-side scoring uses the standard reciprocal-relations device: the
/// relation table holds 2K rows and score(s', r, o) is evaluated as the
/// object-side score of (o, r_inverse, s'). TrainingScore() averages both
/// directions so each head is trained.
class ConvEModel : public Model {
 public:
  /// InvalidArgument unless `config` can parameterize a ConvE model:
  /// conve_reshape_height >= 2 and dividing embedding_dim, reshape width
  /// (dim / height) >= 3 for the valid 3x3 convolution, and at least one
  /// filter. Must pass before constructing — the member initializers
  /// compute out_w_ = width - 2 and similar, which underflow on an invalid
  /// config. CreateModel and LoadModel call this and surface the Status
  /// instead of aborting.
  static Status ValidateConfig(const ModelConfig& config);

  /// Requires ValidateConfig(config).ok().
  explicit ConvEModel(const ModelConfig& config);

  ModelKind kind() const override { return ModelKind::kConvE; }
  size_t num_entities() const override { return entities_.rows(); }
  /// Logical relation count (the table holds 2x rows for inverses).
  size_t num_relations() const override { return relations_.rows() / 2; }
  size_t embedding_dim() const override { return dim_; }

  double Score(const Triple& t) const override;
  double TrainingScore(const Triple& t) const override;
  void ScoreObjects(EntityId s, RelationId r,
                    std::vector<double>* out) const override;
  void ScoreSubjects(RelationId r, EntityId o,
                     std::vector<double>* out) const override;
  void AccumulateScoreGradient(const Triple& t, double dscore,
                               GradientBatch* grads) override;

  std::vector<NamedTensor> Parameters() override;
  void InitParameters(Rng* rng) override;

 private:
  /// Activations cached by the forward pass for backprop.
  struct ForwardCache {
    std::vector<float> image;        // (2h, w) input
    std::vector<float> conv_pre;     // F x (2h-2) x (w-2) pre-activations
    std::vector<float> conv_out;     // same, after ReLU
    std::vector<float> fc_pre;       // dim pre-activations
    std::vector<float> hidden;       // dim, after ReLU
  };

  /// hidden(e_in, rel_row); fills `cache` if non-null.
  void Forward(EntityId in_entity, size_t relation_row,
               ForwardCache* cache) const;

  /// Score of `out_entity` against a precomputed hidden vector.
  double OutputScore(const std::vector<float>& hidden,
                     EntityId out_entity) const;

  /// Backprop of one direction: d(score)/d(params) for
  /// score = hidden(in, rel_row) . e_out + bias[out].
  void BackpropDirection(EntityId in_entity, size_t relation_row,
                         EntityId out_entity, double dscore,
                         GradientBatch* grads);

  size_t InverseRow(RelationId r) const { return relations_.rows() / 2 + r; }

  size_t dim_;
  size_t img_h_;       // entity reshape height
  size_t img_w_;       // entity reshape width (dim / img_h_)
  size_t num_filters_;
  size_t out_h_;       // 2*img_h_ - 2
  size_t out_w_;       // img_w_ - 2
  size_t flat_;        // num_filters_ * out_h_ * out_w_

  Tensor entities_;    // E x dim (input and output embeddings, shared)
  Tensor relations_;   // 2K x dim (forward + inverse)
  Tensor conv_w_;      // F x 9
  Tensor conv_b_;      // 1 x F
  Tensor fc_w_;        // flat_ x dim
  Tensor fc_b_;        // 1 x dim
  Tensor ent_bias_;    // E x 1
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_CONVE_H_
