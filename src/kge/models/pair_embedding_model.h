#ifndef KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_
#define KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_

#include <utility>
#include <vector>

#include "kge/embedding_store.h"
#include "kge/model.h"

namespace kgfd {

/// Shared storage/plumbing for models whose parameters are exactly one
/// entity table and one relation table (TransE, DistMult, ComplEx, HolE,
/// RESCAL — the latter with dim^2-wide relation rows).
///
/// The entity table has two storage modes: the float Tensor (owned heap
/// data, or a read-only view into an mmap'd checkpoint — see
/// Tensor::SetExternal), or a quantized table attached by the checkpoint
/// loader (AttachQuantizedEntities). Quantized mode is scoring-only: the
/// entities Tensor is released, so anything that needs float parameters
/// (training, SaveModel, embedding analysis) must check quantized() first.
class PairEmbeddingModel : public Model {
 public:
  size_t num_entities() const override {
    return quantized() ? qentities_.rows() : entities_.rows();
  }
  size_t num_relations() const override { return relations_.rows(); }
  size_t embedding_dim() const override { return dim_; }

  std::vector<NamedTensor> Parameters() override {
    return {{"entities", &entities_}, {"relations", &relations_}};
  }

  void InitParameters(Rng* rng) override {
    entities_.InitXavierUniform(rng, dim_, dim_);
    relations_.InitXavierUniform(rng, relations_.cols(), relations_.cols());
  }

  bool quantized() const { return !qentities_.empty(); }

  const QuantizedTable* quantized_entities() const override {
    return quantized() ? &qentities_ : nullptr;
  }

  uint64_t StorageFingerprint() const override {
    return quantized() ? qentities_.Fingerprint() : 0;
  }

  /// Switches the entity table to quantized storage (checkpoint loader
  /// only; the loader restricts this to the kernel-backed models). The
  /// float entities tensor is released.
  void AttachQuantizedEntities(QuantizedTable table) {
    qentities_ = std::move(table);
    entities_ = Tensor();
  }

  const Tensor& entities() const { return entities_; }
  const Tensor& relations() const { return relations_; }

 protected:
  PairEmbeddingModel(const ModelConfig& config, size_t relation_cols)
      : dim_(config.embedding_dim),
        entities_(config.num_entities, config.embedding_dim),
        relations_(config.num_relations, relation_cols) {}

  /// Entity row as floats regardless of storage mode: a direct pointer
  /// for float storage, or the row dequantized into `scratch` (resized to
  /// dim_) for quantized storage. Scalar Score()/query-prep helper — the
  /// batch hot path hands the whole quantized table to the kernels
  /// instead.
  const float* EntityRow(size_t e, std::vector<float>* scratch) const {
    if (!quantized()) return entities_.Row(e);
    scratch->resize(dim_);
    qentities_.DequantizeRow(e, scratch->data());
    return scratch->data();
  }

  size_t dim_;
  Tensor entities_;
  Tensor relations_;
  QuantizedTable qentities_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_
