#ifndef KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_
#define KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_

#include <vector>

#include "kge/model.h"

namespace kgfd {

/// Shared storage/plumbing for models whose parameters are exactly one
/// entity table and one relation table (TransE, DistMult, ComplEx, HolE,
/// RESCAL — the latter with dim^2-wide relation rows).
class PairEmbeddingModel : public Model {
 public:
  size_t num_entities() const override { return entities_.rows(); }
  size_t num_relations() const override { return relations_.rows(); }
  size_t embedding_dim() const override { return dim_; }

  std::vector<NamedTensor> Parameters() override {
    return {{"entities", &entities_}, {"relations", &relations_}};
  }

  void InitParameters(Rng* rng) override {
    entities_.InitXavierUniform(rng, dim_, dim_);
    relations_.InitXavierUniform(rng, relations_.cols(), relations_.cols());
  }

  const Tensor& entities() const { return entities_; }
  const Tensor& relations() const { return relations_; }

 protected:
  PairEmbeddingModel(const ModelConfig& config, size_t relation_cols)
      : dim_(config.embedding_dim),
        entities_(config.num_entities, config.embedding_dim),
        relations_(config.num_relations, relation_cols) {}

  size_t dim_;
  Tensor entities_;
  Tensor relations_;
};

}  // namespace kgfd

#endif  // KGFD_KGE_MODELS_PAIR_EMBEDDING_MODEL_H_
