#include "kge/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace kgfd {
namespace kernels {

namespace {

/// Rows are walked in tiles so that a tile of the entity table stays in
/// cache while every query of the block scores against it. 256 rows of a
/// dim-128 table are 128 KiB — comfortably L2-resident.
constexpr size_t kPortableRowTile = 256;

/// Dequantizes rows [e0, e1) into `dst` ((e1-e0) * dim floats). Single
/// precision multiply-after-subtract — the canonical dequantization the
/// determinism contract in kernels.h pins for every backend.
template <typename Q>
void DequantizeRowsT(const QuantTable& table, size_t e0, size_t e1,
                     size_t dim, float* dst) {
  const Q* codes = static_cast<const Q*>(table.data);
  for (size_t e = e0; e < e1; ++e) {
    const float scale = table.scales[e];
    const float zp = table.zero_points[e];
    const Q* row = codes + e * dim;
    float* d = dst + (e - e0) * dim;
    for (size_t i = 0; i < dim; ++i) {
      d[i] = scale * (static_cast<float>(row[i]) - zp);
    }
  }
}

void DequantizeRows(const QuantTable& table, size_t e0, size_t e1,
                    size_t dim, float* dst) {
  if (table.is_int16) {
    DequantizeRowsT<int16_t>(table, e0, e1, dim, dst);
  } else {
    DequantizeRowsT<int8_t>(table, e0, e1, dim, dst);
  }
}

void PortableL1(const float* table, size_t rows, size_t dim,
                const double* const* qs, size_t num_queries,
                double* const* outs) {
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = table + e * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += std::fabs(qv[i] - row[i]);
        out[e] = -acc;
      }
    }
  }
}

void PortableL2(const float* table, size_t rows, size_t dim,
                const double* const* qs, size_t num_queries,
                double* const* outs) {
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = table + e * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          const double d = qv[i] - row[i];
          acc += d * d;
        }
        out[e] = -std::sqrt(acc);
      }
    }
  }
}

void PortableDot(const float* table, size_t rows, size_t dim,
                 const double* const* qs, size_t num_queries,
                 double* const* outs) {
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = table + e * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += qv[i] * row[i];
        out[e] = acc;
      }
    }
  }
}

void PortablePairedDot(const float* table, size_t rows, size_t half,
                       const double* const* qs, size_t num_queries,
                       double* const* outs) {
  const size_t dim = 2 * half;
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = table + e * dim;
        double acc = 0.0;
        for (size_t k = 0; k < half; ++k) {
          acc += wr[k] * row[k] + wi[k] * row[half + k];
        }
        out[e] = acc;
      }
    }
  }
}

// Quantized variants: dequantize one row tile into a float scratch (paid
// once per tile, amortized over the whole query block), then run the exact
// loop body of the float kernel above over the tile. Identical dequantized
// floats + identical accumulation order = scores bit-identical to
// dequantize-then-float-kernel.

void PortableL1Quant(const QuantTable& table, size_t rows, size_t dim,
                     const double* const* qs, size_t num_queries,
                     double* const* outs) {
  std::vector<float> tile(kPortableRowTile * dim);
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    DequantizeRows(table, e0, e1, dim, tile.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = tile.data() + (e - e0) * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += std::fabs(qv[i] - row[i]);
        out[e] = -acc;
      }
    }
  }
}

void PortableL2Quant(const QuantTable& table, size_t rows, size_t dim,
                     const double* const* qs, size_t num_queries,
                     double* const* outs) {
  std::vector<float> tile(kPortableRowTile * dim);
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    DequantizeRows(table, e0, e1, dim, tile.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = tile.data() + (e - e0) * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          const double d = qv[i] - row[i];
          acc += d * d;
        }
        out[e] = -std::sqrt(acc);
      }
    }
  }
}

void PortableDotQuant(const QuantTable& table, size_t rows, size_t dim,
                      const double* const* qs, size_t num_queries,
                      double* const* outs) {
  std::vector<float> tile(kPortableRowTile * dim);
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    DequantizeRows(table, e0, e1, dim, tile.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* qv = qs[q];
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = tile.data() + (e - e0) * dim;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i) acc += qv[i] * row[i];
        out[e] = acc;
      }
    }
  }
}

void PortablePairedDotQuant(const QuantTable& table, size_t rows,
                            size_t half, const double* const* qs,
                            size_t num_queries, double* const* outs) {
  const size_t dim = 2 * half;
  std::vector<float> tile(kPortableRowTile * dim);
  for (size_t e0 = 0; e0 < rows; e0 += kPortableRowTile) {
    const size_t e1 = e0 + kPortableRowTile < rows ? e0 + kPortableRowTile
                                                   : rows;
    DequantizeRows(table, e0, e1, dim, tile.data());
    for (size_t q = 0; q < num_queries; ++q) {
      const double* wr = qs[q];
      const double* wi = qs[q] + half;
      double* out = outs[q];
      for (size_t e = e0; e < e1; ++e) {
        const float* row = tile.data() + (e - e0) * dim;
        double acc = 0.0;
        for (size_t k = 0; k < half; ++k) {
          acc += wr[k] * row[k] + wi[k] * row[half + k];
        }
        out[e] = acc;
      }
    }
  }
}

constexpr KernelOps kPortableOps = {
    "portable",        PortableL1,        PortableL2,
    PortableDot,       PortablePairedDot, PortableL1Quant,
    PortableL2Quant,   PortableDotQuant,  PortablePairedDotQuant,
};

std::atomic<const KernelOps*> g_override{nullptr};

/// Env-and-cpuid dispatch, evaluated once. The override pointer is checked
/// on every ActiveKernels() call so tests can flip backends mid-process.
const KernelOps* ResolveDispatch() {
  const char* force_portable = std::getenv("KGFD_FORCE_PORTABLE_KERNELS");
  if (force_portable != nullptr && force_portable[0] != '\0' &&
      std::strcmp(force_portable, "0") != 0) {
    return &kPortableOps;
  }
  const char* backend = std::getenv("KGFD_KERNEL_BACKEND");
  if (backend != nullptr && backend[0] != '\0') {
    if (std::strcmp(backend, "portable") == 0) return &kPortableOps;
    if (std::strcmp(backend, "avx2") == 0) {
      const KernelOps* avx2 = Avx2Kernels();
      if (avx2 == nullptr) {
        std::fprintf(stderr,
                     "KGFD_KERNEL_BACKEND=avx2 but the AVX2 kernels are "
                     "unavailable (%s)\n",
                     CpuSupportsAvx2() ? "not compiled into this binary"
                                       : "cpu lacks AVX2/FMA");
        std::abort();
      }
      return avx2;
    }
    std::fprintf(stderr, "unknown KGFD_KERNEL_BACKEND '%s'\n", backend);
    std::abort();
  }
  const KernelOps* avx2 = Avx2Kernels();
  return avx2 != nullptr ? avx2 : &kPortableOps;
}

}  // namespace

const KernelOps& PortableKernels() { return kPortableOps; }

bool CpuSupportsAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelOps& ActiveKernels() {
  const KernelOps* override_ops = g_override.load(std::memory_order_acquire);
  if (override_ops != nullptr) return *override_ops;
  static const KernelOps* dispatched = ResolveDispatch();
  return *dispatched;
}

const char* ActiveKernelName() { return ActiveKernels().name; }

void SetKernelsOverride(const KernelOps* ops) {
  g_override.store(ops, std::memory_order_release);
}

Status ValidateKernelBackendEnv() {
  const char* backend = std::getenv("KGFD_KERNEL_BACKEND");
  if (backend == nullptr || backend[0] == '\0') return Status::OK();
  if (std::strcmp(backend, "portable") == 0) return Status::OK();
  if (std::strcmp(backend, "avx2") == 0) {
    if (Avx2Kernels() == nullptr) {
      return Status::InvalidArgument(
          std::string("KGFD_KERNEL_BACKEND=avx2 but the AVX2 kernels are "
                      "unavailable (") +
          (CpuSupportsAvx2() ? "not compiled into this binary"
                             : "cpu lacks AVX2/FMA") +
          ")");
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      std::string("unknown KGFD_KERNEL_BACKEND '") + backend +
      "' (expected 'portable' or 'avx2')");
}

}  // namespace kernels
}  // namespace kgfd
