#include "kge/grid_search.h"

#include "kge/evaluator.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kgfd {
namespace {

template <typename T>
std::vector<T> OrDefault(const std::vector<T>& values, T fallback) {
  return values.empty() ? std::vector<T>{fallback} : values;
}

}  // namespace

Result<GridSearchResult> RunGridSearch(ModelKind kind,
                                       const Dataset& dataset,
                                       const ModelConfig& base_model,
                                       const TrainerConfig& base_trainer,
                                       const GridSearchSpace& space) {
  if (dataset.valid().size() == 0) {
    return Status::InvalidArgument(
        "grid search needs a non-empty validation split");
  }
  const std::vector<size_t> dims =
      OrDefault(space.embedding_dims, base_model.embedding_dim);
  const std::vector<double> rates = OrDefault(
      space.learning_rates, base_trainer.optimizer.learning_rate);
  const std::vector<LossKind> losses =
      OrDefault(space.losses, base_trainer.loss);
  const std::vector<size_t> negatives = OrDefault(
      space.negatives_per_positive, base_trainer.negatives_per_positive);

  GridSearchResult result;
  double best_mrr = -1.0;
  for (size_t dim : dims) {
    for (double lr : rates) {
      for (LossKind loss : losses) {
        for (size_t neg : negatives) {
          GridTrial trial;
          trial.model_config = base_model;
          trial.model_config.embedding_dim = dim;
          trial.trainer_config = base_trainer;
          trial.trainer_config.optimizer.learning_rate = lr;
          trial.trainer_config.loss = loss;
          trial.trainer_config.negatives_per_positive = neg;

          WallTimer timer;
          KGFD_ASSIGN_OR_RETURN(
              auto model, TrainModel(kind, trial.model_config,
                                     dataset.train(),
                                     trial.trainer_config));
          trial.train_seconds = timer.ElapsedSeconds();
          KGFD_ASSIGN_OR_RETURN(
              const LinkPredictionMetrics metrics,
              EvaluateLinkPrediction(*model, dataset, dataset.valid()));
          trial.valid_mrr = metrics.mrr;
          KGFD_LOG(Debug) << "grid trial dim=" << dim << " lr=" << lr
                          << " loss=" << LossKindName(loss)
                          << " neg=" << neg
                          << " valid_mrr=" << trial.valid_mrr;
          if (trial.valid_mrr > best_mrr) {
            best_mrr = trial.valid_mrr;
            result.best_index = result.trials.size();
            result.best_model = std::move(model);
          }
          result.trials.push_back(std::move(trial));
        }
      }
    }
  }
  return result;
}

}  // namespace kgfd
