#ifndef KGFD_KGE_KERNELS_H_
#define KGFD_KGE_KERNELS_H_

#include <cstddef>

#include "util/status.h"

namespace kgfd {
namespace kernels {

/// Vectorized batch-scoring kernels over an embedding table's flat
/// row-major float storage. Every kernel scores a *block of queries*
/// against every table row in one pass: the table is walked in blocks of
/// rows (an 8-row tile on the AVX2 path, transposed once and reused by all
/// queries), so the bytes of a row are loaded from memory once per block
/// of queries instead of once per query.
///
/// Determinism contract: for each (query, row) pair the floating-point
/// operations and their order are EXACTLY the ones of the scalar
/// per-triple scoring path (double accumulation in ascending dimension
/// order, no FMA contraction). The AVX2 path vectorizes across *rows* —
/// eight independent accumulator chains, one per entity — so its results
/// are bit-identical to the portable path and to the pre-kernel
/// ScoreObjects/ScoreSubjects implementations. Discovery goldens and
/// checkpoint/resume bit-identity therefore hold on every backend.
///
/// `qs[q]` is the query's prepared double vector (model-specific: q = s + r
/// for TransE, w = s ⊙ r for DistMult, [w_re | w_im] for ComplEx);
/// `outs[q]` is the query's output array of `rows` doubles.
using ScoreFn = void (*)(const float* table, size_t rows, size_t dim,
                         const double* const* qs, size_t num_queries,
                         double* const* outs);

/// A per-row affine-quantized entity table operand (kge/embedding_store.h
/// builds these): row-major int8 or int16 codes plus one (scale,
/// zero_point) float pair per row; element i of row r dequantizes to
/// scales[r] * (float(code) - zero_points[r]) in single precision.
///
/// The quantized kernels dequantize each row TILE into the float scratch
/// once per tile — amortized over the whole query block — then run the
/// unmodified float kernel body. Consequences, tested as the quantized
/// determinism contract: quantized scores are bit-identical to
/// dequantize-the-table-then-run-the-float-kernel, and the portable and
/// AVX2 quantized backends are bit-identical to each other.
struct QuantTable {
  const void* data;
  const float* scales;
  const float* zero_points;
  bool is_int16;  // false: int8 codes
};

using QuantScoreFn = void (*)(const QuantTable& table, size_t rows,
                              size_t dim, const double* const* qs,
                              size_t num_queries, double* const* outs);

struct KernelOps {
  const char* name;
  /// outs[q][e] = -Σ_i |qs[q][i] - table[e][i]|        (TransE, L1)
  ScoreFn l1_scores;
  /// outs[q][e] = -sqrt(Σ_i (qs[q][i] - table[e][i])²) (TransE, L2)
  ScoreFn l2_scores;
  /// outs[q][e] = Σ_i qs[q][i] * table[e][i]           (DistMult)
  ScoreFn dot_scores;
  /// ComplEx: qs[q] holds [w_re | w_im], each `half` wide; rows are
  /// 2*half floats ([re | im]). Per k the pair w_re[k]*row[k] +
  /// w_im[k]*row[half+k] is summed before accumulation — the exact
  /// association of the scalar ComplEx ScoreObjects loop.
  /// outs[q][e] = Σ_k (qs[q][k]*table[e][k] + qs[q][half+k]*table[e][half+k])
  void (*paired_dot_scores)(const float* table, size_t rows, size_t half,
                            const double* const* qs, size_t num_queries,
                            double* const* outs);
  /// Quantized variants of the four kernels above, same score definitions
  /// over the dequantized rows (see QuantTable). `dim`/`half` mean the
  /// same as in their float counterparts.
  QuantScoreFn l1_scores_quant;
  QuantScoreFn l2_scores_quant;
  QuantScoreFn dot_scores_quant;
  QuantScoreFn paired_dot_scores_quant;
};

/// Queries per ParallelFor grain / kernel call in the batch-scoring
/// pipeline (SideScoreCache precompute, link-prediction evaluation). Large
/// enough to amortize the per-block tile transpose, small enough that a
/// cooperative-stop probe between blocks stays responsive.
inline constexpr size_t kQueryBlock = 64;

/// The scalar reference backend. Always available; bit-identical to the
/// historical per-query ScoreObjects/ScoreSubjects loops.
const KernelOps& PortableKernels();

/// The AVX2 backend, or nullptr when unavailable — either the binary was
/// built without AVX2 support (KGFD_ENABLE_AVX2=OFF or non-x86 target) or
/// this machine's cpuid lacks AVX2/FMA.
const KernelOps* Avx2Kernels();

/// True when the running CPU reports AVX2 and FMA support.
bool CpuSupportsAvx2();

/// The dispatched backend, resolved once per process:
///  1. A SetKernelsOverride() pointer, when set (tests, benchmarks).
///  2. KGFD_FORCE_PORTABLE_KERNELS=1 (or any value but "0") → portable.
///  3. KGFD_KERNEL_BACKEND=portable|avx2 → that backend; forcing avx2 on a
///     machine or build without it aborts with a diagnostic (the CI
///     dispatch-matrix leg relies on the hard failure).
///  4. cpuid: AVX2 when supported and compiled in, else portable.
const KernelOps& ActiveKernels();

/// Name of the backend ActiveKernels() resolves to ("avx2", "portable").
const char* ActiveKernelName();

/// Overrides ActiveKernels() for tests and benchmarks; nullptr restores
/// normal dispatch. Not thread-safe against concurrent scoring — switch
/// backends only between scoring passes.
void SetKernelsOverride(const KernelOps* ops);

/// Validates the kernel-dispatch environment without resolving dispatch:
/// InvalidArgument when KGFD_KERNEL_BACKEND names an unknown backend, or
/// names avx2 on a build/CPU that cannot provide it. Binaries call this at
/// startup so a typo'd backend is a clean error at launch instead of an
/// abort mid-scoring the first time a kernel is needed.
Status ValidateKernelBackendEnv();

}  // namespace kernels
}  // namespace kgfd

#endif  // KGFD_KGE_KERNELS_H_
