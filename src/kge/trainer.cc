#include "kge/trainer.h"

#include <algorithm>

#include "kge/evaluator.h"
#include "kge/negative_sampling.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace kgfd {

Trainer::Trainer(Model* model, const TripleStore* train,
                 TrainerConfig config)
    : model_(model), train_(train), config_(config) {}

Result<std::vector<EpochStats>> Trainer::Train() {
  if (train_->size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (config_.batch_size == 0 || config_.epochs == 0) {
    return Status::InvalidArgument("batch_size and epochs must be > 0");
  }
  if (config_.training_mode == TrainingMode::kNegativeSampling &&
      config_.negatives_per_positive == 0) {
    return Status::InvalidArgument("need at least one negative per positive");
  }

  Rng rng(config_.seed);
  NegativeSampler sampler(train_, config_.filtered_negatives,
                          config_.corruption_scheme);
  std::unique_ptr<Optimizer> optimizer = CreateOptimizer(config_.optimizer);
  GradientBatch grads;

  // Early stopping bookkeeping.
  double best_valid_mrr = -1.0;
  size_t evals_without_improvement = 0;
  std::vector<std::vector<float>> best_params;
  auto snapshot_params = [&] {
    best_params.clear();
    for (const NamedTensor& p : model_->Parameters()) {
      best_params.push_back(p.tensor->data());
    }
  };
  auto restore_params = [&] {
    if (best_params.empty()) return;
    size_t i = 0;
    for (const NamedTensor& p : model_->Parameters()) {
      p.tensor->data() = best_params[i++];
    }
  };

  std::vector<size_t> order(train_->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Resolve metrics once; null means instrumentation is off.
  HistogramMetric* epoch_seconds_hist = nullptr;
  HistogramMetric* epoch_loss_hist = nullptr;
  Counter* epochs_counter = nullptr;
  Counter* examples_counter = nullptr;
  Gauge* throughput_gauge = nullptr;
  if (config_.metrics != nullptr) {
    epoch_seconds_hist = config_.metrics->GetHistogram(kTrainEpochSecondsHist);
    epoch_loss_hist = config_.metrics->GetHistogram(
        kTrainEpochLossHist, ExponentialBuckets(1e-4, 10.0, 9));
    epochs_counter = config_.metrics->GetCounter(kTrainEpochsCounter);
    examples_counter = config_.metrics->GetCounter(kTrainExamplesCounter);
    throughput_gauge = config_.metrics->GetGauge(kTrainThroughputGauge);
  }

  std::vector<EpochStats> stats;
  stats.reserve(config_.epochs);
  bool stopped = false;
  for (size_t epoch = 0; epoch < config_.epochs && !stopped; ++epoch) {
    WallTimer timer;
    rng.Shuffle(&order);
    double loss_sum = 0.0;
    size_t loss_count = 0;
    for (size_t begin = 0; begin < order.size();
         begin += config_.batch_size) {
      // Between-batch cancellation checkpoint: the epoch in flight is
      // abandoned (its stats are not recorded), but every optimizer step
      // already applied stays — the model remains usable as-is.
      if (config_.cancel.StopReason() != StoppedReason::kNone) {
        stopped = true;
        break;
      }
      const size_t end =
          std::min(begin + config_.batch_size, order.size());
      grads.Clear();
      // Normalize so the step size is insensitive to batch size.
      const double inv_examples =
          1.0 / (static_cast<double>(end - begin) *
                 static_cast<double>(config_.negatives_per_positive));
      for (size_t i = begin; i < end; ++i) {
        const Triple& pos = train_->triples()[order[i]];
        if (config_.training_mode == TrainingMode::k1vsAll) {
          // BCE against every entity on each side; label 1 at the truth.
          const double inv_batch =
              1.0 / static_cast<double>(end - begin);
          std::vector<double> scores;
          for (int side = 0; side < 2; ++side) {
            if (side == 0) {
              model_->ScoreObjects(pos.subject, pos.relation, &scores);
            } else {
              model_->ScoreSubjects(pos.relation, pos.object, &scores);
            }
            const EntityId target =
                side == 0 ? pos.object : pos.subject;
            const double inv_entities =
                1.0 / static_cast<double>(scores.size());
            for (EntityId e = 0; e < scores.size(); ++e) {
              const PointwiseLoss loss =
                  EvalPointwiseLoss(LossKind::kBinaryCrossEntropy,
                                    scores[e], e == target ? +1 : -1);
              loss_sum += loss.value;
              ++loss_count;
              if (loss.dscore == 0.0) continue;
              const Triple example =
                  side == 0 ? Triple{pos.subject, pos.relation, e}
                            : Triple{e, pos.relation, pos.object};
              model_->AccumulateScoreGradient(
                  example, loss.dscore * inv_entities * inv_batch,
                  &grads);
            }
          }
          continue;
        }
        const double score_pos = model_->TrainingScore(pos);
        if (config_.loss == LossKind::kMarginRanking) {
          double dscore_pos_total = 0.0;
          for (size_t n = 0; n < config_.negatives_per_positive; ++n) {
            const Triple neg = sampler.Corrupt(pos, &rng);
            const double score_neg = model_->TrainingScore(neg);
            const PairwiseLoss loss = EvalMarginRankingLoss(
                score_pos, score_neg, config_.margin);
            loss_sum += loss.value;
            ++loss_count;
            if (loss.dscore_neg != 0.0) {
              model_->AccumulateScoreGradient(
                  neg, loss.dscore_neg * inv_examples, &grads);
            }
            dscore_pos_total += loss.dscore_pos;
          }
          if (dscore_pos_total != 0.0) {
            model_->AccumulateScoreGradient(
                pos, dscore_pos_total * inv_examples, &grads);
          }
        } else {
          const PointwiseLoss pos_loss =
              EvalPointwiseLoss(config_.loss, score_pos, +1);
          loss_sum += pos_loss.value;
          ++loss_count;
          if (pos_loss.dscore != 0.0) {
            model_->AccumulateScoreGradient(
                pos, pos_loss.dscore * inv_examples, &grads);
          }
          for (size_t n = 0; n < config_.negatives_per_positive; ++n) {
            const Triple neg = sampler.Corrupt(pos, &rng);
            const double score_neg = model_->TrainingScore(neg);
            const PointwiseLoss neg_loss =
                EvalPointwiseLoss(config_.loss, score_neg, -1);
            loss_sum += neg_loss.value;
            ++loss_count;
            if (neg_loss.dscore != 0.0) {
              model_->AccumulateScoreGradient(
                  neg, neg_loss.dscore * inv_examples, &grads);
            }
          }
        }
      }
      optimizer->Apply(&grads);
    }
    if (stopped) break;
    EpochStats es;
    es.epoch = epoch;
    es.mean_loss =
        loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
    es.seconds = timer.ElapsedSeconds();
    if (config_.metrics != nullptr) {
      epoch_seconds_hist->Observe(es.seconds);
      epoch_loss_hist->Observe(es.mean_loss);
      epochs_counter->Increment();
      examples_counter->Increment(order.size());
      if (es.seconds > 0.0) {
        throughput_gauge->Set(static_cast<double>(order.size()) /
                              es.seconds);
      }
    }

    bool stop_early = false;
    if (config_.early_stopping_dataset != nullptr &&
        config_.eval_every_epochs > 0 &&
        (epoch + 1) % config_.eval_every_epochs == 0) {
      KGFD_ASSIGN_OR_RETURN(
          const LinkPredictionMetrics metrics,
          EvaluateLinkPrediction(*model_, *config_.early_stopping_dataset,
                                 config_.early_stopping_dataset->valid()));
      es.valid_mrr = metrics.mrr;
      if (metrics.mrr > best_valid_mrr) {
        best_valid_mrr = metrics.mrr;
        evals_without_improvement = 0;
        snapshot_params();
      } else if (++evals_without_improvement >= config_.patience) {
        stop_early = true;
      }
    }

    if (config_.log_every_epochs > 0 &&
        (epoch + 1) % config_.log_every_epochs == 0) {
      KGFD_LOG(Info) << model_->name() << " epoch " << epoch + 1 << "/"
                     << config_.epochs << " loss=" << es.mean_loss << " ("
                     << es.seconds << "s)";
    }
    stats.push_back(es);
    if (stop_early) {
      KGFD_LOG(Debug) << "early stop at epoch " << epoch + 1
                      << ", best valid MRR " << best_valid_mrr;
      break;
    }
  }
  restore_params();
  return stats;
}

Result<std::unique_ptr<Model>> TrainModel(
    ModelKind kind, const ModelConfig& model_config,
    const TripleStore& train, const TrainerConfig& trainer_config) {
  Rng init_rng(trainer_config.seed ^ 0xABCDEF1234567890ULL);
  KGFD_ASSIGN_OR_RETURN(auto model,
                        CreateModel(kind, model_config, &init_rng));
  Trainer trainer(model.get(), &train, trainer_config);
  KGFD_ASSIGN_OR_RETURN([[maybe_unused]] auto stats, trainer.Train());
  return model;
}

}  // namespace kgfd
