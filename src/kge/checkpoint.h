#ifndef KGFD_KGE_CHECKPOINT_H_
#define KGFD_KGE_CHECKPOINT_H_

#include <memory>
#include <string>
#include <vector>

#include "kge/embedding_store.h"
#include "kge/model.h"
#include "util/status.h"

namespace kgfd {

/// How LoadModel materializes a checkpoint. Default-constructed options
/// reproduce the historical behaviour: everything copied into RAM.
struct CheckpointLoadOptions {
  EmbeddingBackend backend = EmbeddingBackend::kRam;
  /// Mmap loads only verify the header CRC by default (cold start stays
  /// O(header)). With this set they additionally CRC-check every mapped
  /// payload and the whole-file trailer — full ram-load integrity. Set
  /// from KGFD_MMAP_VERIFY by the env-resolving LoadModel overload.
  bool verify_mapped_payload = false;
};

/// A loaded model together with the architecture config the checkpoint
/// embeds (tools that re-save a model need the config back).
struct LoadedModel {
  std::unique_ptr<Model> model;
  ModelConfig config;
};

/// Directory entry of one tensor section in a v3 checkpoint.
struct CheckpointTensorInfo {
  std::string name;
  EmbeddingDtype dtype = EmbeddingDtype::kFloat32;
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t payload_offset = 0;
  uint64_t payload_size = 0;
  /// Per-row quantization parameters (rows scales then rows zero-points,
  /// all float). Zero for float sections.
  uint64_t quant_offset = 0;
  uint64_t quant_size = 0;
  /// File offset of this entry's fixed fields (the dtype u64, right after
  /// the name string) — lets tests and tools patch directory fields
  /// without re-deriving the layout.
  uint64_t fields_offset = 0;
};

/// Parsed checkpoint metadata (no payloads).
struct CheckpointInfo {
  uint32_t version = 0;
  std::string model_name;
  ModelConfig config;
  /// v3 header blob size in bytes (the header CRC sits at file offset
  /// 20 + header_size). Zero for v2.
  uint64_t header_size = 0;
  /// v3 only; empty for v2.
  std::vector<CheckpointTensorInfo> tensors;
};

/// Serializes a trained model to a self-describing little-endian binary
/// file (format v3): a CRC-guarded header with a tensor directory, a zero
/// pad to the next 4096-byte boundary, 64-byte-aligned tensor payloads
/// with the entity table first (page-aligned, so mmap loads attach it
/// zero-copy), and a whole-file CRC-32 trailer. Round-trips bit-exactly.
Status SaveModel(Model* model, const ModelConfig& config,
                 const std::string& path);

/// Saves `model` with its entity table quantized per row to int8/int16
/// codes plus affine parameters (see QuantizedTable). Only the
/// kernel-backed pair models (TransE/DistMult/ComplEx) support quantized
/// entity storage. All other tensors stay float.
Status SaveQuantizedModel(Model* model, const ModelConfig& config,
                          EmbeddingDtype dtype, const std::string& path);

/// Restores a model saved by SaveModel. The embedded config reconstructs
/// the architecture; no external metadata is needed. This overload
/// resolves the backend from KGFD_EMBEDDING_BACKEND and full-verify mode
/// from KGFD_MMAP_VERIFY.
Result<std::unique_ptr<Model>> LoadModel(const std::string& path);

/// LoadModel with an explicit backend choice. v2 checkpoints have no
/// mappable section and silently fall back to the ram backend.
Result<std::unique_ptr<Model>> LoadModel(const std::string& path,
                                         const CheckpointLoadOptions& options);

/// LoadModel variant that also returns the embedded ModelConfig.
Result<LoadedModel> LoadModelWithConfig(const std::string& path,
                                        const CheckpointLoadOptions& options);

/// Reads and validates checkpoint metadata without materializing a model.
Result<CheckpointInfo> InspectCheckpoint(const std::string& path);

namespace internal {
/// Writes the legacy v2 (unaligned, single-trailer) format. Kept only so
/// tests can cover the v2 read path and the mmap→ram fallback; production
/// saves always write v3.
Status SaveModelV2(Model* model, const ModelConfig& config,
                   const std::string& path);
}  // namespace internal

}  // namespace kgfd

#endif  // KGFD_KGE_CHECKPOINT_H_
