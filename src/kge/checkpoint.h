#ifndef KGFD_KGE_CHECKPOINT_H_
#define KGFD_KGE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "kge/model.h"
#include "util/status.h"

namespace kgfd {

/// Serializes a trained model to a self-describing little-endian binary
/// file: magic, format version, model kind, config, then each named
/// parameter tensor. Round-trips bit-exactly.
Status SaveModel(Model* model, const ModelConfig& config,
                 const std::string& path);

/// Restores a model saved by SaveModel. The embedded config reconstructs
/// the architecture; no external metadata is needed.
Result<std::unique_ptr<Model>> LoadModel(const std::string& path);

}  // namespace kgfd

#endif  // KGFD_KGE_CHECKPOINT_H_
