#ifndef KGFD_KGE_OPTIMIZER_H_
#define KGFD_KGE_OPTIMIZER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kge/grad.h"
#include "kge/tensor.h"
#include "util/status.h"

namespace kgfd {

enum class OptimizerKind { kSgd, kAdagrad, kAdam };

const char* OptimizerKindName(OptimizerKind kind);
Result<OptimizerKind> OptimizerKindFromName(const std::string& name);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kAdam;  // the paper trains with Adam
  double learning_rate = 0.01;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double epsilon = 1e-8;
  /// Decoupled L2 decay applied to rows touched by the batch.
  double weight_decay = 0.0;
};

/// Applies batch gradients to parameters. Updates are row-sparse ("lazy"):
/// only rows touched by the batch move, and for Adam the bias correction
/// uses the global step count — the standard sparse-Adam approximation used
/// by embedding trainers (LibKGE included).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual OptimizerKind kind() const = 0;

  /// Applies (and consumes nothing from) the batch; caller clears it.
  virtual void Apply(GradientBatch* batch) = 0;

  int64_t step_count() const { return step_; }

 protected:
  int64_t step_ = 0;
};

std::unique_ptr<Optimizer> CreateOptimizer(const OptimizerConfig& config);

}  // namespace kgfd

#endif  // KGFD_KGE_OPTIMIZER_H_
