#ifndef KGFD_KGE_EMBEDDING_STORE_H_
#define KGFD_KGE_EMBEDDING_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kge/kernels.h"
#include "kge/tensor.h"
#include "util/status.h"

namespace kgfd {

/// How LoadModel materializes a checkpoint's embedding tables.
///
///   kRam   read the whole file, verify the CRC-32 trailer, copy every
///          tensor into owned heap storage (the historical behaviour).
///   kMmap  memory-map the file read-only and point the entity table at
///          the checkpoint's page-aligned tensor section (format v3)
///          zero-copy; small tensors are still copied. Cold-start cost is
///          O(header), not O(file). v2 checkpoints have no mappable
///          section and silently fall back to kRam.
enum class EmbeddingBackend {
  kRam,
  kMmap,
};

const char* EmbeddingBackendName(EmbeddingBackend backend);
Result<EmbeddingBackend> EmbeddingBackendFromName(const std::string& name);

/// Resolves KGFD_EMBEDDING_BACKEND (unset/empty → kRam). InvalidArgument
/// on an unknown value.
Result<EmbeddingBackend> EmbeddingBackendFromEnv();

/// Startup validation mirroring kernels::ValidateKernelBackendEnv(): a
/// typo'd backend is a clean error at launch, not a failed load later.
Status ValidateEmbeddingBackendEnv();

/// True when KGFD_MMAP_VERIFY is set non-empty and not "0": mmap loads
/// additionally CRC-check the mapped payloads and the whole-file trailer
/// (full integrity at ram-load cost; the CI mmap matrix leg sets it).
bool MmapVerifyFromEnv();

/// On-disk element type of a checkpoint tensor section.
enum class EmbeddingDtype : uint8_t {
  kFloat32 = 0,
  kInt8 = 1,
  kInt16 = 2,
};

const char* EmbeddingDtypeName(EmbeddingDtype dtype);
size_t EmbeddingDtypeBytes(EmbeddingDtype dtype);
Result<EmbeddingDtype> EmbeddingDtypeFromName(const std::string& name);

/// An entity table quantized per row to int8 or int16 codes with affine
/// parameters: value_i = scale[r] * (float(code_i) - zero_point[r]).
/// Row r's codes span [data + r*cols*bytes, ...); scales and zero_points
/// are one float per row. Storage is either owned (Quantize, ram loads)
/// or a view into memory the keepalive holds (mmap loads).
///
/// Dequantization is SINGLE-precision multiply-after-subtract — exactly
/// the operation sequence the quantized kernels use in-tile — so a
/// dequantized row is bit-identical everywhere it is materialized.
class QuantizedTable {
 public:
  QuantizedTable() = default;

  /// Quantizes a float tensor row-by-row. Each row's scale spans its own
  /// [min, max]; constant rows get scale 1 so they round-trip exactly.
  /// Round-trip error is ≤ scale/2 per element (plus float rounding).
  static QuantizedTable Quantize(const Tensor& table, EmbeddingDtype dtype);

  /// Wraps externally-held storage (the mmap'd checkpoint section).
  static QuantizedTable View(EmbeddingDtype dtype, const void* data,
                             const float* scales, const float* zero_points,
                             size_t rows, size_t cols,
                             std::shared_ptr<const void> keepalive);

  bool empty() const { return rows_ == 0; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  EmbeddingDtype dtype() const { return dtype_; }
  const void* data() const { return data_; }
  const float* scales() const { return scales_; }
  const float* zero_points() const { return zero_points_; }

  /// Dequantizes row r into dst (cols() floats).
  void DequantizeRow(size_t r, float* dst) const;

  /// The kernel-facing operand view.
  kernels::QuantTable KernelTable() const {
    return {data_, scales_, zero_points_, dtype_ == EmbeddingDtype::kInt16};
  }

  /// FNV-1a over dtype, shape, codes and per-row parameters. Mixed into
  /// model fingerprints so distinct quantizations never share a
  /// DiscoveryCache entry with each other or with the float model.
  uint64_t Fingerprint() const;

 private:
  EmbeddingDtype dtype_ = EmbeddingDtype::kInt8;
  size_t rows_ = 0;
  size_t cols_ = 0;
  const void* data_ = nullptr;
  const float* scales_ = nullptr;
  const float* zero_points_ = nullptr;
  // Owned-storage mode keeps the bytes here; view mode keeps the mapping
  // (or other external owner) alive instead.
  std::vector<unsigned char> owned_codes_;
  std::vector<float> owned_params_;
  std::shared_ptr<const void> keepalive_;
};

/// A read-only memory-mapped file (RAII). The diskarray idiom: map once,
/// hand out bounds-checked pointers, madvise the ranges that will be
/// swept. Move-only; unmaps on destruction.
class MmapFile {
 public:
  /// Opens and maps `path` read-only. IoError with the failing syscall's
  /// errno text on any failure; empty files are rejected here (mmap of
  /// length 0 is undefined), which also guarantees data() is non-null.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }

  /// MADV_SEQUENTIAL on [offset, offset+length): ranking sweeps walk the
  /// entity section front to back, so aggressive readahead wins. Advice
  /// only — failures are ignored.
  void AdviseSequential(size_t offset, size_t length) const;

 private:
  unsigned char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace kgfd

#endif  // KGFD_KGE_EMBEDDING_STORE_H_
