#include "kge/grad.h"

namespace kgfd {

float* GradientBatch::RowGrad(Tensor* tensor, size_t row) {
  auto& rows = grads_[tensor];
  auto it = rows.find(row);
  if (it == rows.end()) {
    it = rows.emplace(row, std::vector<float>(tensor->cols(), 0.0f)).first;
  }
  return it->second.data();
}

void GradientBatch::AccumulateRow(Tensor* tensor, size_t row,
                                  const float* values, size_t n,
                                  float scale) {
  float* g = RowGrad(tensor, row);
  for (size_t i = 0; i < n; ++i) g[i] += scale * values[i];
}

const std::unordered_map<size_t, std::vector<float>>* GradientBatch::RowsFor(
    Tensor* tensor) const {
  auto it = grads_.find(tensor);
  return it == grads_.end() ? nullptr : &it->second;
}

std::vector<Tensor*> GradientBatch::TouchedTensors() const {
  std::vector<Tensor*> out;
  out.reserve(grads_.size());
  for (const auto& [tensor, rows] : grads_) out.push_back(tensor);
  return out;
}

}  // namespace kgfd
