#include "kge/optimizer.h"

#include <cmath>

namespace kgfd {
namespace {

class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(const OptimizerConfig& config) : config_(config) {}

  OptimizerKind kind() const override { return OptimizerKind::kSgd; }

  void Apply(GradientBatch* batch) override {
    ++step_;
    const float lr = static_cast<float>(config_.learning_rate);
    const float decay = static_cast<float>(config_.weight_decay);
    for (Tensor* tensor : batch->TouchedTensors()) {
      const auto* rows = batch->RowsFor(tensor);
      for (const auto& [row, grad] : *rows) {
        float* p = tensor->Row(row);
        for (size_t i = 0; i < tensor->cols(); ++i) {
          p[i] -= lr * (grad[i] + decay * p[i]);
        }
      }
    }
  }

 private:
  OptimizerConfig config_;
};

class AdagradOptimizer : public Optimizer {
 public:
  explicit AdagradOptimizer(const OptimizerConfig& config)
      : config_(config) {}

  OptimizerKind kind() const override { return OptimizerKind::kAdagrad; }

  void Apply(GradientBatch* batch) override {
    ++step_;
    const float lr = static_cast<float>(config_.learning_rate);
    const float eps = static_cast<float>(config_.epsilon);
    const float decay = static_cast<float>(config_.weight_decay);
    for (Tensor* tensor : batch->TouchedTensors()) {
      std::vector<float>& accum = AccumFor(tensor);
      const auto* rows = batch->RowsFor(tensor);
      for (const auto& [row, grad] : *rows) {
        float* p = tensor->Row(row);
        float* acc = accum.data() + row * tensor->cols();
        for (size_t i = 0; i < tensor->cols(); ++i) {
          const float g = grad[i] + decay * p[i];
          acc[i] += g * g;
          p[i] -= lr * g / (std::sqrt(acc[i]) + eps);
        }
      }
    }
  }

 private:
  std::vector<float>& AccumFor(Tensor* tensor) {
    auto it = accum_.find(tensor);
    if (it == accum_.end()) {
      it = accum_.emplace(tensor, std::vector<float>(tensor->size(), 0.0f))
               .first;
    }
    return it->second;
  }

  OptimizerConfig config_;
  std::unordered_map<Tensor*, std::vector<float>> accum_;
};

class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(const OptimizerConfig& config) : config_(config) {}

  OptimizerKind kind() const override { return OptimizerKind::kAdam; }

  void Apply(GradientBatch* batch) override {
    ++step_;
    const double b1 = config_.adam_beta1;
    const double b2 = config_.adam_beta2;
    // Global-step bias correction on row-sparse moments ("lazy Adam").
    const double corr1 =
        1.0 - std::pow(b1, static_cast<double>(step_));
    const double corr2 =
        1.0 - std::pow(b2, static_cast<double>(step_));
    const double lr = config_.learning_rate;
    const double eps = config_.epsilon;
    const float decay = static_cast<float>(config_.weight_decay);
    for (Tensor* tensor : batch->TouchedTensors()) {
      State& state = StateFor(tensor);
      const auto* rows = batch->RowsFor(tensor);
      for (const auto& [row, grad] : *rows) {
        float* p = tensor->Row(row);
        float* m = state.m.data() + row * tensor->cols();
        float* v = state.v.data() + row * tensor->cols();
        for (size_t i = 0; i < tensor->cols(); ++i) {
          const double g = grad[i] + decay * p[i];
          m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * g);
          v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * g * g);
          const double m_hat = m[i] / corr1;
          const double v_hat = v[i] / corr2;
          p[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
        }
      }
    }
  }

 private:
  struct State {
    std::vector<float> m;
    std::vector<float> v;
  };

  State& StateFor(Tensor* tensor) {
    auto it = states_.find(tensor);
    if (it == states_.end()) {
      State state;
      state.m.assign(tensor->size(), 0.0f);
      state.v.assign(tensor->size(), 0.0f);
      it = states_.emplace(tensor, std::move(state)).first;
    }
    return it->second;
  }

  OptimizerConfig config_;
  std::unordered_map<Tensor*, State> states_;
};

}  // namespace

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kAdagrad:
      return "adagrad";
    case OptimizerKind::kAdam:
      return "adam";
  }
  return "unknown";
}

Result<OptimizerKind> OptimizerKindFromName(const std::string& name) {
  for (OptimizerKind kind : {OptimizerKind::kSgd, OptimizerKind::kAdagrad,
                             OptimizerKind::kAdam}) {
    if (name == OptimizerKindName(kind)) return kind;
  }
  return Status::NotFound("unknown optimizer: " + name);
}

std::unique_ptr<Optimizer> CreateOptimizer(const OptimizerConfig& config) {
  switch (config.kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(config);
    case OptimizerKind::kAdagrad:
      return std::make_unique<AdagradOptimizer>(config);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(config);
  }
  return nullptr;
}

}  // namespace kgfd
