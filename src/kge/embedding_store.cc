#include "kge/embedding_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace kgfd {

const char* EmbeddingBackendName(EmbeddingBackend backend) {
  switch (backend) {
    case EmbeddingBackend::kRam:
      return "ram";
    case EmbeddingBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

Result<EmbeddingBackend> EmbeddingBackendFromName(const std::string& name) {
  if (name == "ram") return EmbeddingBackend::kRam;
  if (name == "mmap") return EmbeddingBackend::kMmap;
  return Status::InvalidArgument("unknown embedding backend '" + name +
                                 "' (expected 'ram' or 'mmap')");
}

Result<EmbeddingBackend> EmbeddingBackendFromEnv() {
  const char* backend = std::getenv("KGFD_EMBEDDING_BACKEND");
  if (backend == nullptr || backend[0] == '\0') {
    return EmbeddingBackend::kRam;
  }
  KGFD_ASSIGN_OR_RETURN(EmbeddingBackend parsed,
                        EmbeddingBackendFromName(backend));
  return parsed;
}

Status ValidateEmbeddingBackendEnv() {
  const char* backend = std::getenv("KGFD_EMBEDDING_BACKEND");
  if (backend == nullptr || backend[0] == '\0') return Status::OK();
  return EmbeddingBackendFromName(backend).status();
}

bool MmapVerifyFromEnv() {
  const char* verify = std::getenv("KGFD_MMAP_VERIFY");
  return verify != nullptr && verify[0] != '\0' &&
         std::strcmp(verify, "0") != 0;
}

const char* EmbeddingDtypeName(EmbeddingDtype dtype) {
  switch (dtype) {
    case EmbeddingDtype::kFloat32:
      return "float32";
    case EmbeddingDtype::kInt8:
      return "int8";
    case EmbeddingDtype::kInt16:
      return "int16";
  }
  return "unknown";
}

size_t EmbeddingDtypeBytes(EmbeddingDtype dtype) {
  switch (dtype) {
    case EmbeddingDtype::kFloat32:
      return 4;
    case EmbeddingDtype::kInt8:
      return 1;
    case EmbeddingDtype::kInt16:
      return 2;
  }
  return 0;
}

Result<EmbeddingDtype> EmbeddingDtypeFromName(const std::string& name) {
  if (name == "float32") return EmbeddingDtype::kFloat32;
  if (name == "int8") return EmbeddingDtype::kInt8;
  if (name == "int16") return EmbeddingDtype::kInt16;
  return Status::InvalidArgument("unknown embedding dtype '" + name +
                                 "' (expected 'int8' or 'int16')");
}

namespace {

template <typename Q>
void QuantizeRows(const Tensor& table, float* scales, float* zero_points,
                  Q* codes) {
  constexpr double kQMin = static_cast<double>(std::numeric_limits<Q>::min());
  constexpr double kQMax = static_cast<double>(std::numeric_limits<Q>::max());
  const size_t cols = table.cols();
  for (size_t r = 0; r < table.rows(); ++r) {
    const float* row = table.Row(r);
    float lo = row[0], hi = row[0];
    for (size_t i = 1; i < cols; ++i) {
      lo = std::min(lo, row[i]);
      hi = std::max(hi, row[i]);
    }
    // scale spans the row's range; a constant row gets scale 1 so it
    // round-trips exactly. zero_point is the (fractional) code of 0 —
    // stored as float, applied in the same single-precision arithmetic the
    // kernels dequantize with.
    float scale = hi > lo ? (hi - lo) / static_cast<float>(kQMax - kQMin)
                          : 1.0f;
    if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
    const float zp = static_cast<float>(kQMin) - lo / scale;
    scales[r] = scale;
    zero_points[r] = zp;
    Q* out = codes + r * cols;
    for (size_t i = 0; i < cols; ++i) {
      // code = value/scale + zp, rounded to nearest and clamped. Uses the
      // STORED float parameters so the ≤ scale/2 round-trip bound holds
      // against exactly what dequantization will apply.
      const double q = std::nearbyint(
          static_cast<double>(row[i]) / static_cast<double>(scale) +
          static_cast<double>(zp));
      const double clamped = q < kQMin ? kQMin : (q > kQMax ? kQMax : q);
      out[i] = static_cast<Q>(clamped);
    }
  }
}

template <typename Q>
void DequantizeRowT(const void* data, float scale, float zp, size_t r,
                    size_t cols, float* dst) {
  const Q* row = static_cast<const Q*>(data) + r * cols;
  for (size_t i = 0; i < cols; ++i) {
    dst[i] = scale * (static_cast<float>(row[i]) - zp);
  }
}

}  // namespace

QuantizedTable QuantizedTable::Quantize(const Tensor& table,
                                        EmbeddingDtype dtype) {
  QuantizedTable q;
  q.dtype_ = dtype;
  q.rows_ = table.rows();
  q.cols_ = table.cols();
  q.owned_codes_.resize(table.size() * EmbeddingDtypeBytes(dtype));
  q.owned_params_.resize(2 * table.rows());
  float* scales = q.owned_params_.data();
  float* zero_points = q.owned_params_.data() + table.rows();
  if (dtype == EmbeddingDtype::kInt16) {
    QuantizeRows<int16_t>(table, scales, zero_points,
                          reinterpret_cast<int16_t*>(q.owned_codes_.data()));
  } else {
    QuantizeRows<int8_t>(table, scales, zero_points,
                         reinterpret_cast<int8_t*>(q.owned_codes_.data()));
  }
  q.data_ = q.owned_codes_.data();
  q.scales_ = scales;
  q.zero_points_ = zero_points;
  return q;
}

QuantizedTable QuantizedTable::View(EmbeddingDtype dtype, const void* data,
                                    const float* scales,
                                    const float* zero_points, size_t rows,
                                    size_t cols,
                                    std::shared_ptr<const void> keepalive) {
  QuantizedTable q;
  q.dtype_ = dtype;
  q.rows_ = rows;
  q.cols_ = cols;
  q.data_ = data;
  q.scales_ = scales;
  q.zero_points_ = zero_points;
  q.keepalive_ = std::move(keepalive);
  return q;
}

void QuantizedTable::DequantizeRow(size_t r, float* dst) const {
  if (dtype_ == EmbeddingDtype::kInt16) {
    DequantizeRowT<int16_t>(data_, scales_[r], zero_points_[r], r, cols_,
                            dst);
  } else {
    DequantizeRowT<int8_t>(data_, scales_[r], zero_points_[r], r, cols_,
                           dst);
  }
}

uint64_t QuantizedTable::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  const uint64_t shape[3] = {static_cast<uint64_t>(dtype_), rows_, cols_};
  mix_bytes(shape, sizeof(shape));
  mix_bytes(data_, rows_ * cols_ * EmbeddingDtypeBytes(dtype_));
  mix_bytes(scales_, rows_ * sizeof(float));
  mix_bytes(zero_points_, rows_ * sizeof(float));
  return h;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fstat failed: " + path + " (" + err + ")");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("truncated checkpoint (empty file): " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // done either way.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  MmapFile file;
  file.data_ = static_cast<unsigned char*>(mapped);
  file.size_ = size;
  return file;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MmapFile::AdviseSequential(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  // madvise wants a page-aligned start; round down and extend.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t start = offset - offset % page;
  const size_t end = std::min(offset + length, size_);
  ::madvise(data_ + start, end - start, MADV_SEQUENTIAL);
}

}  // namespace kgfd
