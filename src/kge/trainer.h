#ifndef KGFD_KGE_TRAINER_H_
#define KGFD_KGE_TRAINER_H_

#include <vector>

#include "kg/dataset.h"
#include "kg/triple_store.h"
#include "kge/loss.h"
#include "kge/model.h"
#include "kge/negative_sampling.h"
#include "kge/optimizer.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace kgfd {

class MetricsRegistry;

/// Metric names Trainer::Train populates when TrainerConfig::metrics is
/// set (see src/obs/).
inline constexpr char kTrainEpochSecondsHist[] = "train.epoch.seconds";
inline constexpr char kTrainEpochLossHist[] = "train.epoch.loss";
inline constexpr char kTrainEpochsCounter[] = "train.epochs.completed";
inline constexpr char kTrainExamplesCounter[] = "train.examples.processed";
inline constexpr char kTrainThroughputGauge[] = "train.examples_per_sec";

/// How examples are formed from positives (LibKGE terminology).
enum class TrainingMode {
  /// Corrupt each positive into `negatives_per_positive` negatives.
  kNegativeSampling,
  /// 1vsAll: each positive is scored against *every* entity on both sides
  /// with binary cross-entropy (label 1 at the true entity). No sampled
  /// negatives; `negatives_per_positive` and `loss` are ignored. Costs
  /// O(num_entities) gradient work per positive — intended for small to
  /// medium graphs (and slow for ConvE, which re-runs its convolution per
  /// corrupted subject).
  k1vsAll,
};

struct TrainerConfig {
  size_t epochs = 20;
  size_t batch_size = 128;
  TrainingMode training_mode = TrainingMode::kNegativeSampling;
  size_t negatives_per_positive = 2;
  LossKind loss = LossKind::kMarginRanking;
  /// Margin of the ranking loss (ignored by pointwise losses).
  double margin = 1.0;
  /// Reject corruptions that are true training triples.
  bool filtered_negatives = true;
  /// Which side a corruption replaces (uniform or Bernoulli tph/hpt).
  CorruptionScheme corruption_scheme = CorruptionScheme::kUniform;
  OptimizerConfig optimizer;
  uint64_t seed = 7;
  /// Emit an INFO log line every N epochs (0 = silent).
  size_t log_every_epochs = 0;

  /// Optional validation-based early stopping (LibKGE-style): when set,
  /// filtered MRR on `early_stopping_dataset->valid()` is evaluated every
  /// `eval_every_epochs`; training stops after `patience` evaluations
  /// without improvement and the best parameters are restored.
  const Dataset* early_stopping_dataset = nullptr;
  size_t eval_every_epochs = 5;
  size_t patience = 3;

  /// When set, per-epoch loss/latency histograms, example counters and an
  /// examples/sec gauge are recorded here (metric names above).
  MetricsRegistry* metrics = nullptr;

  /// Cooperative stop signal, observed between batches. A stopped run is
  /// graceful degradation: Train() returns OK with the stats of the epochs
  /// completed so far, and the model keeps the parameters it had after the
  /// last finished batch (with early stopping active, the best snapshot is
  /// still restored) — a usable, checkpointable partially-trained model.
  CancelContext cancel;
};

struct EpochStats {
  size_t epoch = 0;
  double mean_loss = 0.0;
  double seconds = 0.0;
  /// Validation MRR if evaluated this epoch, else negative.
  double valid_mrr = -1.0;
};

/// Mini-batch trainer: shuffles the training triples each epoch, corrupts
/// each positive into `negatives_per_positive` negatives, differentiates the
/// configured loss through Model::AccumulateScoreGradient, and applies one
/// optimizer step per batch. Deterministic in `config.seed`.
class Trainer {
 public:
  Trainer(Model* model, const TripleStore* train, TrainerConfig config);

  /// Runs all epochs; returns per-epoch stats.
  Result<std::vector<EpochStats>> Train();

 private:
  Model* model_;
  const TripleStore* train_;
  TrainerConfig config_;
};

/// Convenience wrapper: create + train a model on a training store.
Result<std::unique_ptr<Model>> TrainModel(ModelKind kind,
                                          const ModelConfig& model_config,
                                          const TripleStore& train,
                                          const TrainerConfig& trainer_config);

}  // namespace kgfd

#endif  // KGFD_KGE_TRAINER_H_
