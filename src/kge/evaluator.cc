#include "kge/evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace kgfd {

LinkPredictionMetrics MetricsFromRanks(const std::vector<double>& ranks) {
  LinkPredictionMetrics m;
  m.num_ranks = ranks.size();
  if (ranks.empty()) return m;
  for (double rank : ranks) {
    m.mrr += 1.0 / rank;
    m.mean_rank += rank;
    if (rank <= 1.0) m.hits_at_1 += 1.0;
    if (rank <= 3.0) m.hits_at_3 += 1.0;
    if (rank <= 10.0) m.hits_at_10 += 1.0;
  }
  const double n = static_cast<double>(ranks.size());
  m.mrr /= n;
  m.mean_rank /= n;
  m.hits_at_1 /= n;
  m.hits_at_3 /= n;
  m.hits_at_10 /= n;
  return m;
}

double RankAgainstScores(const std::vector<double>& scores, size_t target,
                         const std::vector<char>* excluded) {
  const double target_score = scores[target];
  size_t greater = 0;
  size_t ties = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i == target) continue;
    if (excluded != nullptr && (*excluded)[i] != 0) continue;
    if (scores[i] > target_score) {
      ++greater;
    } else if (scores[i] == target_score) {
      ++ties;
    }
  }
  return 1.0 + static_cast<double>(greater) +
         static_cast<double>(ties) / 2.0;
}

namespace {

/// Marks entities that form known-true corruptions of (s, r, ?) across the
/// provided stores.
void MarkKnownObjects(const std::vector<const TripleStore*>& stores,
                      EntityId s, RelationId r, std::vector<char>* excluded) {
  for (const TripleStore* store : stores) {
    for (EntityId o : store->ObjectsOf(s, r)) (*excluded)[o] = 1;
  }
}

void MarkKnownSubjects(const std::vector<const TripleStore*>& stores,
                       RelationId r, EntityId o,
                       std::vector<char>* excluded) {
  for (const TripleStore* store : stores) {
    for (EntityId s : store->SubjectsOf(r, o)) (*excluded)[s] = 1;
  }
}

}  // namespace

Result<LinkPredictionMetrics> EvaluateLinkPrediction(
    const Model& model, const Dataset& dataset, const TripleStore& split,
    const EvalConfig& config, ThreadPool* pool) {
  KGFD_RETURN_NOT_OK(ValidateModelShape(model, dataset.num_entities(),
                                        dataset.num_relations()));
  const std::vector<const TripleStore*> stores = {
      &dataset.train(), &dataset.valid(), &dataset.test()};
  ScopedSpan span(config.metrics, kEvalSpan);
  // Fixed slots per triple keep the result independent of scheduling.
  std::vector<double> ranks(split.size() * 2, 0.0);
  const std::vector<Triple>& triples = split.triples();
  // Triples per batch-scoring call. Small on purpose: each query needs a
  // num_entities-sized score vector, so the working set stays a few
  // hundred KB per thread while still amortizing the kernel's row loads
  // over several queries.
  constexpr size_t kEvalBatch = 8;
  ParallelFor(
      pool, triples.size(),
      [&](size_t begin, size_t end) {
        // Reused across sub-blocks: the score vectors hold their
        // num_entities capacity after the first batch call.
        std::vector<std::vector<double>> scores(kEvalBatch);
        std::vector<char> excluded;
        SideQuery queries[kEvalBatch];
        std::vector<double>* outs[kEvalBatch];
        for (size_t block = begin; block < end; block += kEvalBatch) {
          // Per-sub-block cancellation probe; the whole evaluation errors
          // out below, so abandoning this chunk's remaining slots is safe.
          if (config.cancel.StopReason() != StoppedReason::kNone) return;
          const size_t n = std::min(kEvalBatch, end - block);
          // Object side.
          for (size_t j = 0; j < n; ++j) {
            const Triple& t = triples[block + j];
            queries[j] = SideQuery{t.subject, t.relation};
            outs[j] = &scores[j];
          }
          model.ScoreObjectsBatch(queries, n, outs);
          for (size_t j = 0; j < n; ++j) {
            const Triple& t = triples[block + j];
            excluded.assign(scores[j].size(), 0);
            if (config.filtered) {
              MarkKnownObjects(stores, t.subject, t.relation, &excluded);
            }
            ranks[2 * (block + j)] =
                RankAgainstScores(scores[j], t.object, &excluded);
          }
          // Subject side.
          for (size_t j = 0; j < n; ++j) {
            const Triple& t = triples[block + j];
            queries[j] = SideQuery{t.object, t.relation};
          }
          model.ScoreSubjectsBatch(queries, n, outs);
          for (size_t j = 0; j < n; ++j) {
            const Triple& t = triples[block + j];
            excluded.assign(scores[j].size(), 0);
            if (config.filtered) {
              MarkKnownSubjects(stores, t.relation, t.object, &excluded);
            }
            ranks[2 * (block + j) + 1] =
                RankAgainstScores(scores[j], t.subject, &excluded);
          }
        }
      },
      &config.cancel, kEvalBatch);
  KGFD_RETURN_NOT_OK(config.cancel.Check("link-prediction evaluation"));
  const double elapsed = span.Stop();
  if (config.metrics != nullptr) {
    config.metrics->GetCounter(kEvalTriplesCounter)
        ->Increment(triples.size());
    if (elapsed > 0.0) {
      config.metrics->GetGauge(kEvalThroughputGauge)
          ->Set(static_cast<double>(ranks.size()) / elapsed);
    }
  }
  return MetricsFromRanks(ranks);
}

Result<StratifiedMetrics> EvaluateByPopularity(
    const Model& model, const Dataset& dataset, const TripleStore& split,
    size_t num_buckets, const EvalConfig& config) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  KGFD_RETURN_NOT_OK(ValidateModelShape(model, dataset.num_entities(),
                                        dataset.num_relations()));
  // Undirected degree per entity over the training triples.
  std::vector<uint64_t> degree(dataset.num_entities(), 0);
  for (const Triple& t : dataset.train().triples()) {
    ++degree[t.subject];
    ++degree[t.object];
  }
  // Quantile bucket edges over entities occurring in train.
  std::vector<uint64_t> present;
  for (uint64_t d : degree) {
    if (d > 0) present.push_back(d);
  }
  if (present.empty()) {
    return Status::FailedPrecondition("empty training graph");
  }
  std::sort(present.begin(), present.end());
  StratifiedMetrics result;
  result.bucket_max_degree.resize(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    const size_t idx = std::min(
        present.size() - 1, (b + 1) * present.size() / num_buckets);
    result.bucket_max_degree[b] =
        b + 1 == num_buckets ? present.back() : present[idx];
  }
  auto bucket_of = [&](EntityId e) {
    const uint64_t d = degree[e];
    for (size_t b = 0; b < num_buckets; ++b) {
      if (d <= result.bucket_max_degree[b]) return b;
    }
    return num_buckets - 1;
  };

  std::vector<std::vector<double>> ranks(num_buckets);
  const std::vector<const TripleStore*> stores = {
      &dataset.train(), &dataset.valid(), &dataset.test()};
  std::vector<double> scores;
  std::vector<char> excluded;
  for (const Triple& t : split.triples()) {
    KGFD_RETURN_NOT_OK(config.cancel.Check("popularity evaluation"));
    model.ScoreObjects(t.subject, t.relation, &scores);
    excluded.assign(scores.size(), 0);
    if (config.filtered) {
      MarkKnownObjects(stores, t.subject, t.relation, &excluded);
    }
    ranks[bucket_of(t.object)].push_back(
        RankAgainstScores(scores, t.object, &excluded));
    model.ScoreSubjects(t.relation, t.object, &scores);
    excluded.assign(scores.size(), 0);
    if (config.filtered) {
      MarkKnownSubjects(stores, t.relation, t.object, &excluded);
    }
    ranks[bucket_of(t.subject)].push_back(
        RankAgainstScores(scores, t.subject, &excluded));
  }
  result.buckets.reserve(num_buckets);
  for (const std::vector<double>& bucket_ranks : ranks) {
    result.buckets.push_back(MetricsFromRanks(bucket_ranks));
  }
  return result;
}

SideRanks RankTriple(const Model& model, const Triple& t,
                     const TripleStore& known, bool filtered) {
  SideRanks out;
  std::vector<double> scores;
  std::vector<char> excluded;

  model.ScoreObjects(t.subject, t.relation, &scores);
  excluded.assign(scores.size(), 0);
  if (filtered) {
    for (EntityId o : known.ObjectsOf(t.subject, t.relation)) {
      excluded[o] = 1;
    }
    excluded[t.object] = 0;  // never filter the target itself
  }
  out.object_rank = RankAgainstScores(scores, t.object, &excluded);

  model.ScoreSubjects(t.relation, t.object, &scores);
  excluded.assign(scores.size(), 0);
  if (filtered) {
    for (EntityId s : known.SubjectsOf(t.relation, t.object)) {
      excluded[s] = 1;
    }
    excluded[t.subject] = 0;
  }
  out.subject_rank = RankAgainstScores(scores, t.subject, &excluded);
  return out;
}

}  // namespace kgfd
