#include "kge/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace kgfd {
namespace {

constexpr char kMagic[8] = {'K', 'G', 'F', 'D', 'C', 'K', 'P', 'T'};
// Version 2 appends a CRC-32 trailer over everything before it, so loads
// reject truncated or bit-flipped checkpoints instead of deserializing
// garbage weights.
constexpr uint32_t kFormatVersion = 2;

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint64_t> ReadU64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return Status::IoError("truncated checkpoint");
  return v;
}

Result<std::string> ReadString(std::istream& in) {
  KGFD_ASSIGN_OR_RETURN(uint64_t n, ReadU64(in));
  if (n > (1ULL << 20)) return Status::IoError("corrupt checkpoint string");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) return Status::IoError("truncated checkpoint");
  return s;
}

}  // namespace

Status SaveModel(Model* model, const ModelConfig& config,
                 const std::string& path) {
  KGFD_FAIL_POINT(kFailPointCheckpointSave);
  // Serialize into memory first so the CRC-32 trailer can cover every byte
  // before it.
  std::ostringstream out(std::ios::binary);
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kFormatVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  WriteString(out, model->name());
  WriteU64(out, config.num_entities);
  WriteU64(out, config.num_relations);
  WriteU64(out, config.embedding_dim);
  WriteU64(out, static_cast<uint64_t>(config.transe_norm));
  WriteU64(out, config.conve_num_filters);
  WriteU64(out, config.conve_reshape_height);

  const std::vector<NamedTensor> params = model->Parameters();
  WriteU64(out, params.size());
  for (const NamedTensor& p : params) {
    WriteString(out, p.name);
    WriteU64(out, p.tensor->rows());
    WriteU64(out, p.tensor->cols());
    out.write(reinterpret_cast<const char*>(p.tensor->data().data()),
              static_cast<std::streamsize>(p.tensor->size() *
                                           sizeof(float)));
  }
  const std::string payload = out.str();
  const uint32_t crc = Crc32(payload);

  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  file.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<Model>> LoadModel(const std::string& path) {
  KGFD_FAIL_POINT(kFailPointCheckpointLoad);
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::IoError("read failed: " + path);
  }
  // Verify before parsing: magic, then the CRC-32 trailer over everything
  // preceding it. A failed check means truncation or corruption — nothing
  // past this point ever parses unchecksummed bytes.
  if (data.size() < sizeof(kMagic) + 2 * sizeof(uint32_t)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a kgfd checkpoint: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc =
      Crc32(data.data(), data.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::IoError(
        "checkpoint checksum mismatch (truncated or corrupted): " + path);
  }
  std::istringstream in(data.substr(0, data.size() - sizeof(uint32_t)),
                        std::ios::binary);
  in.ignore(sizeof(kMagic));
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kFormatVersion) {
    return Status::IoError("unsupported checkpoint version");
  }
  KGFD_ASSIGN_OR_RETURN(std::string model_name, ReadString(in));
  KGFD_ASSIGN_OR_RETURN(ModelKind kind, ModelKindFromName(model_name));
  ModelConfig config;
  KGFD_ASSIGN_OR_RETURN(uint64_t num_entities, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t num_relations, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t embedding_dim, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t transe_norm, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_filters, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_height, ReadU64(in));
  config.num_entities = num_entities;
  config.num_relations = num_relations;
  config.embedding_dim = embedding_dim;
  config.transe_norm = static_cast<int>(transe_norm);
  config.conve_num_filters = conve_filters;
  config.conve_reshape_height = conve_height;

  Rng rng(0);  // parameters are overwritten below
  KGFD_ASSIGN_OR_RETURN(auto model, CreateModel(kind, config, &rng));

  KGFD_ASSIGN_OR_RETURN(uint64_t num_params, ReadU64(in));
  std::vector<NamedTensor> params = model->Parameters();
  if (num_params != params.size()) {
    return Status::IoError("checkpoint parameter count mismatch");
  }
  for (NamedTensor& p : params) {
    KGFD_ASSIGN_OR_RETURN(std::string name, ReadString(in));
    KGFD_ASSIGN_OR_RETURN(uint64_t rows, ReadU64(in));
    KGFD_ASSIGN_OR_RETURN(uint64_t cols, ReadU64(in));
    if (name != p.name || rows != p.tensor->rows() ||
        cols != p.tensor->cols()) {
      return Status::IoError("checkpoint tensor mismatch for " + p.name);
    }
    in.read(reinterpret_cast<char*>(p.tensor->data().data()),
            static_cast<std::streamsize>(p.tensor->size() * sizeof(float)));
    if (!in) return Status::IoError("truncated checkpoint tensor " + p.name);
  }
  return model;
}

}  // namespace kgfd
