#include "kge/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>

#include "kge/models/pair_embedding_model.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace kgfd {
namespace {

constexpr char kMagic[8] = {'K', 'G', 'F', 'D', 'C', 'K', 'P', 'T'};
// Version 2: one in-memory blob with a CRC-32 trailer. Version 3 keeps the
// trailer but splits the file into a CRC-guarded header (with a tensor
// directory) and aligned payload sections, so loads can verify and map the
// header without touching payload bytes: the entity table starts on a
// 4096-byte page boundary and every section on a 64-byte boundary, which
// lets the mmap backend attach tensors zero-copy.
constexpr uint32_t kFormatV2 = 2;
constexpr uint32_t kFormatV3 = 3;
// magic + u32 version + u64 header size.
constexpr size_t kFixedHead = sizeof(kMagic) + sizeof(uint32_t) +
                              sizeof(uint64_t);
constexpr uint64_t kSectionAlign = 64;
constexpr uint64_t kPageAlign = 4096;
constexpr uint64_t kMaxTensorSections = 256;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

/// Bounds-checked little-endian reader over a byte range. Both load paths
/// parse through this, so a malformed length can only ever produce an
/// IoError — never a read past the mapped or buffered range.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, size_t size)
      : data_(data), size_(size) {}

  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    KGFD_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
    return v;
  }

  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    KGFD_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
    return v;
  }

  Result<std::string> ReadString() {
    KGFD_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (n > (1ULL << 20)) return Status::IoError("corrupt checkpoint string");
    if (n > size_ - pos_) return Status::IoError("truncated checkpoint");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Status ReadBytes(void* dst, size_t n) {
    if (n > size_ - pos_) return Status::IoError("truncated checkpoint");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// One tensor the v3 writer serializes: float payload, or quantized codes
/// plus per-row scale/zero-point parameters.
struct SectionSpec {
  std::string name;
  EmbeddingDtype dtype = EmbeddingDtype::kFloat32;
  uint64_t rows = 0;
  uint64_t cols = 0;
  const void* payload = nullptr;
  const float* scales = nullptr;
  const float* zero_points = nullptr;
};

Status WriteV3(const std::string& model_name, const ModelConfig& config,
               const std::vector<SectionSpec>& sections,
               const std::string& path) {
  // Header blob size depends only on names and counts, so offsets can be
  // assigned before serializing: blob = model name + 6 config u64 + count
  // u64 + per section (name + 7 u64 + 2 crc32).
  uint64_t blob_size = 8 + model_name.size() + 7 * 8;
  for (const SectionSpec& s : sections) {
    blob_size += 8 + s.name.size() + 7 * 8 + 2 * 4;
  }
  const uint64_t payload_start =
      AlignUp(kFixedHead + blob_size + sizeof(uint32_t), kPageAlign);

  // The entity table's payload goes first so it lands exactly on the page
  // boundary; every other section keeps 64-byte alignment.
  std::vector<size_t> order;
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].name == "entities") order.push_back(i);
  }
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].name != "entities") order.push_back(i);
  }

  std::vector<uint64_t> payload_offset(sections.size(), 0);
  std::vector<uint64_t> payload_size(sections.size(), 0);
  std::vector<uint64_t> quant_offset(sections.size(), 0);
  std::vector<uint64_t> quant_size(sections.size(), 0);
  uint64_t cursor = payload_start;
  for (size_t i : order) {
    const SectionSpec& s = sections[i];
    cursor = AlignUp(cursor, kSectionAlign);
    payload_offset[i] = cursor;
    payload_size[i] = s.rows * s.cols * EmbeddingDtypeBytes(s.dtype);
    cursor += payload_size[i];
  }
  for (size_t i : order) {
    const SectionSpec& s = sections[i];
    if (s.dtype == EmbeddingDtype::kFloat32) continue;
    cursor = AlignUp(cursor, kSectionAlign);
    quant_offset[i] = cursor;
    quant_size[i] = 2 * s.rows * sizeof(float);
    cursor += quant_size[i];
  }

  std::string file;
  file.reserve(cursor + sizeof(uint32_t));
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatV3);
  AppendU64(&file, blob_size);
  AppendString(&file, model_name);
  AppendU64(&file, config.num_entities);
  AppendU64(&file, config.num_relations);
  AppendU64(&file, config.embedding_dim);
  AppendU64(&file, static_cast<uint64_t>(config.transe_norm));
  AppendU64(&file, config.conve_num_filters);
  AppendU64(&file, config.conve_reshape_height);
  AppendU64(&file, sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    const SectionSpec& s = sections[i];
    AppendString(&file, s.name);
    AppendU64(&file, static_cast<uint64_t>(s.dtype));
    AppendU64(&file, s.rows);
    AppendU64(&file, s.cols);
    AppendU64(&file, payload_offset[i]);
    AppendU64(&file, payload_size[i]);
    AppendU64(&file, quant_offset[i]);
    AppendU64(&file, quant_size[i]);
    AppendU32(&file, Crc32(s.payload, payload_size[i]));
    uint32_t quant_crc = 0;
    if (s.dtype != EmbeddingDtype::kFloat32) {
      quant_crc = Crc32Update(0, s.scales, s.rows * sizeof(float));
      quant_crc = Crc32Update(quant_crc, s.zero_points,
                              s.rows * sizeof(float));
    }
    AppendU32(&file, quant_crc);
  }
  if (file.size() != kFixedHead + blob_size) {
    return Status::Internal("checkpoint header size miscomputed");
  }
  AppendU32(&file, Crc32(file));

  for (size_t i : order) {
    const SectionSpec& s = sections[i];
    file.resize(payload_offset[i], '\0');
    file.append(static_cast<const char*>(s.payload), payload_size[i]);
  }
  for (size_t i : order) {
    const SectionSpec& s = sections[i];
    if (s.dtype == EmbeddingDtype::kFloat32) continue;
    file.resize(quant_offset[i], '\0');
    file.append(reinterpret_cast<const char*>(s.scales),
                s.rows * sizeof(float));
    file.append(reinterpret_cast<const char*>(s.zero_points),
                s.rows * sizeof(float));
  }
  AppendU32(&file, Crc32(file));

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

bool SupportsQuantizedEntities(ModelKind kind) {
  return kind == ModelKind::kTransE || kind == ModelKind::kDistMult ||
         kind == ModelKind::kComplEx;
}

/// Parses the v3 fixed head + header blob (magic already checked) and
/// verifies the header CRC. Payload bytes are not touched.
Result<CheckpointInfo> ParseV3Header(const unsigned char* data,
                                     size_t file_size) {
  // Magic and version were checked by the caller (file_size >= kFixedHead
  // + 4 included).
  uint64_t blob_size = 0;
  std::memcpy(&blob_size, data + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(blob_size));
  if (blob_size > file_size ||
      kFixedHead + blob_size + sizeof(uint32_t) > file_size) {
    return Status::IoError("truncated checkpoint header");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + kFixedHead + blob_size, sizeof(stored_crc));
  if (stored_crc != Crc32(data, kFixedHead + blob_size)) {
    return Status::IoError(
        "checkpoint header checksum mismatch (truncated or corrupted)");
  }

  CheckpointInfo info;
  info.version = kFormatV3;
  info.header_size = blob_size;
  ByteReader in(data + kFixedHead, blob_size);
  KGFD_ASSIGN_OR_RETURN(info.model_name, in.ReadString());
  KGFD_ASSIGN_OR_RETURN(uint64_t num_entities, in.ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t num_relations, in.ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t embedding_dim, in.ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t transe_norm, in.ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_filters, in.ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_height, in.ReadU64());
  info.config.num_entities = num_entities;
  info.config.num_relations = num_relations;
  info.config.embedding_dim = embedding_dim;
  info.config.transe_norm = static_cast<int>(transe_norm);
  info.config.conve_num_filters = conve_filters;
  info.config.conve_reshape_height = conve_height;
  KGFD_ASSIGN_OR_RETURN(uint64_t num_tensors, in.ReadU64());
  if (num_tensors > kMaxTensorSections) {
    return Status::IoError("corrupt checkpoint header (tensor count)");
  }
  info.tensors.resize(num_tensors);
  for (CheckpointTensorInfo& t : info.tensors) {
    KGFD_ASSIGN_OR_RETURN(t.name, in.ReadString());
    t.fields_offset = kFixedHead + in.pos();
    KGFD_ASSIGN_OR_RETURN(uint64_t dtype_raw, in.ReadU64());
    if (dtype_raw > static_cast<uint64_t>(EmbeddingDtype::kInt16)) {
      return Status::IoError("unknown tensor dtype in checkpoint");
    }
    t.dtype = static_cast<EmbeddingDtype>(dtype_raw);
    KGFD_ASSIGN_OR_RETURN(t.rows, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(t.cols, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(t.payload_offset, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(t.payload_size, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(t.quant_offset, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(t.quant_size, in.ReadU64());
    KGFD_RETURN_NOT_OK(in.ReadU32().status());  // payload crc
    KGFD_RETURN_NOT_OK(in.ReadU32().status());  // quant crc
  }
  if (!in.AtEnd()) {
    return Status::IoError("corrupt checkpoint header (trailing bytes)");
  }
  return info;
}

/// Reads the per-section CRCs back out of the (already parsed) header blob.
void SectionCrcs(const unsigned char* data, const CheckpointTensorInfo& t,
                 uint32_t* payload_crc, uint32_t* quant_crc) {
  // The two CRCs trail the seven u64 fields of the entry.
  const unsigned char* p = data + t.fields_offset + 7 * 8;
  std::memcpy(payload_crc, p, sizeof(uint32_t));
  std::memcpy(quant_crc, p + sizeof(uint32_t), sizeof(uint32_t));
}

/// The SIGBUS guard of the mmap path: every section's offset, size and
/// alignment is checked against the actual file length (as mapped) before
/// any payload byte is dereferenced. Descriptive IoErrors, never UB.
Status ValidateV3Directory(const CheckpointInfo& info, size_t file_size) {
  const uint64_t payload_end = file_size - sizeof(uint32_t);  // trailer CRC
  for (const CheckpointTensorInfo& t : info.tensors) {
    if (t.rows == 0 || t.cols == 0) {
      return Status::IoError("zero-row tensor section '" + t.name +
                             "' in checkpoint");
    }
    const uint64_t elem = EmbeddingDtypeBytes(t.dtype);
    if (t.cols > UINT64_MAX / t.rows || t.rows * t.cols > UINT64_MAX / elem) {
      return Status::IoError("tensor section '" + t.name +
                             "' size overflows");
    }
    if (t.payload_size != t.rows * t.cols * elem) {
      return Status::IoError("tensor section '" + t.name +
                             "' size mismatch");
    }
    if (t.payload_offset % kSectionAlign != 0) {
      return Status::IoError("misaligned tensor section '" + t.name + "'");
    }
    if (t.name == "entities" && t.payload_offset % kPageAlign != 0) {
      return Status::IoError(
          "entity section is not page-aligned (corrupt checkpoint header)");
    }
    if (t.payload_offset > payload_end ||
        t.payload_size > payload_end - t.payload_offset) {
      return Status::IoError(
          "tensor section '" + t.name +
          "' out of bounds (truncated or corrupted checkpoint)");
    }
    if (t.dtype == EmbeddingDtype::kFloat32) {
      if (t.quant_size != 0) {
        return Status::IoError("float tensor section '" + t.name +
                               "' carries quantization parameters");
      }
    } else {
      if (t.quant_size != 2 * t.rows * sizeof(float)) {
        return Status::IoError("quantization parameter block of '" + t.name +
                               "' has the wrong size");
      }
      if (t.quant_offset % kSectionAlign != 0) {
        return Status::IoError("misaligned quantization parameters of '" +
                               t.name + "'");
      }
      if (t.quant_offset > payload_end ||
          t.quant_size > payload_end - t.quant_offset) {
        return Status::IoError(
            "quantization parameters of '" + t.name +
            "' out of bounds (truncated or corrupted checkpoint)");
      }
    }
  }
  return Status::OK();
}

/// Owned storage backing a QuantizedTable for ram-backend loads of a
/// quantized checkpoint (the view's keepalive holds this struct).
struct OwnedQuantStorage {
  std::vector<unsigned char> codes;
  std::vector<float> params;  // rows scales then rows zero-points
};

/// Materializes a model from a validated v3 file image. `zero_copy` is the
/// mmap backend: the entity section (float or quantized) is attached as a
/// read-only view into `data`, kept alive by `keepalive`; everything else
/// is copied.
Result<LoadedModel> BuildFromV3(const CheckpointInfo& info,
                                const unsigned char* data, bool zero_copy,
                                std::shared_ptr<const void> keepalive) {
  KGFD_ASSIGN_OR_RETURN(ModelKind kind, ModelKindFromName(info.model_name));
  KGFD_ASSIGN_OR_RETURN(auto model,
                        CreateModelUninitialized(kind, info.config));
  std::vector<NamedTensor> params = model->Parameters();
  if (info.tensors.size() != params.size()) {
    return Status::IoError("checkpoint parameter count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    NamedTensor& p = params[i];
    const CheckpointTensorInfo& t = info.tensors[i];
    if (t.name != p.name) {
      return Status::IoError("checkpoint tensor mismatch for " + p.name);
    }
    if (t.dtype == EmbeddingDtype::kFloat32) {
      if (t.rows != p.tensor->rows() || t.cols != p.tensor->cols()) {
        return Status::IoError("checkpoint tensor mismatch for " + p.name);
      }
      const float* src =
          reinterpret_cast<const float*>(data + t.payload_offset);
      if (zero_copy && t.name == "entities") {
        p.tensor->SetExternal(src, t.rows, t.cols);
      } else {
        std::memcpy(p.tensor->data().data(), src, t.payload_size);
      }
      continue;
    }
    // Quantized section: only the entity table of the kernel-backed pair
    // models may be quantized.
    if (t.name != "entities") {
      return Status::IoError("quantized tensor section '" + t.name +
                             "' (only the entity table may be quantized)");
    }
    if (!SupportsQuantizedEntities(kind)) {
      return Status::IoError(
          "quantized checkpoint for model " + info.model_name +
          " is not supported (TransE/DistMult/ComplEx only)");
    }
    if (t.rows != info.config.num_entities ||
        t.cols != info.config.embedding_dim) {
      return Status::IoError("checkpoint tensor mismatch for " + p.name);
    }
    auto* pair = static_cast<PairEmbeddingModel*>(model.get());
    if (zero_copy) {
      const float* qparams =
          reinterpret_cast<const float*>(data + t.quant_offset);
      pair->AttachQuantizedEntities(QuantizedTable::View(
          t.dtype, data + t.payload_offset, qparams, qparams + t.rows,
          t.rows, t.cols, keepalive));
    } else {
      auto owned = std::make_shared<OwnedQuantStorage>();
      owned->codes.resize(t.payload_size);
      std::memcpy(owned->codes.data(), data + t.payload_offset,
                  t.payload_size);
      owned->params.resize(2 * t.rows);
      std::memcpy(owned->params.data(), data + t.quant_offset, t.quant_size);
      const unsigned char* codes = owned->codes.data();
      const float* scales = owned->params.data();
      pair->AttachQuantizedEntities(
          QuantizedTable::View(t.dtype, codes, scales, scales + t.rows,
                               t.rows, t.cols, std::move(owned)));
    }
  }
  if (zero_copy) model->AttachStorageKeepalive(std::move(keepalive));
  LoadedModel loaded;
  loaded.model = std::move(model);
  loaded.config = info.config;
  return loaded;
}

/// The legacy v2 parse (trailer CRC already verified; `in` starts after
/// magic + version).
Result<LoadedModel> ParseV2(ByteReader* in) {
  KGFD_ASSIGN_OR_RETURN(std::string model_name, in->ReadString());
  KGFD_ASSIGN_OR_RETURN(ModelKind kind, ModelKindFromName(model_name));
  ModelConfig config;
  KGFD_ASSIGN_OR_RETURN(uint64_t num_entities, in->ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t num_relations, in->ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t embedding_dim, in->ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t transe_norm, in->ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_filters, in->ReadU64());
  KGFD_ASSIGN_OR_RETURN(uint64_t conve_height, in->ReadU64());
  config.num_entities = num_entities;
  config.num_relations = num_relations;
  config.embedding_dim = embedding_dim;
  config.transe_norm = static_cast<int>(transe_norm);
  config.conve_num_filters = conve_filters;
  config.conve_reshape_height = conve_height;

  KGFD_ASSIGN_OR_RETURN(auto model, CreateModelUninitialized(kind, config));
  KGFD_ASSIGN_OR_RETURN(uint64_t num_params, in->ReadU64());
  std::vector<NamedTensor> params = model->Parameters();
  if (num_params != params.size()) {
    return Status::IoError("checkpoint parameter count mismatch");
  }
  for (NamedTensor& p : params) {
    KGFD_ASSIGN_OR_RETURN(std::string name, in->ReadString());
    KGFD_ASSIGN_OR_RETURN(uint64_t rows, in->ReadU64());
    KGFD_ASSIGN_OR_RETURN(uint64_t cols, in->ReadU64());
    if (name != p.name || rows != p.tensor->rows() ||
        cols != p.tensor->cols()) {
      return Status::IoError("checkpoint tensor mismatch for " + p.name);
    }
    Status read = in->ReadBytes(p.tensor->data().data(),
                                p.tensor->size() * sizeof(float));
    if (!read.ok()) {
      return Status::IoError("truncated checkpoint tensor " + p.name);
    }
  }
  LoadedModel loaded;
  loaded.model = std::move(model);
  loaded.config = config;
  return loaded;
}

/// Ram-backend load: read the whole file, verify magic + trailer CRC, then
/// parse by version. Nothing past the CRC check ever parses unchecksummed
/// bytes.
Result<LoadedModel> LoadRam(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::IoError("read failed: " + path);
  }
  if (data.size() < kFixedHead + sizeof(uint32_t)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a kgfd checkpoint: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32(data.data(), data.size() - sizeof(uint32_t))) {
    return Status::IoError(
        "checkpoint checksum mismatch (truncated or corrupted): " + path);
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  uint32_t version = 0;
  std::memcpy(&version, bytes + sizeof(kMagic), sizeof(version));
  if (version == kFormatV2) {
    ByteReader in(bytes + sizeof(kMagic) + sizeof(uint32_t),
                  data.size() - sizeof(kMagic) - 2 * sizeof(uint32_t));
    return ParseV2(&in);
  }
  if (version != kFormatV3) {
    return Status::IoError("unsupported checkpoint version");
  }
  KGFD_ASSIGN_OR_RETURN(CheckpointInfo info,
                        ParseV3Header(bytes, data.size()));
  KGFD_RETURN_NOT_OK(ValidateV3Directory(info, data.size()));
  return BuildFromV3(info, bytes, /*zero_copy=*/false, nullptr);
}

/// Mmap-backend load. Default integrity is the header CRC plus directory
/// bounds/alignment validation — cold start is O(header), payload pages
/// fault in on first use. `verify_mapped_payload` restores full ram-load
/// integrity (per-section CRCs + whole-file trailer) at the cost of
/// touching every page.
Result<LoadedModel> LoadMmap(const std::string& path,
                             bool verify_mapped_payload) {
  KGFD_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  if (file.size() < kFixedHead + sizeof(uint32_t)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a kgfd checkpoint: " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, file.data() + sizeof(kMagic), sizeof(version));
  if (version == kFormatV2) {
    // v2 has no aligned, independently-checksummed tensor section to map;
    // fall back to the ram path (same result, copied storage).
    return LoadRam(path);
  }
  if (version != kFormatV3) {
    return Status::IoError("unsupported checkpoint version");
  }
  KGFD_ASSIGN_OR_RETURN(CheckpointInfo info,
                        ParseV3Header(file.data(), file.size()));
  KGFD_RETURN_NOT_OK(ValidateV3Directory(info, file.size()));
  if (verify_mapped_payload) {
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, file.data() + file.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    if (stored_crc != Crc32(file.data(), file.size() - sizeof(uint32_t))) {
      return Status::IoError(
          "checkpoint checksum mismatch (truncated or corrupted): " + path);
    }
    for (const CheckpointTensorInfo& t : info.tensors) {
      uint32_t payload_crc = 0, quant_crc = 0;
      SectionCrcs(file.data(), t, &payload_crc, &quant_crc);
      if (payload_crc != Crc32(file.data() + t.payload_offset,
                               t.payload_size)) {
        return Status::IoError("tensor section '" + t.name +
                               "' checksum mismatch: " + path);
      }
      if (t.quant_size != 0 &&
          quant_crc != Crc32(file.data() + t.quant_offset, t.quant_size)) {
        return Status::IoError("quantization parameters of '" + t.name +
                               "' checksum mismatch: " + path);
      }
    }
  }
  for (const CheckpointTensorInfo& t : info.tensors) {
    if (t.name == "entities") {
      file.AdviseSequential(t.payload_offset, t.payload_size);
    }
  }
  auto keepalive = std::make_shared<MmapFile>(std::move(file));
  const unsigned char* data = keepalive->data();
  return BuildFromV3(info, data, /*zero_copy=*/true, std::move(keepalive));
}

}  // namespace

Status SaveModel(Model* model, const ModelConfig& config,
                 const std::string& path) {
  KGFD_FAIL_POINT(kFailPointCheckpointSave);
  std::vector<SectionSpec> sections;
  for (const NamedTensor& p : model->Parameters()) {
    SectionSpec s;
    s.name = p.name;
    const QuantizedTable* qt = model->quantized_entities();
    if (p.name == "entities" && qt != nullptr) {
      s.dtype = qt->dtype();
      s.rows = qt->rows();
      s.cols = qt->cols();
      s.payload = qt->data();
      s.scales = qt->scales();
      s.zero_points = qt->zero_points();
    } else {
      s.rows = p.tensor->rows();
      s.cols = p.tensor->cols();
      s.payload = p.tensor->flat();
    }
    sections.push_back(s);
  }
  return WriteV3(model->name(), config, sections, path);
}

Status SaveQuantizedModel(Model* model, const ModelConfig& config,
                          EmbeddingDtype dtype, const std::string& path) {
  KGFD_FAIL_POINT(kFailPointCheckpointSave);
  if (dtype == EmbeddingDtype::kFloat32) {
    return Status::InvalidArgument(
        "quantized save needs dtype int8 or int16 (use SaveModel for "
        "float32)");
  }
  if (!SupportsQuantizedEntities(model->kind())) {
    return Status::InvalidArgument(
        "quantized entity storage supports TransE/DistMult/ComplEx only "
        "(got " + model->name() + ")");
  }
  const QuantizedTable* existing = model->quantized_entities();
  if (existing != nullptr) {
    if (existing->dtype() != dtype) {
      return Status::InvalidArgument(
          "model is already quantized as " +
          std::string(EmbeddingDtypeName(existing->dtype())) +
          "; re-quantizing to " + EmbeddingDtypeName(dtype) +
          " must start from the float checkpoint");
    }
    return SaveModel(model, config, path);
  }
  QuantizedTable table;
  std::vector<SectionSpec> sections;
  for (const NamedTensor& p : model->Parameters()) {
    SectionSpec s;
    s.name = p.name;
    if (p.name == "entities") {
      table = QuantizedTable::Quantize(*p.tensor, dtype);
      s.dtype = dtype;
      s.rows = table.rows();
      s.cols = table.cols();
      s.payload = table.data();
      s.scales = table.scales();
      s.zero_points = table.zero_points();
    } else {
      s.rows = p.tensor->rows();
      s.cols = p.tensor->cols();
      s.payload = p.tensor->flat();
    }
    sections.push_back(s);
  }
  return WriteV3(model->name(), config, sections, path);
}

Result<std::unique_ptr<Model>> LoadModel(const std::string& path) {
  CheckpointLoadOptions options;
  KGFD_ASSIGN_OR_RETURN(options.backend, EmbeddingBackendFromEnv());
  options.verify_mapped_payload = MmapVerifyFromEnv();
  return LoadModel(path, options);
}

Result<std::unique_ptr<Model>> LoadModel(
    const std::string& path, const CheckpointLoadOptions& options) {
  KGFD_ASSIGN_OR_RETURN(LoadedModel loaded,
                        LoadModelWithConfig(path, options));
  return std::move(loaded.model);
}

Result<LoadedModel> LoadModelWithConfig(const std::string& path,
                                        const CheckpointLoadOptions& options) {
  KGFD_FAIL_POINT(kFailPointCheckpointLoad);
  if (options.backend == EmbeddingBackend::kMmap) {
    return LoadMmap(path, options.verify_mapped_payload);
  }
  return LoadRam(path);
}

Result<CheckpointInfo> InspectCheckpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::IoError("read failed: " + path);
  }
  if (data.size() < kFixedHead + sizeof(uint32_t)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a kgfd checkpoint: " + path);
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  uint32_t version = 0;
  std::memcpy(&version, bytes + sizeof(kMagic), sizeof(version));
  if (version == kFormatV2) {
    CheckpointInfo info;
    info.version = version;
    ByteReader in(bytes + sizeof(kMagic) + sizeof(uint32_t),
                  data.size() - sizeof(kMagic) - sizeof(uint32_t));
    KGFD_ASSIGN_OR_RETURN(info.model_name, in.ReadString());
    KGFD_ASSIGN_OR_RETURN(uint64_t num_entities, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(uint64_t num_relations, in.ReadU64());
    KGFD_ASSIGN_OR_RETURN(uint64_t embedding_dim, in.ReadU64());
    info.config.num_entities = num_entities;
    info.config.num_relations = num_relations;
    info.config.embedding_dim = embedding_dim;
    return info;
  }
  if (version != kFormatV3) {
    return Status::IoError("unsupported checkpoint version");
  }
  KGFD_ASSIGN_OR_RETURN(CheckpointInfo info,
                        ParseV3Header(bytes, data.size()));
  KGFD_RETURN_NOT_OK(ValidateV3Directory(info, data.size()));
  return info;
}

namespace internal {

Status SaveModelV2(Model* model, const ModelConfig& config,
                   const std::string& path) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kFormatV2);
  AppendString(&out, model->name());
  AppendU64(&out, config.num_entities);
  AppendU64(&out, config.num_relations);
  AppendU64(&out, config.embedding_dim);
  AppendU64(&out, static_cast<uint64_t>(config.transe_norm));
  AppendU64(&out, config.conve_num_filters);
  AppendU64(&out, config.conve_reshape_height);
  const std::vector<NamedTensor> params = model->Parameters();
  AppendU64(&out, params.size());
  for (const NamedTensor& p : params) {
    AppendString(&out, p.name);
    AppendU64(&out, p.tensor->rows());
    AppendU64(&out, p.tensor->cols());
    out.append(reinterpret_cast<const char*>(p.tensor->flat()),
               p.tensor->size() * sizeof(float));
  }
  AppendU32(&out, Crc32(out));
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace internal

}  // namespace kgfd
