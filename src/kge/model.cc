#include "kge/model.h"

#include "kge/models/complex.h"
#include "kge/models/conve.h"
#include "kge/models/distmult.h"
#include "kge/models/hole.h"
#include "kge/models/rescal.h"
#include "kge/models/transe.h"

namespace kgfd {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransE:
      return "TransE";
    case ModelKind::kDistMult:
      return "DistMult";
    case ModelKind::kComplEx:
      return "ComplEx";
    case ModelKind::kRescal:
      return "RESCAL";
    case ModelKind::kHolE:
      return "HolE";
    case ModelKind::kConvE:
      return "ConvE";
  }
  return "Unknown";
}

Result<ModelKind> ModelKindFromName(const std::string& name) {
  for (ModelKind kind :
       {ModelKind::kTransE, ModelKind::kDistMult, ModelKind::kComplEx,
        ModelKind::kRescal, ModelKind::kHolE, ModelKind::kConvE}) {
    if (name == ModelKindName(kind)) return kind;
  }
  return Status::NotFound("unknown model: " + name);
}

Result<std::unique_ptr<Model>> CreateModelUninitialized(
    ModelKind kind, const ModelConfig& config) {
  if (config.num_entities < 1 || config.num_relations < 1) {
    return Status::InvalidArgument("model needs >= 1 entity and relation");
  }
  if (config.embedding_dim < 2) {
    return Status::InvalidArgument("embedding_dim must be >= 2");
  }
  std::unique_ptr<Model> model;
  switch (kind) {
    case ModelKind::kTransE:
      if (config.transe_norm != 1 && config.transe_norm != 2) {
        return Status::InvalidArgument("transe_norm must be 1 or 2");
      }
      model = std::make_unique<TransEModel>(config);
      break;
    case ModelKind::kDistMult:
      model = std::make_unique<DistMultModel>(config);
      break;
    case ModelKind::kComplEx:
      KGFD_RETURN_NOT_OK(ComplExModel::ValidateConfig(config));
      model = std::make_unique<ComplExModel>(config);
      break;
    case ModelKind::kRescal:
      model = std::make_unique<RescalModel>(config);
      break;
    case ModelKind::kHolE:
      model = std::make_unique<HolEModel>(config);
      break;
    case ModelKind::kConvE:
      KGFD_RETURN_NOT_OK(ConvEModel::ValidateConfig(config));
      model = std::make_unique<ConvEModel>(config);
      break;
  }
  return model;
}

Result<std::unique_ptr<Model>> CreateModel(ModelKind kind,
                                           const ModelConfig& config,
                                           Rng* rng) {
  KGFD_ASSIGN_OR_RETURN(std::unique_ptr<Model> model,
                        CreateModelUninitialized(kind, config));
  model->InitParameters(rng);
  return model;
}

void Model::ScoreObjectsBatch(const SideQuery* queries, size_t num_queries,
                              std::vector<double>* const* outs) const {
  for (size_t q = 0; q < num_queries; ++q) {
    ScoreObjects(queries[q].entity, queries[q].relation, outs[q]);
  }
}

void Model::ScoreSubjectsBatch(const SideQuery* queries, size_t num_queries,
                               std::vector<double>* const* outs) const {
  for (size_t q = 0; q < num_queries; ++q) {
    ScoreSubjects(queries[q].relation, queries[q].entity, outs[q]);
  }
}

Status ValidateModelShape(const Model& model, size_t num_entities,
                          size_t num_relations) {
  if (model.num_entities() != num_entities) {
    return Status::InvalidArgument(
        "model has " + std::to_string(model.num_entities()) +
        " entities but the graph has " + std::to_string(num_entities) +
        "; entity vocabularies must match exactly");
  }
  if (model.num_relations() < num_relations) {
    return Status::InvalidArgument(
        "model knows " + std::to_string(model.num_relations()) +
        " relations but the graph uses " + std::to_string(num_relations));
  }
  return Status::OK();
}

}  // namespace kgfd
