#ifndef KGFD_KGE_TENSOR_H_
#define KGFD_KGE_TENSOR_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/rng.h"

namespace kgfd {

/// Dense row-major float matrix. The parameter container for every KGE
/// model: embedding tables (rows = entities/relations), convolution filter
/// banks, dense projection weights, bias vectors. Deliberately minimal — all
/// model math is written against raw rows, keeping gradients analytic and
/// dependency-free.
///
/// Storage is either OWNED (the usual case: a heap vector this tensor
/// allocates and may mutate) or EXTERNAL (SetExternal(): a read-only view
/// into storage someone else keeps alive, e.g. the page-aligned tensor
/// section of an mmap'd checkpoint). All const accessors work identically
/// on both; every mutating accessor aborts on an external tensor, so
/// training code can never silently write through to a mapped file.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }

  float* Row(size_t r) { return MutableData() + r * cols_; }
  const float* Row(size_t r) const { return flat() + r * cols_; }

  float& At(size_t r, size_t c) { return MutableData()[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return flat()[r * cols_ + c]; }

  std::vector<float>& data() {
    AssertOwned("Tensor::data()");
    return data_;
  }
  const std::vector<float>& data() const {
    AssertOwned("Tensor::data() const");
    return data_;
  }

  /// Flat row-major storage, valid for owned and external tensors alike.
  /// Readers (kernels, checkpoints, fingerprints) use this instead of
  /// data().data() so they work on every storage backend.
  const float* flat() const {
    return external_ != nullptr ? external_ : data_.data();
  }

  bool external() const { return external_ != nullptr; }

  /// Points this tensor at read-only external storage that the caller
  /// keeps alive (the model holds the mmap'd checkpoint open). Releases
  /// any owned storage; the tensor becomes read-only.
  void SetExternal(const float* data, size_t rows, size_t cols) {
    external_ = data;
    rows_ = rows;
    cols_ = cols;
    data_.clear();
    data_.shrink_to_fit();
  }

  void Fill(float v) {
    std::fill(data().begin(), data().end(), v);
  }

  /// Uniform init in [lo, hi).
  void InitUniform(Rng* rng, float lo, float hi) {
    for (float& v : data()) v = rng->UniformFloat(lo, hi);
  }

  /// Glorot/Xavier uniform init with explicit fan sizes. For embedding
  /// tables the convention (LibKGE) is fan_in = fan_out = embedding dim.
  void InitXavierUniform(Rng* rng, size_t fan_in, size_t fan_out) {
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    InitUniform(rng, -bound, bound);
  }

  /// Normal init.
  void InitNormal(Rng* rng, float mean, float stddev) {
    for (float& v : data()) {
      v = static_cast<float>(rng->Normal(mean, stddev));
    }
  }

 private:
  float* MutableData() {
    AssertOwned("mutating accessor");
    return data_.data();
  }

  void AssertOwned(const char* what) const {
    if (external_ == nullptr) return;
    std::fprintf(stderr,
                 "Tensor: %s on a read-only external tensor (mmap-backed "
                 "storage cannot be mutated)\n",
                 what);
    std::abort();
  }

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  const float* external_ = nullptr;
};

/// A model parameter with a stable name (used by checkpoints and the
/// optimizer's state book-keeping).
struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

}  // namespace kgfd

#endif  // KGFD_KGE_TENSOR_H_
