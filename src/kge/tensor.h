#ifndef KGFD_KGE_TENSOR_H_
#define KGFD_KGE_TENSOR_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace kgfd {

/// Dense row-major float matrix. The parameter container for every KGE
/// model: embedding tables (rows = entities/relations), convolution filter
/// banks, dense projection weights, bias vectors. Deliberately minimal — all
/// model math is written against raw rows, keeping gradients analytic and
/// dependency-free.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Uniform init in [lo, hi).
  void InitUniform(Rng* rng, float lo, float hi) {
    for (float& v : data_) v = rng->UniformFloat(lo, hi);
  }

  /// Glorot/Xavier uniform init with explicit fan sizes. For embedding
  /// tables the convention (LibKGE) is fan_in = fan_out = embedding dim.
  void InitXavierUniform(Rng* rng, size_t fan_in, size_t fan_out) {
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    InitUniform(rng, -bound, bound);
  }

  /// Normal init.
  void InitNormal(Rng* rng, float mean, float stddev) {
    for (float& v : data_) {
      v = static_cast<float>(rng->Normal(mean, stddev));
    }
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// A model parameter with a stable name (used by checkpoints and the
/// optimizer's state book-keeping).
struct NamedTensor {
  std::string name;
  Tensor* tensor;
};

}  // namespace kgfd

#endif  // KGFD_KGE_TENSOR_H_
