#include "graph/metrics.h"

#include <algorithm>

namespace kgfd {
namespace {

/// Number of elements in the sorted ranges' intersection.
size_t SortedIntersectionSize(const EntityId* a_begin, const EntityId* a_end,
                              const EntityId* b_begin, const EntityId* b_end,
                              EntityId exclude) {
  size_t count = 0;
  while (a_begin != a_end && b_begin != b_end) {
    if (*a_begin < *b_begin) {
      ++a_begin;
    } else if (*b_begin < *a_begin) {
      ++b_begin;
    } else {
      if (*a_begin != exclude) ++count;
      ++a_begin;
      ++b_begin;
    }
  }
  return count;
}

}  // namespace

std::vector<uint64_t> LocalTriangleCounts(const Adjacency& adj) {
  const size_t n = adj.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  for (EntityId u = 0; u < n; ++u) {
    const EntityId* u_begin = adj.NeighborsBegin(u);
    const EntityId* u_end = adj.NeighborsEnd(u);
    for (const EntityId* vp = u_begin; vp != u_end; ++vp) {
      const EntityId v = *vp;
      if (v <= u) continue;  // enumerate each edge once, u < v
      // Common neighbors w > v close a triangle {u, v, w} counted once.
      const EntityId* a = std::upper_bound(u_begin, u_end, v);
      const EntityId* b =
          std::upper_bound(adj.NeighborsBegin(v), adj.NeighborsEnd(v), v);
      const EntityId* b_end = adj.NeighborsEnd(v);
      while (a != u_end && b != b_end) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          ++counts[u];
          ++counts[v];
          ++counts[*a];
          ++a;
          ++b;
        }
      }
    }
  }
  return counts;
}

std::vector<double> LocalClusteringCoefficients(
    const Adjacency& adj, const std::vector<uint64_t>& triangles) {
  const size_t n = adj.num_nodes();
  std::vector<double> c(n, 0.0);
  for (EntityId v = 0; v < n; ++v) {
    const double deg = static_cast<double>(adj.Degree(v));
    if (deg >= 2.0) {
      c[v] = 2.0 * static_cast<double>(triangles[v]) / (deg * (deg - 1.0));
    }
  }
  return c;
}

std::vector<double> LocalClusteringCoefficients(const Adjacency& adj) {
  return LocalClusteringCoefficients(adj, LocalTriangleCounts(adj));
}

double AverageClusteringCoefficient(const Adjacency& adj) {
  const std::vector<double> c = LocalClusteringCoefficients(adj);
  if (c.empty()) return 0.0;
  double sum = 0.0;
  for (double v : c) sum += v;
  return sum / static_cast<double>(c.size());
}

std::vector<double> SquareClusteringCoefficients(const Adjacency& adj) {
  // Zhang et al. (2008) as implemented by NetworkX square_clustering: for
  // each pair (u, w) of neighbors of v, q = |N(u) ∩ N(w) \ {v}| squares are
  // closed, against a potential of (k_u - degm) + (k_w - degm) + q where
  // degm = q + 1 + [u ~ w].
  const size_t n = adj.num_nodes();
  std::vector<double> c4(n, 0.0);
  for (EntityId v = 0; v < n; ++v) {
    const EntityId* nv_begin = adj.NeighborsBegin(v);
    const EntityId* nv_end = adj.NeighborsEnd(v);
    double closed = 0.0;
    double potential = 0.0;
    for (const EntityId* up = nv_begin; up != nv_end; ++up) {
      for (const EntityId* wp = up + 1; wp != nv_end; ++wp) {
        const EntityId u = *up;
        const EntityId w = *wp;
        const double q = static_cast<double>(SortedIntersectionSize(
            adj.NeighborsBegin(u), adj.NeighborsEnd(u),
            adj.NeighborsBegin(w), adj.NeighborsEnd(w), v));
        double degm = q + 1.0;
        if (adj.HasEdge(u, w)) degm += 1.0;
        closed += q;
        potential += (static_cast<double>(adj.Degree(u)) - degm) +
                     (static_cast<double>(adj.Degree(w)) - degm) + q;
      }
    }
    if (potential > 0.0) c4[v] = closed / potential;
  }
  return c4;
}

std::vector<uint64_t> Degrees(const Adjacency& adj) {
  std::vector<uint64_t> deg(adj.num_nodes());
  for (EntityId v = 0; v < adj.num_nodes(); ++v) deg[v] = adj.Degree(v);
  return deg;
}

namespace reference {

std::vector<uint64_t> LocalTriangleCountsBruteForce(const Adjacency& adj) {
  // Direct transcription of the definition: T(v) = |{(u, w) ⊆ N(v) : u~w}|.
  const size_t n = adj.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  for (EntityId v = 0; v < n; ++v) {
    for (const EntityId* up = adj.NeighborsBegin(v);
         up != adj.NeighborsEnd(v); ++up) {
      for (const EntityId* wp = up + 1; wp != adj.NeighborsEnd(v); ++wp) {
        if (adj.HasEdge(*up, *wp)) ++counts[v];
      }
    }
  }
  return counts;
}

std::vector<double> SquareClusteringCoefficientsBruteForce(
    const Adjacency& adj) {
  // Counts 4-cycles through v directly: v - u - x - w - v with u != w,
  // x != v; each square is found twice per (u, w) unordered pair, so the
  // per-pair counting below matches the formula's q_v(u, w).
  const size_t n = adj.num_nodes();
  std::vector<double> c4(n, 0.0);
  for (EntityId v = 0; v < n; ++v) {
    double closed = 0.0;
    double potential = 0.0;
    for (const EntityId* up = adj.NeighborsBegin(v);
         up != adj.NeighborsEnd(v); ++up) {
      for (const EntityId* wp = up + 1; wp != adj.NeighborsEnd(v); ++wp) {
        const EntityId u = *up;
        const EntityId w = *wp;
        double q = 0.0;
        for (const EntityId* xp = adj.NeighborsBegin(u);
             xp != adj.NeighborsEnd(u); ++xp) {
          if (*xp != v && adj.HasEdge(*xp, w)) q += 1.0;
        }
        double degm = q + 1.0;
        if (adj.HasEdge(u, w)) degm += 1.0;
        closed += q;
        potential += (static_cast<double>(adj.Degree(u)) - degm) +
                     (static_cast<double>(adj.Degree(w)) - degm) + q;
      }
    }
    if (potential > 0.0) c4[v] = closed / potential;
  }
  return c4;
}

}  // namespace reference
}  // namespace kgfd
