#include "graph/pagerank.h"

#include <cmath>

namespace kgfd {

std::vector<double> PageRank(const Adjacency& adj,
                             const PageRankOptions& options) {
  const size_t n = adj.num_nodes();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);
  for (size_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Mass from degree-0 nodes is redistributed uniformly.
    double dangling = 0.0;
    for (EntityId v = 0; v < n; ++v) {
      if (adj.Degree(v) == 0) dangling += rank[v];
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling * uniform;
    std::fill(next.begin(), next.end(), base);
    for (EntityId v = 0; v < n; ++v) {
      const size_t degree = adj.Degree(v);
      if (degree == 0) continue;
      const double share =
          options.damping * rank[v] / static_cast<double>(degree);
      for (const EntityId* u = adj.NeighborsBegin(v);
           u != adj.NeighborsEnd(v); ++u) {
        next[*u] += share;
      }
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace kgfd
