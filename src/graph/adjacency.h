#ifndef KGFD_GRAPH_ADJACENCY_H_
#define KGFD_GRAPH_ADJACENCY_H_

#include <cstddef>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"

namespace kgfd {

/// Undirected homogeneous projection of a KG, as assumed by the paper's
/// triangle/clustering/square strategies: relation labels and edge
/// directions are dropped, parallel edges collapse, self-loops are removed.
/// Neighbor lists are sorted and duplicate-free (CSR layout), enabling
/// merge-based triangle counting.
class Adjacency {
 public:
  /// Builds the projection of `store` over all its entities.
  static Adjacency FromTripleStore(const TripleStore& store);

  /// Builds from an explicit undirected edge list over `num_nodes` nodes
  /// (used by tests and the synthetic generator's diagnostics). Self-loops
  /// and duplicates are dropped.
  static Adjacency FromEdges(size_t num_nodes,
                             const std::vector<std::pair<EntityId, EntityId>>&
                                 edges);

  size_t num_nodes() const { return offsets_.size() - 1; }
  size_t num_edges() const { return neighbor_ids_.size() / 2; }

  /// Undirected degree of `v` (number of distinct neighbors).
  size_t Degree(EntityId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted distinct neighbors of `v`.
  const EntityId* NeighborsBegin(EntityId v) const {
    return neighbor_ids_.data() + offsets_[v];
  }
  const EntityId* NeighborsEnd(EntityId v) const {
    return neighbor_ids_.data() + offsets_[v + 1];
  }

  /// Binary-search membership test.
  bool HasEdge(EntityId u, EntityId v) const;

 private:
  Adjacency() = default;

  std::vector<size_t> offsets_;      // num_nodes + 1
  std::vector<EntityId> neighbor_ids_;
};

}  // namespace kgfd

#endif  // KGFD_GRAPH_ADJACENCY_H_
