#include "graph/adjacency.h"

#include <algorithm>

namespace kgfd {

Adjacency Adjacency::FromTripleStore(const TripleStore& store) {
  std::vector<std::pair<EntityId, EntityId>> pairs;
  pairs.reserve(store.size());
  for (const Triple& t : store.triples()) {
    if (t.subject != t.object) pairs.emplace_back(t.subject, t.object);
  }
  return FromEdges(store.num_entities(), pairs);
}

Adjacency Adjacency::FromEdges(
    size_t num_nodes,
    const std::vector<std::pair<EntityId, EntityId>>& edges) {
  // Symmetrize, drop self-loops, sort, dedupe, then pack as CSR.
  std::vector<std::pair<EntityId, EntityId>> sym;
  sym.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    if (u == v || u >= num_nodes || v >= num_nodes) continue;
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  Adjacency adj;
  adj.offsets_.assign(num_nodes + 1, 0);
  adj.neighbor_ids_.reserve(sym.size());
  for (const auto& [u, v] : sym) ++adj.offsets_[u + 1];
  for (size_t i = 1; i <= num_nodes; ++i) {
    adj.offsets_[i] += adj.offsets_[i - 1];
  }
  adj.neighbor_ids_.resize(sym.size());
  std::vector<size_t> cursor(adj.offsets_.begin(), adj.offsets_.end() - 1);
  for (const auto& [u, v] : sym) adj.neighbor_ids_[cursor[u]++] = v;
  return adj;
}

bool Adjacency::HasEdge(EntityId u, EntityId v) const {
  if (u >= num_nodes()) return false;
  return std::binary_search(NeighborsBegin(u), NeighborsEnd(u), v);
}

}  // namespace kgfd
