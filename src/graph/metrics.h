#ifndef KGFD_GRAPH_METRICS_H_
#define KGFD_GRAPH_METRICS_H_

#include <vector>

#include "graph/adjacency.h"
#include "kg/types.h"

namespace kgfd {

/// Per-node local triangle counts T(v): the number of edges among the
/// neighbors of v in the undirected projection. Merge-based counting over
/// sorted neighbor lists; each triangle {u,v,w} contributes 1 to each of its
/// three corners.
std::vector<uint64_t> LocalTriangleCounts(const Adjacency& adj);

/// Per-node local clustering coefficient (Watts-Strogatz):
///   c(v) = 2 T(v) / (deg(v) (deg(v) - 1)), and 0 when deg(v) < 2.
std::vector<double> LocalClusteringCoefficients(const Adjacency& adj);

/// Same, reusing precomputed triangle counts.
std::vector<double> LocalClusteringCoefficients(
    const Adjacency& adj, const std::vector<uint64_t>& triangles);

/// Mean of the local clustering coefficients over all nodes — the dataset
/// density measure the paper's Fig. 3 reports (red line).
double AverageClusteringCoefficient(const Adjacency& adj);

/// Per-node square (4-cycle) clustering coefficient of Zhang et al. (2008),
/// the weight source of CLUSTERING_SQUARES. Deliberately follows the
/// paper's formula directly (pairwise neighbor enumeration), which is the
/// reason the strategy is orders of magnitude slower — the behaviour the
/// paper reports when excluding it.
std::vector<double> SquareClusteringCoefficients(const Adjacency& adj);

/// Undirected degrees deg(v), the weight source of GRAPH_DEGREE.
std::vector<uint64_t> Degrees(const Adjacency& adj);

namespace reference {

/// O(n^3)-ish brute-force implementations used only by the property tests.
std::vector<uint64_t> LocalTriangleCountsBruteForce(const Adjacency& adj);
std::vector<double> SquareClusteringCoefficientsBruteForce(
    const Adjacency& adj);

}  // namespace reference

}  // namespace kgfd

#endif  // KGFD_GRAPH_METRICS_H_
