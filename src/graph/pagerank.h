#ifndef KGFD_GRAPH_PAGERANK_H_
#define KGFD_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/adjacency.h"

namespace kgfd {

struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 100;
  /// Stop when the L1 change between iterations drops below this.
  double tolerance = 1e-10;
};

/// PageRank over the undirected homogeneous projection (each edge walks
/// both ways). Isolated nodes receive only teleport mass. Scores sum to 1.
/// Backs the PAGERANK sampling strategy — a smoother popularity metric
/// than raw degree, in the family the paper finds effective.
std::vector<double> PageRank(const Adjacency& adj,
                             const PageRankOptions& options = {});

}  // namespace kgfd

#endif  // KGFD_GRAPH_PAGERANK_H_
