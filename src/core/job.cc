#include "core/job.h"

#include "kg/io.h"
#include "kg/synthetic.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace kgfd {

Result<JobSpec> JobSpec::FromConfig(const ConfigFile& config) {
  JobSpec spec;
  spec.dataset_preset =
      config.GetString("dataset.preset", spec.dataset_preset);
  spec.dataset_dir = config.GetString("dataset.dir", "");
  KGFD_ASSIGN_OR_RETURN(
      const double scale,
      config.GetDouble("dataset.scale", spec.dataset_scale));
  spec.dataset_scale = scale;

  KGFD_ASSIGN_OR_RETURN(spec.model,
                        ModelKindFromName(config.GetString(
                            "model.type", ModelKindName(spec.model))));
  KGFD_ASSIGN_OR_RETURN(
      const int64_t dim,
      config.GetInt("model.dim", static_cast<int64_t>(spec.embedding_dim)));
  spec.embedding_dim = static_cast<size_t>(dim);

  KGFD_ASSIGN_OR_RETURN(const int64_t epochs,
                        config.GetInt("train.epochs", 25));
  spec.trainer.epochs = static_cast<size_t>(epochs);
  KGFD_ASSIGN_OR_RETURN(const int64_t batch,
                        config.GetInt("train.batch_size", 128));
  spec.trainer.batch_size = static_cast<size_t>(batch);
  KGFD_ASSIGN_OR_RETURN(spec.trainer.optimizer.learning_rate,
                        config.GetDouble("train.lr", 0.03));
  const std::string default_loss =
      spec.model == ModelKind::kTransE ? "margin_ranking" : "softplus";
  KGFD_ASSIGN_OR_RETURN(
      spec.trainer.loss,
      LossKindFromName(config.GetString("train.loss", default_loss)));
  KGFD_ASSIGN_OR_RETURN(const int64_t negatives,
                        config.GetInt("train.negatives", 2));
  spec.trainer.negatives_per_positive = static_cast<size_t>(negatives);
  const std::string mode =
      config.GetString("train.mode", "negative_sampling");
  if (mode == "negative_sampling") {
    spec.trainer.training_mode = TrainingMode::kNegativeSampling;
  } else if (mode == "1vsAll") {
    spec.trainer.training_mode = TrainingMode::k1vsAll;
  } else {
    return Status::InvalidArgument("unknown train.mode: " + mode);
  }
  KGFD_ASSIGN_OR_RETURN(const bool bernoulli,
                        config.GetBool("train.bernoulli", false));
  spec.trainer.corruption_scheme = bernoulli
                                       ? CorruptionScheme::kBernoulli
                                       : CorruptionScheme::kUniform;

  KGFD_ASSIGN_OR_RETURN(spec.run_eval,
                        config.GetBool("eval.enabled", true));
  KGFD_ASSIGN_OR_RETURN(spec.run_discovery,
                        config.GetBool("discovery.enabled", true));
  KGFD_ASSIGN_OR_RETURN(
      spec.discovery.strategy,
      SamplingStrategyFromName(config.GetString(
          "discovery.strategy",
          SamplingStrategyName(DefaultSamplingStrategy()))));
  KGFD_ASSIGN_OR_RETURN(const int64_t top_n,
                        config.GetInt("discovery.top_n", 500));
  spec.discovery.top_n = static_cast<size_t>(top_n);
  KGFD_ASSIGN_OR_RETURN(const int64_t max_candidates,
                        config.GetInt("discovery.max_candidates", 500));
  spec.discovery.max_candidates = static_cast<size_t>(max_candidates);
  KGFD_ASSIGN_OR_RETURN(spec.discovery.type_filter,
                        config.GetBool("discovery.type_filter", false));
  KGFD_ASSIGN_OR_RETURN(
      const int64_t max_cand_mem,
      config.GetInt("discovery.max_candidate_memory_bytes",
                    static_cast<int64_t>(
                        spec.discovery.max_candidate_memory_bytes)));
  if (max_cand_mem <= 0) {
    return Status::InvalidArgument(
        "discovery.max_candidate_memory_bytes must be > 0");
  }
  spec.discovery.max_candidate_memory_bytes =
      static_cast<size_t>(max_cand_mem);
  KGFD_ASSIGN_OR_RETURN(
      const int64_t adaptive_rounds,
      config.GetInt("discovery.adaptive_rounds",
                    static_cast<int64_t>(spec.discovery.adaptive_rounds)));
  if (adaptive_rounds <= 0) {
    return Status::InvalidArgument("discovery.adaptive_rounds must be > 0");
  }
  spec.discovery.adaptive_rounds = static_cast<size_t>(adaptive_rounds);
  KGFD_ASSIGN_OR_RETURN(spec.discovery.adaptive_exploration,
                        config.GetDouble("discovery.adaptive_exploration",
                                         spec.discovery.adaptive_exploration));
  if (!(spec.discovery.adaptive_exploration >= 0.0)) {
    return Status::InvalidArgument(
        "discovery.adaptive_exploration must be >= 0");
  }

  KGFD_ASSIGN_OR_RETURN(const int64_t seed, config.GetInt("seed", 42));
  spec.seed = static_cast<uint64_t>(seed);
  spec.trainer.seed = spec.seed;
  spec.discovery.seed = spec.seed ^ 0x5851F42D4C957F2DULL;

  const std::vector<std::string> unknown = config.UnconsumedKeys();
  if (!unknown.empty()) {
    return Status::InvalidArgument("unknown config key: " + unknown.front());
  }
  return spec;
}

Result<JobResult> RunJob(const JobSpec& spec) {
  JobResult result;

  // Dataset.
  KGFD_RETURN_NOT_OK(spec.cancel.Check("job (before dataset phase)"));
  KGFD_FAIL_POINT(kFailPointJobDataset);
  if (!spec.dataset_dir.empty()) {
    KGFD_ASSIGN_OR_RETURN(Dataset loaded,
                          LoadDatasetDir(spec.dataset_dir,
                                         spec.dataset_dir));
    result.dataset = std::make_unique<Dataset>(std::move(loaded));
  } else {
    SyntheticConfig dataset_config;
    bool found = false;
    for (const SyntheticConfig& c :
         AllDatasetConfigs(spec.dataset_scale, spec.seed)) {
      if (c.name == spec.dataset_preset) {
        dataset_config = c;
        found = true;
      }
    }
    if (!found) {
      return Status::NotFound("unknown dataset preset: " +
                              spec.dataset_preset);
    }
    KGFD_ASSIGN_OR_RETURN(Dataset generated,
                          GenerateSyntheticDataset(dataset_config));
    result.dataset = std::make_unique<Dataset>(std::move(generated));
  }
  result.dataset_name = result.dataset->name();
  KGFD_LOG(Debug) << "job dataset " << result.dataset_name << ": "
                  << result.dataset->train().size() << " train triples";

  // Model + training.
  KGFD_RETURN_NOT_OK(spec.cancel.Check("job (before train phase)"));
  KGFD_FAIL_POINT(kFailPointJobTrain);
  ModelConfig model_config;
  model_config.num_entities = result.dataset->num_entities();
  model_config.num_relations = result.dataset->num_relations();
  model_config.embedding_dim = spec.embedding_dim;
  TrainerConfig trainer_config = spec.trainer;
  if (spec.metrics != nullptr) trainer_config.metrics = spec.metrics;
  trainer_config.cancel = spec.cancel;
  KGFD_ASSIGN_OR_RETURN(result.model,
                        TrainModel(spec.model, model_config,
                                   result.dataset->train(),
                                   trainer_config));

  // Evaluation.
  if (spec.run_eval) {
    KGFD_RETURN_NOT_OK(spec.cancel.Check("job (before eval phase)"));
    KGFD_FAIL_POINT(kFailPointJobEval);
    EvalConfig eval_config;
    eval_config.metrics = spec.metrics;
    eval_config.cancel = spec.cancel;
    KGFD_ASSIGN_OR_RETURN(
        result.test_metrics,
        EvaluateLinkPrediction(*result.model, *result.dataset,
                               result.dataset->test(), eval_config));
  }

  // Discovery.
  if (spec.run_discovery) {
    KGFD_RETURN_NOT_OK(spec.cancel.Check("job (before discovery phase)"));
    KGFD_FAIL_POINT(kFailPointJobDiscovery);
    DiscoveryOptions discovery_options = spec.discovery;
    if (spec.metrics != nullptr) discovery_options.metrics = spec.metrics;
    discovery_options.cancel = spec.cancel;
    KGFD_ASSIGN_OR_RETURN(result.discovery,
                          DiscoverFacts(*result.model,
                                        result.dataset->train(),
                                        discovery_options));
  }
  return result;
}

}  // namespace kgfd
