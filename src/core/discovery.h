#ifndef KGFD_CORE_DISCOVERY_H_
#define KGFD_CORE_DISCOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "kg/triple_store.h"
#include "kg/types.h"
#include "kge/model.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace kgfd {

class DiscoveryCache;
class MetricsRegistry;

/// Metric names DiscoverFacts populates when DiscoveryOptions::metrics is
/// set (see src/obs/). The three span histograms partition the per-relation
/// work into disjoint phases, so their sums line up with the corresponding
/// DiscoveryStats fields.
inline constexpr char kDiscoveryWeightsSpan[] = "discovery.weights.seconds";
inline constexpr char kDiscoveryGenerationSpan[] =
    "discovery.generation.seconds";
inline constexpr char kDiscoveryRankingSpan[] = "discovery.ranking.seconds";
inline constexpr char kDiscoveryCandidatesCounter[] =
    "discovery.candidates.generated";
inline constexpr char kDiscoveryFactsCounter[] = "discovery.facts.kept";
inline constexpr char kDiscoveryScoreCacheHits[] =
    "discovery.score_cache.hits";
inline constexpr char kDiscoveryScoreCacheMisses[] =
    "discovery.score_cache.misses";
inline constexpr char kDiscoveryRelationsCounter[] =
    "discovery.relations.processed";
// ADAPTIVE strategy metrics live in adaptive/scheduler.h
// (adaptive.rounds, adaptive.budget.<strategy>, adaptive.reward.<strategy>,
// adaptive.cost.<strategy>).

/// How the two side ranks of a candidate collapse into the single rank the
/// paper's Algorithm 1 filters on.
enum class RankAggregation { kMean, kMin, kMax };

struct RelationCompletion;       // defined below, after DiscoveredFact
struct AdaptiveRoundCompletion;  // defined below, after DiscoveredFact
struct AdaptiveResumeState;      // defined below, after DiscoveredFact

/// Hyperparameters of the Discover Facts algorithm (paper Algorithm 1).
struct DiscoveryOptions {
  /// Candidates ranking worse than this against their corruptions are
  /// dropped (the paper's quality threshold; its experiments use 500).
  size_t top_n = 500;
  /// Maximum number of candidates generated per relation.
  size_t max_candidates = 500;
  SamplingStrategy strategy = SamplingStrategy::kEntityFrequency;
  /// Relations to discover facts for; empty = every relation used in the KG
  /// (Algorithm 1 line 3).
  std::vector<RelationId> relations;
  /// Generation retries per relation; the paper fixes this at 5.
  size_t max_iterations = 5;
  /// Exclude known-true corruptions when ranking (standard filtered
  /// protocol).
  bool filtered_ranking = true;
  /// Faithful mode (false) recomputes strategy weights inside the relation
  /// loop exactly like Algorithm 1 line 7; true computes them once — the
  /// weight-caching ablation.
  bool cache_weights = false;
  RankAggregation rank_aggregation = RankAggregation::kMean;
  /// CHAI-style rule filter (see core/type_filter.h): drop generated
  /// candidates whose subject/object fall outside the relation's observed
  /// domain/range. An extension beyond the paper's Algorithm 1, motivated
  /// by its §5.1 discussion of rule-based candidate filtering.
  bool type_filter = false;
  uint64_t seed = 123;
  /// ADAPTIVE only: number of bandit rounds the per-relation max_candidates
  /// budget is split into (adaptive/scheduler.h). More rounds give the
  /// bandit more reallocation opportunities at the cost of smaller (noisier)
  /// per-round reward samples.
  size_t adaptive_rounds = 8;
  /// ADAPTIVE only: the UCB1 exploration constant c. 0 is pure greedy after
  /// the forced first pass over the arms; larger values spread budget wider.
  double adaptive_exploration = 0.5;
  /// ADAPTIVE only: per-relation round history restored from a resume
  /// manifest. Relations with restored rounds replay them (bit-identical,
  /// no re-ranking) before playing the remaining rounds live. Not a
  /// config-file key; set in code (core/resume.h does).
  const AdaptiveResumeState* adaptive_resume = nullptr;
  /// ADAPTIVE only: invoked after every *live* bandit round, from whichever
  /// thread processes the relation (must be thread-safe under a pool, like
  /// on_relation_complete). Replayed rounds do not re-fire it. The
  /// round-level checkpoint seam the resume layer persists. Not a
  /// config-file key; set in code.
  std::function<void(AdaptiveRoundCompletion&&)> on_round_complete;
  /// When set, per-phase latency histograms and candidate/fact/score-cache
  /// counters are recorded here (metric names above). Null disables all
  /// instrumentation at zero cost.
  MetricsRegistry* metrics = nullptr;
  /// Cooperative stop signal: an optional CancellationToken and/or Deadline
  /// observed at per-relation and per-ranking-chunk checkpoints. Stopping is
  /// graceful degradation, not an error — DiscoverFacts returns the facts of
  /// every relation that completed before the stop, with
  /// DiscoveryResult::stopped_reason saying why the sweep ended early.
  /// Relations are all-or-nothing: one interrupted mid-ranking contributes
  /// no facts and no on_relation_complete call, so a later resume reproduces
  /// its facts bit-identically. Not a config-file key; set it in code.
  CancelContext cancel;
  /// Upper bound on the estimated per-relation transient memory of candidate
  /// generation + ranking (sample vectors, mesh-grid candidates, dedup set,
  /// rank slots). Guards against max_candidates values whose sample_size^2
  /// mesh-grid would overflow or allocate absurdly; exceeding it fails fast
  /// with InvalidArgument before anything is allocated.
  size_t max_candidate_memory_bytes = size_t{1} << 30;  // 1 GiB
  /// Cross-run cache of strategy weights and side-score entries (see
  /// core/discovery_cache.h). Must belong to the same (model, KG) pair as
  /// this run — the owner keys caches by model/KG fingerprint. Because every
  /// cached artifact is a deterministic function of (model, KG), a run with
  /// a warm cache produces bit-identical facts to a cold one. When set, the
  /// weights phase always serves from the cache (one computation per
  /// strategy), so cache_weights=false loses its recompute-per-relation
  /// semantics; the faithful-timing ablation should not pass a shared
  /// cache. Not a config-file key; set it in code.
  DiscoveryCache* shared_cache = nullptr;
  /// Invoked once per relation immediately after its facts are final,
  /// from whichever thread processed the relation — the callback must be
  /// thread-safe when a pool is used. Completion order is unspecified under
  /// a pool; RelationCompletion::index ties each call back to the run's
  /// relation order. Not a config-file key; set it in code.
  std::function<void(RelationCompletion&&)> on_relation_complete;
};

/// One discovered fact: a triple absent from the KG that the model ranks
/// within top_n.
struct DiscoveredFact {
  Triple triple;
  /// Aggregated rank (per DiscoveryOptions::rank_aggregation).
  double rank = 0.0;
  double subject_rank = 0.0;
  double object_rank = 0.0;
};

/// Everything DiscoverFacts knows about one finished relation, handed to
/// DiscoveryOptions::on_relation_complete (the checkpoint seam the resume
/// layer in core/resume.h persists after every relation).
struct RelationCompletion {
  RelationId relation = 0;
  /// Position of the relation in the run's relation order.
  size_t index = 0;
  size_t num_candidates = 0;
  std::vector<DiscoveredFact> facts;
};

/// One finished ADAPTIVE bandit round of one relation — the round-level
/// checkpoint unit. `arm` is the canonical SamplingStrategyName of the
/// strategy the scheduler granted the round to; on resume the scheduler is
/// replayed and must re-derive the same arm, which pins the replay to the
/// original allocation sequence.
struct AdaptiveRoundRecord {
  size_t round = 0;
  std::string arm;
  size_t num_candidates = 0;
  std::vector<DiscoveredFact> facts;
};

/// Round history restored from a resume manifest, keyed by relation.
/// Relations present here were interrupted mid-relation; their recorded
/// rounds are replayed without re-ranking, then the remaining rounds run
/// live.
struct AdaptiveResumeState {
  std::map<RelationId, std::vector<AdaptiveRoundRecord>> rounds;
};

/// Payload of DiscoveryOptions::on_round_complete: one live round plus the
/// identity of the relation it belongs to.
struct AdaptiveRoundCompletion {
  RelationId relation = 0;
  /// Position of the relation in the run's relation order.
  size_t index = 0;
  AdaptiveRoundRecord record;
};

/// Phase-split accounting of one discovery run. The three phase fields are
/// disjoint (weights are *not* folded into generation), so
/// weight + generation + evaluation never double-counts any interval and
/// sums to at most total_seconds on a serial run.
struct DiscoveryStats {
  double total_seconds = 0.0;
  /// Candidate sampling + mesh-grid + dedup/filtering (excluding the
  /// strategy weight computation, reported separately below).
  double generation_seconds = 0.0;
  /// compute_weights(): strategy weight computation + sampler builds.
  double weight_seconds = 0.0;
  /// Candidate ranking against corruptions.
  double evaluation_seconds = 0.0;
  size_t num_candidates = 0;
  size_t num_facts = 0;
  size_t num_relations_processed = 0;
  /// Relations not processed because the run stopped early (cancellation or
  /// deadline); always 0 when stopped_reason is kNone.
  size_t num_relations_skipped = 0;

  /// The paper's efficiency metric: discovered facts per hour of total
  /// runtime.
  double FactsPerHour() const {
    return total_seconds > 0.0
               ? static_cast<double>(num_facts) / (total_seconds / 3600.0)
               : 0.0;
  }
};

struct DiscoveryResult {
  std::vector<DiscoveredFact> facts;
  DiscoveryStats stats;
  /// kNone when the sweep ran to completion; otherwise why it stopped
  /// early. A stopped run is still a *successful* run — `facts` holds every
  /// relation that completed before the stop.
  StoppedReason stopped_reason = StoppedReason::kNone;
};

/// Mean reciprocal rank of the discovered facts — the paper's quality
/// metric (Eq. 7). Zero when no facts were found.
double DiscoveryMrr(const std::vector<DiscoveredFact>& facts);

/// Fraction of discovered facts touching a long-tail entity: an entity
/// whose undirected degree in `kg` is <= the `quantile` degree over
/// connected entities. The coverage metric of the exploration-strategy
/// extension (the paper's §6 observes that popularity-based sampling
/// "leaves out long-tail entities where the need for discovering new facts
/// is higher"). Zero if no facts.
double LongTailShare(const std::vector<DiscoveredFact>& facts,
                     const TripleStore& kg, double quantile = 0.5);

class ThreadPool;

/// Validates the hyperparameters of `options` against `kg`: top_n /
/// max_candidates / max_iterations must be positive, every explicit relation
/// id must exist in the KG, and the mesh-grid transient-memory estimate must
/// fit under max_candidate_memory_bytes. DiscoverFacts runs this first;
/// entry points that may skip the sweep entirely (DiscoverFactsResumable
/// with a fully-done manifest, the job server at admission time) call it
/// directly so invalid options never read as success.
Status ValidateDiscoveryOptions(const DiscoveryOptions& options,
                                const TripleStore& kg);

/// The Discover Facts algorithm (paper Algorithm 1). For each relation:
/// compute strategy weights, sample sqrt(max_candidates)+10 subjects and
/// objects, mesh-grid them into candidates, drop triples already in `kg`,
/// repeat (<= max_iterations) until max_candidates candidates exist, rank
/// each candidate against its corruptions with `model`, and keep those with
/// aggregated rank <= top_n.
///
/// Parallelism is two-level on `pool`: relations fan out across workers,
/// and *within* each relation the ranking phase fans out again — scoring
/// passes over distinct (s, r)/(r, o) pairs and per-candidate rank
/// computations run as nested ParallelFor loops (safe because waits are
/// TaskGroup-scoped). A job targeting a single hot relation therefore
/// still uses every worker.
///
/// Each relation draws from its own seed-derived RNG stream and ranks land
/// in fixed per-candidate slots, so the output is bit-identical in
/// options.seed for every thread count, including the serial path
/// (pool == nullptr). Under a pool, the per-phase stats are summed across
/// concurrently-processed relations and may exceed total_seconds (wall
/// clock).
///
/// options.cancel makes the sweep stoppable: checkpoints at relation
/// boundaries and between ranking chunks observe the token/deadline, workers
/// stop claiming work within one chunk's latency, and the call returns OK
/// with the completed relations' facts and a non-kNone
/// DiscoveryResult::stopped_reason. The `discovery.cancel` failpoint site is
/// evaluated at the same checkpoints, so tests can inject Cancelled /
/// DeadlineExceeded to drive this path deterministically.
Result<DiscoveryResult> DiscoverFacts(const Model& model,
                                      const TripleStore& kg,
                                      const DiscoveryOptions& options,
                                      ThreadPool* pool = nullptr);

}  // namespace kgfd

#endif  // KGFD_CORE_DISCOVERY_H_
