#include "core/experiment.h"

#include "util/logging.h"

namespace kgfd {

TrainerConfig DefaultTrainerConfig(ModelKind kind,
                                   const ExperimentConfig& config) {
  TrainerConfig t;
  t.epochs = config.epochs;
  t.batch_size = config.batch_size;
  t.negatives_per_positive = config.negatives_per_positive;
  t.optimizer.kind = OptimizerKind::kAdam;  // the paper trains with Adam
  t.optimizer.learning_rate = config.learning_rate;
  t.seed = config.seed;
  switch (kind) {
    case ModelKind::kTransE:
      t.loss = LossKind::kMarginRanking;
      t.margin = 1.0;
      break;
    case ModelKind::kConvE:
      t.loss = LossKind::kBinaryCrossEntropy;
      break;
    default:
      t.loss = LossKind::kSoftplus;
      break;
  }
  return t;
}

ModelConfig DefaultModelConfig(ModelKind kind, const Dataset& dataset,
                               const ExperimentConfig& config) {
  ModelConfig m;
  m.num_entities = dataset.num_entities();
  m.num_relations = dataset.num_relations();
  m.embedding_dim = config.embedding_dim;
  if (kind == ModelKind::kComplEx && m.embedding_dim % 2 != 0) {
    ++m.embedding_dim;
  }
  if (kind == ModelKind::kConvE) {
    // Keep the reshape valid: height 4 needs width >= 3.
    m.conve_reshape_height = 4;
    while (m.embedding_dim % m.conve_reshape_height != 0 ||
           m.embedding_dim / m.conve_reshape_height < 3) {
      ++m.embedding_dim;
    }
    m.conve_num_filters = 6;
  }
  if (kind == ModelKind::kRescal && m.embedding_dim > 24) {
    m.embedding_dim = 24;  // dim^2 relation matrices; cap the blow-up
  }
  return m;
}

Result<std::vector<TrainedModel>> TrainAllModels(
    const Dataset& dataset, const ExperimentConfig& config) {
  std::vector<TrainedModel> out;
  out.reserve(config.models.size());
  for (ModelKind kind : config.models) {
    const ModelConfig model_config =
        DefaultModelConfig(kind, dataset, config);
    const TrainerConfig trainer_config = DefaultTrainerConfig(kind, config);
    KGFD_LOG(Debug) << "training " << ModelKindName(kind) << " on "
                    << dataset.name();
    KGFD_ASSIGN_OR_RETURN(auto model,
                          TrainModel(kind, model_config, dataset.train(),
                                     trainer_config));
    out.push_back(TrainedModel{kind, std::move(model)});
  }
  return out;
}

Result<std::vector<ExperimentCell>> RunGridOnDataset(
    const Dataset& dataset, const ExperimentConfig& config) {
  KGFD_ASSIGN_OR_RETURN(auto models, TrainAllModels(dataset, config));
  std::vector<SamplingStrategy> strategies = config.strategies;
  if (config.include_adaptive) {
    strategies.push_back(SamplingStrategy::kModelScore);
    strategies.push_back(SamplingStrategy::kAdaptive);
  }
  std::vector<ExperimentCell> cells;
  cells.reserve(models.size() * strategies.size());
  for (const TrainedModel& tm : models) {
    for (SamplingStrategy strategy : strategies) {
      DiscoveryOptions options = config.discovery;
      options.strategy = strategy;
      options.seed = config.seed ^ (static_cast<uint64_t>(strategy) << 8) ^
                     static_cast<uint64_t>(tm.kind);
      KGFD_ASSIGN_OR_RETURN(DiscoveryResult result,
                            DiscoverFacts(*tm.model, dataset.train(),
                                          options));
      ExperimentCell cell;
      cell.dataset = dataset.name();
      cell.model = ModelKindName(tm.kind);
      cell.strategy = SamplingStrategyName(strategy);
      cell.strategy_abbrev = SamplingStrategyAbbrev(strategy);
      cell.stats = result.stats;
      cell.mrr = DiscoveryMrr(result.facts);
      cells.push_back(cell);
      KGFD_LOG(Debug) << dataset.name() << " " << cell.model << " "
                      << cell.strategy << ": facts=" << cell.stats.num_facts
                      << " mrr=" << cell.mrr
                      << " t=" << cell.stats.total_seconds << "s";
    }
  }
  return cells;
}

Result<std::vector<ExperimentCell>> RunComparativeGrid(
    const ExperimentConfig& config) {
  std::vector<ExperimentCell> cells;
  for (const SyntheticConfig& dataset_config :
       AllDatasetConfigs(config.scale, config.seed)) {
    KGFD_ASSIGN_OR_RETURN(Dataset dataset,
                          GenerateSyntheticDataset(dataset_config));
    KGFD_ASSIGN_OR_RETURN(auto dataset_cells,
                          RunGridOnDataset(dataset, config));
    cells.insert(cells.end(), dataset_cells.begin(), dataset_cells.end());
  }
  return cells;
}

}  // namespace kgfd
