#ifndef KGFD_CORE_REPORT_H_
#define KGFD_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/discovery.h"
#include "kg/vocab.h"
#include "util/status.h"

namespace kgfd {

/// Per-relation roll-up of one discovery run — which relations actually
/// yield facts (the discovery loop spends equal budget on every relation,
/// but dense relations dominate the output).
struct RelationDiscoverySummary {
  RelationId relation = 0;
  size_t num_facts = 0;
  double best_rank = 0.0;
  double mean_rank = 0.0;
  double mrr = 0.0;
};

/// Summaries for every relation with at least one discovered fact,
/// ascending by relation id.
std::vector<RelationDiscoverySummary> SummarizeByRelation(
    const std::vector<DiscoveredFact>& facts);

/// Renders discovered facts as `subject<TAB>relation<TAB>object<TAB>rank`
/// lines with names resolved through the vocabularies (ids without names
/// print as decimals). The single source of the facts-TSV byte format:
/// WriteFactsTsv, the CLI and the HTTP server all emit exactly this string,
/// which is what makes their outputs byte-comparable.
std::string FormatFactsTsv(const std::vector<DiscoveredFact>& facts,
                           const Vocabulary& entities,
                           const Vocabulary& relations);

/// Writes FormatFactsTsv output to `path`.
Status WriteFactsTsv(const std::string& path,
                     const std::vector<DiscoveredFact>& facts,
                     const Vocabulary& entities,
                     const Vocabulary& relations);

/// Reads facts written by WriteFactsTsv back (names resolved through, and
/// added to, the vocabularies).
Result<std::vector<DiscoveredFact>> ReadFactsTsv(const std::string& path,
                                                 Vocabulary* entities,
                                                 Vocabulary* relations);

}  // namespace kgfd

#endif  // KGFD_CORE_REPORT_H_
