#ifndef KGFD_CORE_SIDE_SCORE_CACHE_H_
#define KGFD_CORE_SIDE_SCORE_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"
#include "kge/model.h"

namespace kgfd {

class CancelContext;
class ThreadPool;

/// Caches ScoreObjects / ScoreSubjects passes so every mesh-grid candidate
/// sharing an (s, r) or (r, o) pair ranks against one scoring pass. Entries
/// are keyed on (entity, relation) — not the bare entity — so one cache can
/// be reused across relations without serving stale scores.
///
/// Two usage modes:
///  - On-demand: ObjectsEntry / SubjectsEntry compute-and-cache on miss.
///    Single-threaded only.
///  - Precomputed: PrecomputeObjects / PrecomputeSubjects build the entries
///    for a key list up front, scoring kernels::kQueryBlock keys per call
///    through the model's batch API (ScoreObjectsBatch / ScoreSubjectsBatch)
///    and fanning the blocks out on a ThreadPool. Afterwards FindObjects /
///    FindSubjects are read-only and safe to call from many threads
///    concurrently.
class SideScoreCache {
 public:
  struct Entry {
    std::vector<double> scores;
    /// 1 where the entity forms a known-true triple (filtered protocol) and
    /// must not count as a competitor.
    std::vector<char> excluded;
  };

  /// (entity, relation) pairs addressing object-side entries via the
  /// subject, or subject-side entries via the object.
  using Key = std::pair<EntityId, RelationId>;

  /// Scores of (s, r, o') for all o', computing on miss.
  const Entry& ObjectsEntry(const Model& model, const TripleStore& kg,
                            EntityId s, RelationId r, bool filtered);

  /// Scores of (s', r, o) for all s', computing on miss.
  const Entry& SubjectsEntry(const Model& model, const TripleStore& kg,
                             RelationId r, EntityId o, bool filtered);

  /// Builds the object-side entries for `keys` ((subject, relation) pairs),
  /// skipping keys already cached; the scoring passes run on `pool`
  /// (nullptr = inline). Returns the number of entries computed. When
  /// `cancel` requests a stop, remaining passes are abandoned — entries
  /// already scored stay cached and correct, later keys simply miss.
  size_t PrecomputeObjects(const Model& model, const TripleStore& kg,
                           const std::vector<Key>& keys, bool filtered,
                           ThreadPool* pool,
                           const CancelContext* cancel = nullptr);

  /// Builds the subject-side entries for `keys` ((object, relation) pairs).
  size_t PrecomputeSubjects(const Model& model, const TripleStore& kg,
                            const std::vector<Key>& keys, bool filtered,
                            ThreadPool* pool,
                            const CancelContext* cancel = nullptr);

  /// Read-only lookups; nullptr when the entry was never computed. Safe to
  /// call concurrently as long as no mutating call runs at the same time.
  const Entry* FindObjects(EntityId s, RelationId r) const;
  const Entry* FindSubjects(RelationId r, EntityId o) const;

  /// Inserts an already-computed entry, keeping the existing one on key
  /// collision. Seam for DiscoveryCache to seed a run-local cache with
  /// cross-run entries before Precompute* fills the remaining keys.
  void InsertObjects(EntityId s, RelationId r, Entry entry);
  void InsertSubjects(RelationId r, EntityId o, Entry entry);

  void Clear();

  /// On-demand lookup accounting (Precompute* counts neither).
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t num_object_entries() const { return by_subject_.size(); }
  size_t num_subject_entries() const { return by_object_.size(); }

 private:
  static uint64_t PackKey(EntityId e, RelationId r) {
    return (static_cast<uint64_t>(r) << 32) | static_cast<uint64_t>(e);
  }
  static Entry MakeObjectsEntry(const Model& model, const TripleStore& kg,
                                EntityId s, RelationId r, bool filtered);
  static Entry MakeSubjectsEntry(const Model& model, const TripleStore& kg,
                                 RelationId r, EntityId o, bool filtered);

  /// Object-side entries keyed by (subject, relation) and subject-side
  /// entries keyed by (object, relation). unordered_map references stay
  /// valid across inserts, which FindObjects/FindSubjects rely on.
  std::unordered_map<uint64_t, Entry> by_subject_;
  std::unordered_map<uint64_t, Entry> by_object_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace kgfd

#endif  // KGFD_CORE_SIDE_SCORE_CACHE_H_
