#include "core/discovery_cache.h"

#include "adaptive/score_sketch.h"
#include "obs/metrics.h"

namespace kgfd {

DiscoveryCache::DiscoveryCache(MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    weights_hits_ = metrics->GetCounter(kSharedWeightsHitsCounter);
    weights_misses_ = metrics->GetCounter(kSharedWeightsMissesCounter);
    scores_hits_ = metrics->GetCounter(kSharedScoresHitsCounter);
    scores_misses_ = metrics->GetCounter(kSharedScoresMissesCounter);
    sketch_hits_ = metrics->GetCounter(kSketchHitsCounter);
    sketch_misses_ = metrics->GetCounter(kSketchMissesCounter);
  }
}

Result<std::shared_ptr<const DiscoveryCache::WeightsEntry>>
DiscoveryCache::GetOrComputeWeights(SamplingStrategy strategy,
                                    const TripleStore& kg) {
  const int key = static_cast<int>(strategy);
  // Computed under the lock: concurrent relations requesting the same
  // strategy serialize on the first computation instead of racing N copies
  // of an expensive metric sweep, and every later caller is a pure lookup.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = weights_.find(key);
  if (it != weights_.end()) {
    weights_hits_n_.fetch_add(1, std::memory_order_relaxed);
    if (weights_hits_ != nullptr) weights_hits_->Increment();
    return it->second;
  }
  if (weights_misses_ != nullptr) weights_misses_->Increment();
  auto entry = std::make_shared<WeightsEntry>();
  KGFD_ASSIGN_OR_RETURN(entry->weights, ComputeStrategyWeights(strategy, kg));
  KGFD_ASSIGN_OR_RETURN(entry->subject_sampler,
                        AliasSampler::Build(entry->weights.subject_weights));
  KGFD_ASSIGN_OR_RETURN(entry->object_sampler,
                        AliasSampler::Build(entry->weights.object_weights));
  std::shared_ptr<const WeightsEntry> shared = std::move(entry);
  weights_.emplace(key, shared);
  return shared;
}

Result<std::shared_ptr<const DiscoveryCache::WeightsEntry>>
DiscoveryCache::GetOrComputeModelScoreWeights(const Model& model,
                                              const TripleStore& kg) {
  const int key = static_cast<int>(SamplingStrategy::kModelScore);
  // Same serialization rationale as GetOrComputeWeights — the sketch's probe
  // sweep is by far the most expensive weights computation, so racing copies
  // would be the worst case, not just wasteful.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = weights_.find(key);
  if (it != weights_.end()) {
    weights_hits_n_.fetch_add(1, std::memory_order_relaxed);
    if (sketch_hits_ != nullptr) sketch_hits_->Increment();
    return it->second;
  }
  if (sketch_misses_ != nullptr) sketch_misses_->Increment();
  auto entry = std::make_shared<WeightsEntry>();
  KGFD_ASSIGN_OR_RETURN(entry->weights, ComputeModelScoreWeights(model, kg));
  KGFD_ASSIGN_OR_RETURN(entry->subject_sampler,
                        AliasSampler::Build(entry->weights.subject_weights));
  KGFD_ASSIGN_OR_RETURN(entry->object_sampler,
                        AliasSampler::Build(entry->weights.object_weights));
  std::shared_ptr<const WeightsEntry> shared = std::move(entry);
  weights_.emplace(key, shared);
  return shared;
}

size_t DiscoveryCache::Fetch(const std::vector<SideScoreCache::Key>& keys,
                             bool filtered, bool object_side,
                             SideScoreCache* local,
                             std::vector<SideScoreCache::Key>* missing) {
  // Collect the shared_ptrs under the lock, copy entry payloads outside it:
  // entries are immutable once published, so the copies cannot race later
  // inserts, and the lock is never held across an O(|E|) memcpy.
  std::vector<std::pair<SideScoreCache::Key,
                        std::shared_ptr<const SideScoreCache::Entry>>>
      hits;
  hits.reserve(keys.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ScoreMap& map = scores_[object_side ? 1 : 0][filtered ? 1 : 0];
    for (const SideScoreCache::Key& key : keys) {
      auto it = map.find(PackKey(key));
      if (it != map.end()) {
        hits.emplace_back(key, it->second);
      } else if (missing != nullptr) {
        missing->push_back(key);
      }
    }
  }
  for (const auto& [key, entry] : hits) {
    if (object_side) {
      local->InsertObjects(key.first, key.second, *entry);
    } else {
      local->InsertSubjects(key.second, key.first, *entry);
    }
  }
  scores_hits_n_.fetch_add(hits.size(), std::memory_order_relaxed);
  if (scores_hits_ != nullptr && !hits.empty()) {
    scores_hits_->Increment(hits.size());
  }
  const size_t misses = keys.size() - hits.size();
  if (scores_misses_ != nullptr && misses > 0) {
    scores_misses_->Increment(misses);
  }
  return hits.size();
}

void DiscoveryCache::Publish(const std::vector<SideScoreCache::Key>& keys,
                             bool filtered, bool object_side,
                             const SideScoreCache& local) {
  // Copy outside the lock, insert the finished shared_ptrs under it.
  std::vector<std::pair<uint64_t,
                        std::shared_ptr<const SideScoreCache::Entry>>>
      ready;
  ready.reserve(keys.size());
  for (const SideScoreCache::Key& key : keys) {
    const SideScoreCache::Entry* entry =
        object_side ? local.FindObjects(key.first, key.second)
                    : local.FindSubjects(key.second, key.first);
    if (entry == nullptr) continue;  // cancelled before this key was scored
    ready.emplace_back(PackKey(key),
                       std::make_shared<SideScoreCache::Entry>(*entry));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ScoreMap& map = scores_[object_side ? 1 : 0][filtered ? 1 : 0];
  for (auto& [packed, entry] : ready) {
    map.emplace(packed, std::move(entry));  // first writer wins
  }
}

size_t DiscoveryCache::FetchObjects(
    const std::vector<SideScoreCache::Key>& keys, bool filtered,
    SideScoreCache* local, std::vector<SideScoreCache::Key>* missing) {
  return Fetch(keys, filtered, /*object_side=*/true, local, missing);
}

size_t DiscoveryCache::FetchSubjects(
    const std::vector<SideScoreCache::Key>& keys, bool filtered,
    SideScoreCache* local, std::vector<SideScoreCache::Key>* missing) {
  return Fetch(keys, filtered, /*object_side=*/false, local, missing);
}

void DiscoveryCache::PublishObjects(
    const std::vector<SideScoreCache::Key>& keys, bool filtered,
    const SideScoreCache& local) {
  Publish(keys, filtered, /*object_side=*/true, local);
}

void DiscoveryCache::PublishSubjects(
    const std::vector<SideScoreCache::Key>& keys, bool filtered,
    const SideScoreCache& local) {
  Publish(keys, filtered, /*object_side=*/false, local);
}

size_t DiscoveryCache::num_weight_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return weights_.size();
}

size_t DiscoveryCache::num_score_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scores_[0][0].size() + scores_[0][1].size() + scores_[1][0].size() +
         scores_[1][1].size();
}

}  // namespace kgfd
