#ifndef KGFD_CORE_RESUME_H_
#define KGFD_CORE_RESUME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "kg/triple_store.h"
#include "kge/model.h"
#include "util/retry.h"
#include "util/status.h"

namespace kgfd {

/// Checkpoint/resume for long discovery sweeps: DiscoverFactsResumable
/// persists a *resume manifest* after every completed relation, so a run
/// killed by a crash, OOM, or I/O failure restarts from the last finished
/// relation instead of from scratch — and, because each relation draws from
/// its own seed-derived RNG stream, the resumed run's fact set is
/// bit-identical to an uninterrupted run's.

/// One completed relation as recorded in the manifest.
struct RelationCheckpointEntry {
  RelationId relation = 0;
  uint64_t num_candidates = 0;
  std::vector<DiscoveredFact> facts;
};

/// ADAPTIVE only: the finished bandit rounds of a relation that was
/// interrupted mid-relation. Rounds are stored in play order (index ==
/// round number); on resume they are replayed through the scheduler so the
/// remaining rounds continue from the exact allocation state the
/// interrupted run had.
struct AdaptiveRelationPartial {
  RelationId relation = 0;
  std::vector<AdaptiveRoundRecord> rounds;
};

/// On-disk resume state: a fingerprint of everything the output depends on
/// (model identity and parameters, graph shape, discovery options, relation
/// order) plus the per-relation results completed so far. Loading validates
/// the format; CheckManifestCompatible validates the fingerprint.
struct ResumeManifest {
  // -- Fingerprint ---------------------------------------------------------
  std::string model_name;
  /// FNV-1a over every model parameter tensor, so resuming against retrained
  /// weights is caught instead of silently mixing two models' facts.
  uint64_t model_param_hash = 0;
  uint64_t num_entities = 0;
  uint64_t num_relations = 0;
  uint64_t num_triples = 0;
  uint64_t seed = 0;
  std::string strategy;
  uint64_t top_n = 0;
  uint64_t max_candidates = 0;
  uint64_t max_iterations = 0;
  uint8_t filtered_ranking = 0;
  uint8_t cache_weights = 0;
  uint8_t type_filter = 0;
  uint8_t rank_aggregation = 0;
  /// ADAPTIVE fingerprint fields; zero for every other strategy. The
  /// exploration constant is compared bit-exactly — any change to it yields
  /// a different bandit schedule, so it invalidates the manifest the same
  /// way a different seed would.
  uint64_t adaptive_rounds = 0;
  double adaptive_exploration = 0.0;
  /// The full relation order of the run (not just the completed prefix).
  std::vector<RelationId> relations;

  // -- Progress ------------------------------------------------------------
  std::vector<RelationCheckpointEntry> done;
  /// ADAPTIVE only: round-level progress of relations not yet in `done`.
  /// A relation moves out of here the moment it completes.
  std::vector<AdaptiveRelationPartial> partial;
};

/// FNV-1a over the raw bytes of every parameter tensor, in Parameters()
/// order. (Parameters() is non-const in the Model interface but does not
/// mutate observable state.)
uint64_t HashModelParameters(Model* model);

/// Builds the fingerprint header (no progress entries) for a run.
ResumeManifest MakeManifestHeader(Model* model, const TripleStore& kg,
                                  const DiscoveryOptions& options,
                                  const std::vector<RelationId>& relations);

/// FailedPrecondition with a field-naming message if `loaded`'s fingerprint
/// differs from `expected`'s; OK otherwise.
Status CheckManifestCompatible(const ResumeManifest& loaded,
                               const ResumeManifest& expected);

/// Atomically persists the manifest: writes `path`.tmp, then renames over
/// `path`, so a crash mid-write never clobbers the previous good manifest.
Status SaveResumeManifest(const ResumeManifest& manifest,
                          const std::string& path);

/// Loads a manifest written by SaveResumeManifest (binary format; doubles
/// round-trip bit-exactly).
Result<ResumeManifest> LoadResumeManifest(const std::string& path);

/// Controls DiscoverFactsResumable.
struct ResumeOptions {
  /// Manifest location. Loaded (and fingerprint-checked) if it exists;
  /// created otherwise. Left in place on success, so re-running a finished
  /// job is a cheap no-op that returns the same facts.
  std::string manifest_path;
  /// Retry policy for manifest saves (a transiently failing checkpoint
  /// write should not kill an hours-long sweep).
  RetryPolicy save_retry;
};

/// DiscoverFacts with checkpoint/resume: skips relations already recorded
/// in the manifest, persists every newly completed relation, and assembles
/// the final fact set in the run's canonical relation order — bit-identical
/// to an uninterrupted DiscoverFacts run with the same options.
///
/// On error (including injected faults), completed relations remain in the
/// manifest and a subsequent call resumes after them. Duplicate entries in
/// options.relations are rejected: the manifest is keyed by relation id.
///
/// options.cancel (token or deadline) stops the sweep gracefully: every
/// relation completed before the stop is already persisted in the manifest
/// (each one is flushed as it finishes), the call returns OK with those
/// relations' facts and a non-kNone stopped_reason, and a later call with
/// the same manifest path resumes from the stop point, yielding facts
/// byte-identical to an uninterrupted run.
///
/// Stats caveat: the timing fields cover only the live portion of the run;
/// counts (candidates, facts, relations) cover manifest-restored relations
/// too.
///
/// strategy=ADAPTIVE refines the checkpoint unit from relations to bandit
/// rounds: every finished round is persisted under `partial`, and a resumed
/// run replays the recorded rounds (no re-ranking, scheduler state
/// re-derived exactly) before playing the rest live — so a kill mid-relation
/// loses at most one round of ranking work and the resumed fact set stays
/// bit-identical to an uninterrupted run.
Result<DiscoveryResult> DiscoverFactsResumable(const Model& model,
                                               const TripleStore& kg,
                                               const DiscoveryOptions& options,
                                               const ResumeOptions& resume,
                                               ThreadPool* pool = nullptr);

}  // namespace kgfd

#endif  // KGFD_CORE_RESUME_H_
