#include "core/discovery.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "adaptive/scheduler.h"
#include "adaptive/score_sketch.h"
#include "core/discovery_cache.h"
#include "core/side_score_cache.h"
#include "core/type_filter.h"
#include "graph/adjacency.h"
#include "graph/metrics.h"
#include "kge/evaluator.h"
#include "kge/kernels.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/alias_sampler.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgfd {

double DiscoveryMrr(const std::vector<DiscoveredFact>& facts) {
  if (facts.empty()) return 0.0;
  double sum = 0.0;
  for (const DiscoveredFact& f : facts) sum += 1.0 / f.rank;
  return sum / static_cast<double>(facts.size());
}

double LongTailShare(const std::vector<DiscoveredFact>& facts,
                     const TripleStore& kg, double quantile) {
  if (facts.empty()) return 0.0;
  const Adjacency adj = Adjacency::FromTripleStore(kg);
  std::vector<uint64_t> degrees = Degrees(adj);
  std::vector<uint64_t> connected;
  connected.reserve(degrees.size());
  for (uint64_t d : degrees) {
    if (d > 0) connected.push_back(d);
  }
  if (connected.empty()) return 0.0;
  std::sort(connected.begin(), connected.end());
  const size_t idx = std::min(
      connected.size() - 1,
      static_cast<size_t>(quantile *
                          static_cast<double>(connected.size() - 1)));
  const uint64_t threshold = connected[idx];
  size_t touching = 0;
  for (const DiscoveredFact& f : facts) {
    if (degrees[f.triple.subject] <= threshold ||
        degrees[f.triple.object] <= threshold) {
      ++touching;
    }
  }
  return static_cast<double>(touching) / static_cast<double>(facts.size());
}

namespace {

/// Algorithm 1 line 4: mesh-grid side length.
size_t MeshGridSampleSize(size_t max_candidates) {
  return static_cast<size_t>(
             std::sqrt(static_cast<double>(max_candidates))) +
         10;
}

double Aggregate(RankAggregation agg, double subject_rank,
                 double object_rank) {
  switch (agg) {
    case RankAggregation::kMean:
      return 0.5 * (subject_rank + object_rank);
    case RankAggregation::kMin:
      return std::min(subject_rank, object_rank);
    case RankAggregation::kMax:
      return std::max(subject_rank, object_rank);
  }
  return 0.5 * (subject_rank + object_rank);
}

}  // namespace

Status ValidateDiscoveryOptions(const DiscoveryOptions& options,
                                const TripleStore& kg) {
  if (options.max_candidates == 0 || options.top_n == 0) {
    return Status::InvalidArgument("top_n and max_candidates must be > 0");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be > 0");
  }
  if (options.strategy == SamplingStrategy::kAdaptive) {
    if (options.adaptive_rounds == 0) {
      return Status::InvalidArgument(
          "adaptive_rounds must be > 0 for strategy=ADAPTIVE");
    }
    // Negated >= so a NaN (never >= 0) is rejected instead of silently
    // poisoning every UCB comparison.
    if (!(options.adaptive_exploration >= 0.0)) {
      return Status::InvalidArgument(
          "adaptive_exploration must be >= 0 for strategy=ADAPTIVE");
    }
  }
  for (RelationId r : options.relations) {
    if (r >= kg.num_relations()) {
      return Status::OutOfRange("relation id out of range");
    }
  }

  // Guard the mesh-grid against absurd max_candidates before anything is
  // allocated: estimate the per-relation transient footprint (sample
  // vectors, candidate list, dedup hash set, rank slots) in double
  // arithmetic so the estimate itself cannot overflow size_t.
  //
  // ~48 bytes/candidate of unordered_set node + bucket overhead on top of
  // the 8-byte packed key is a deliberate overestimate.
  const size_t sample_size = MeshGridSampleSize(options.max_candidates);
  const double estimated_bytes =
      2.0 * static_cast<double>(sample_size) * sizeof(EntityId) +
      static_cast<double>(options.max_candidates) *
          (sizeof(Triple) + 2 * sizeof(double) + 56.0);
  if (estimated_bytes >
      static_cast<double>(options.max_candidate_memory_bytes)) {
    return Status::InvalidArgument(
        "max_candidates=" + std::to_string(options.max_candidates) +
        " needs ~" + std::to_string(static_cast<uint64_t>(estimated_bytes)) +
        " bytes of per-relation candidate state, over the "
        "max_candidate_memory_bytes cap of " +
        std::to_string(options.max_candidate_memory_bytes) +
        "; lower max_candidates or raise the cap");
  }
  return Status::OK();
}

Result<DiscoveryResult> DiscoverFacts(const Model& model,
                                      const TripleStore& kg,
                                      const DiscoveryOptions& options,
                                      ThreadPool* pool) {
  KGFD_RETURN_NOT_OK(ValidateDiscoveryOptions(options, kg));
  KGFD_RETURN_NOT_OK(
      ValidateModelShape(model, kg.num_entities(), kg.num_relations()));

  // Algorithm 1 line 3: default to every relation present in the KG.
  std::vector<RelationId> relations = options.relations;
  if (relations.empty()) relations = kg.UsedRelations();

  const size_t sample_size = MeshGridSampleSize(options.max_candidates);

  WallTimer total_timer;
  MetricsRegistry* const metrics = options.metrics;
  // Resolve counters once so worker threads only pay an atomic increment.
  Counter* candidates_counter = nullptr;
  Counter* facts_counter = nullptr;
  Counter* cache_hits_counter = nullptr;
  Counter* cache_misses_counter = nullptr;
  Counter* relations_counter = nullptr;
  if (metrics != nullptr) {
    candidates_counter = metrics->GetCounter(kDiscoveryCandidatesCounter);
    facts_counter = metrics->GetCounter(kDiscoveryFactsCounter);
    cache_hits_counter = metrics->GetCounter(kDiscoveryScoreCacheHits);
    cache_misses_counter = metrics->GetCounter(kDiscoveryScoreCacheMisses);
    relations_counter = metrics->GetCounter(kDiscoveryRelationsCounter);
  }

  // --- Cooperative stop machinery -----------------------------------------
  // All stop sources (external token, deadline, the discovery.cancel
  // failpoint) funnel into one internal token: the first observer records
  // the reason + metrics, and every nested ParallelFor watches the internal
  // token, so one observation stops the whole sweep within a chunk.
  CancellationToken stop_token;
  std::atomic<int> stop_reason{static_cast<int>(StoppedReason::kNone)};
  const CancelContext run_cancel(&stop_token);

  auto observe_stop = [&](StoppedReason reason) {
    int expected = static_cast<int>(StoppedReason::kNone);
    if (stop_reason.compare_exchange_strong(expected,
                                            static_cast<int>(reason))) {
      if (metrics != nullptr) {
        metrics->GetCounter(kCancelRequestedCounter)->Increment();
        // Signal-to-observation latency; only meaningful for an external
        // token (deadline/failpoint stops have no request timestamp).
        const CancellationToken* ext = options.cancel.token();
        metrics->GetHistogram(kCancelObservedSecondsHist)
            ->Observe(ext != nullptr ? ext->SecondsSinceRequest() : 0.0);
      }
    }
    stop_token.RequestCancel();
  };

  // Cheap in-loop probe: internal token (already-observed stop) plus the
  // external token/deadline. No failpoint evaluation, so arming
  // discovery.cancel with a skip count stays deterministic — only the
  // coarse checkpoints below consume hits.
  auto fine_stop = [&]() -> bool {
    if (stop_token.IsCancelled()) return true;
    const StoppedReason r = options.cancel.StopReason();
    if (r != StoppedReason::kNone) {
      observe_stop(r);
      return true;
    }
    return false;
  };

  // Coarse checkpoint (relation start, between phases): everything
  // fine_stop sees plus the discovery.cancel failpoint, which simulates a
  // stop request — Cancelled or DeadlineExceeded specs map onto the
  // matching reason; any other injected code reads as a cancellation.
  auto checkpoint_stop = [&]() -> bool {
    if (fine_stop()) return true;
    const Status injected =
        FailPoints::Instance().Evaluate(kFailPointDiscoveryCancel);
    if (!injected.ok()) {
      observe_stop(injected.code() == StatusCode::kDeadlineExceeded
                       ? StoppedReason::kDeadline
                       : StoppedReason::kCancelled);
      return true;
    }
    return false;
  };

  const bool adaptive = options.strategy == SamplingStrategy::kAdaptive;
  const bool model_score = options.strategy == SamplingStrategy::kModelScore;

  // Optional weight-caching ablation: hoist line 7 out of the loop. A
  // shared DiscoveryCache hoists as well — it already guarantees one
  // computation per strategy across runs, so the recompute-per-relation
  // semantics of cache_weights=false would only repeat a cache lookup.
  // MODEL_SCORE always hoists: its sketch depends only on (model, KG), so a
  // per-relation recompute would repeat the probe sweep for identical
  // weights. ADAPTIVE hoists its whole arm set below for the same reason.
  const bool hoist_weights = options.cache_weights ||
                             options.shared_cache != nullptr || model_score;
  StrategyWeights hoisted_weights;
  AliasSampler hoisted_subject_sampler;
  AliasSampler hoisted_object_sampler;
  // Keeps the cache entry alive for the whole sweep when the pointers below
  // alias into it.
  std::shared_ptr<const DiscoveryCache::WeightsEntry> shared_weights;
  const StrategyWeights* hoisted_weights_ptr = &hoisted_weights;
  const AliasSampler* hoisted_subject_ptr = &hoisted_subject_sampler;
  const AliasSampler* hoisted_object_ptr = &hoisted_object_sampler;
  double hoisted_weight_seconds = 0.0;
  if (!adaptive && options.shared_cache != nullptr) {
    ScopedSpan weight_span(metrics, kDiscoveryWeightsSpan);
    KGFD_ASSIGN_OR_RETURN(
        shared_weights,
        model_score
            ? options.shared_cache->GetOrComputeModelScoreWeights(model, kg)
            : options.shared_cache->GetOrComputeWeights(options.strategy, kg));
    hoisted_weights_ptr = &shared_weights->weights;
    hoisted_subject_ptr = &shared_weights->subject_sampler;
    hoisted_object_ptr = &shared_weights->object_sampler;
    hoisted_weight_seconds = weight_span.Stop();
  } else if (!adaptive && (options.cache_weights || model_score)) {
    ScopedSpan weight_span(metrics, kDiscoveryWeightsSpan);
    KGFD_ASSIGN_OR_RETURN(hoisted_weights,
                          model_score
                              ? ComputeModelScoreWeights(model, kg)
                              : ComputeStrategyWeights(options.strategy, kg));
    KGFD_ASSIGN_OR_RETURN(hoisted_subject_sampler,
                          AliasSampler::Build(hoisted_weights.subject_weights));
    KGFD_ASSIGN_OR_RETURN(hoisted_object_sampler,
                          AliasSampler::Build(hoisted_weights.object_weights));
    hoisted_weight_seconds = weight_span.Stop();
  }

  // ADAPTIVE: precompute every arm's weights + samplers once per sweep. The
  // bandit may grant any arm any round, so all six must exist before the
  // relation loop starts; per-relation recomputes (faithful mode) would
  // multiply the most expensive metric sweeps by the relation count for
  // byte-identical results. Pointers are bound in a second loop because
  // push_back would otherwise move `owned` out from under them.
  struct ArmState {
    std::shared_ptr<const DiscoveryCache::WeightsEntry> shared;
    DiscoveryCache::WeightsEntry owned;
    const StrategyWeights* weights = nullptr;
    const AliasSampler* subject_sampler = nullptr;
    const AliasSampler* object_sampler = nullptr;
  };
  const std::vector<SamplingStrategy> arm_strategies =
      adaptive ? AdaptiveArmStrategies() : std::vector<SamplingStrategy>{};
  std::vector<ArmState> arms(arm_strategies.size());
  if (adaptive) {
    ScopedSpan weight_span(metrics, kDiscoveryWeightsSpan);
    for (size_t a = 0; a < arm_strategies.size(); ++a) {
      const SamplingStrategy s = arm_strategies[a];
      ArmState& arm = arms[a];
      if (options.shared_cache != nullptr) {
        KGFD_ASSIGN_OR_RETURN(
            arm.shared,
            s == SamplingStrategy::kModelScore
                ? options.shared_cache->GetOrComputeModelScoreWeights(model,
                                                                      kg)
                : options.shared_cache->GetOrComputeWeights(s, kg));
      } else {
        KGFD_ASSIGN_OR_RETURN(arm.owned.weights,
                              s == SamplingStrategy::kModelScore
                                  ? ComputeModelScoreWeights(model, kg)
                                  : ComputeStrategyWeights(s, kg));
        KGFD_ASSIGN_OR_RETURN(
            arm.owned.subject_sampler,
            AliasSampler::Build(arm.owned.weights.subject_weights));
        KGFD_ASSIGN_OR_RETURN(
            arm.owned.object_sampler,
            AliasSampler::Build(arm.owned.weights.object_weights));
      }
    }
    for (ArmState& arm : arms) {
      const DiscoveryCache::WeightsEntry& entry =
          arm.shared != nullptr ? *arm.shared : arm.owned;
      arm.weights = &entry.weights;
      arm.subject_sampler = &entry.subject_sampler;
      arm.object_sampler = &entry.object_sampler;
    }
    hoisted_weight_seconds = weight_span.Stop();
  }

  std::unique_ptr<RelationTypeFilter> type_filter;
  if (options.type_filter) {
    type_filter = std::make_unique<RelationTypeFilter>(kg);
  }

  // Per-relation outcomes with fixed slots so a thread pool can fill them
  // in any order; each relation draws from its own seed-derived RNG stream,
  // making the output identical whether the loop runs serially or
  // in parallel.
  struct RelationOutcome {
    std::vector<DiscoveredFact> facts;
    size_t num_candidates = 0;
    double generation_seconds = 0.0;
    double evaluation_seconds = 0.0;
    double weight_seconds = 0.0;
    Status status;
    /// Set only when process_relation ran the relation to the end. A stopped
    /// sweep treats unfinished relations as all-or-nothing: they contribute
    /// no facts, no stats phases and no completion callback, so resuming
    /// later regenerates their facts bit-identically from their own RNG
    /// streams.
    bool completed = false;
  };
  std::vector<RelationOutcome> outcomes(relations.size());

  auto process_relation = [&](size_t index) {
    const RelationId r = relations[index];
    RelationOutcome& out = outcomes[index];
    if (checkpoint_stop()) return;  // relation-boundary checkpoint
    // Fault-injection seam: a per-relation failure (simulated I/O error,
    // OOM, ...) aborts this relation only; completed relations keep their
    // outcomes, which the resume layer has already persisted.
    out.status = FailPoints::Instance().Evaluate(kFailPointDiscoveryRelation);
    if (!out.status.ok()) return;
    Rng rng(options.seed ^ (0x9E3779B97F4A7C15ULL *
                            (static_cast<uint64_t>(r) + 1)));

    // Line 7: compute_weights(strategy) — inside the loop, as published
    // (unless the caching ablation hoisted it above). Timed as its own
    // phase, disjoint from generation.
    const StrategyWeights* weights = hoisted_weights_ptr;
    const AliasSampler* subject_sampler = hoisted_subject_ptr;
    const AliasSampler* object_sampler = hoisted_object_ptr;
    StrategyWeights local_weights;
    AliasSampler local_subject_sampler;
    AliasSampler local_object_sampler;
    if (!hoist_weights) {
      ScopedSpan weight_span(metrics, kDiscoveryWeightsSpan);
      auto weights_or = ComputeStrategyWeights(options.strategy, kg);
      if (!weights_or.ok()) {
        out.status = weights_or.status();
        return;
      }
      local_weights = std::move(weights_or).value();
      auto subject_or = AliasSampler::Build(local_weights.subject_weights);
      auto object_or = AliasSampler::Build(local_weights.object_weights);
      if (!subject_or.ok() || !object_or.ok()) {
        out.status = subject_or.ok() ? object_or.status()
                                     : subject_or.status();
        return;
      }
      local_subject_sampler = std::move(subject_or).value();
      local_object_sampler = std::move(object_or).value();
      out.weight_seconds = weight_span.Stop();
      weights = &local_weights;
      subject_sampler = &local_subject_sampler;
      object_sampler = &local_object_sampler;
    }

    if (checkpoint_stop()) return;  // post-weights checkpoint

    // Lines 8-13: sample, mesh-grid, filter seen, until enough candidates.
    ScopedSpan generation_span(metrics, kDiscoveryGenerationSpan);
    std::vector<Triple> local_facts;
    std::unordered_set<uint64_t> local_seen;
    for (size_t iteration = 0;
         iteration < options.max_iterations &&
         local_facts.size() < options.max_candidates;
         ++iteration) {
      std::vector<EntityId> s_samples(sample_size);
      std::vector<EntityId> o_samples(sample_size);
      for (size_t i = 0; i < sample_size; ++i) {
        s_samples[i] = weights->subject_pool[subject_sampler->Sample(&rng)];
        o_samples[i] = weights->object_pool[object_sampler->Sample(&rng)];
      }
      for (EntityId s : s_samples) {
        if (local_facts.size() >= options.max_candidates) break;
        for (EntityId o : o_samples) {
          if (local_facts.size() >= options.max_candidates) break;
          const Triple t{s, r, o};
          if (kg.Contains(t)) continue;  // line 12: filter seen triples
          if (type_filter != nullptr && !type_filter->Admissible(t)) {
            continue;
          }
          if (!local_seen.insert(PackTriple(t)).second) continue;
          local_facts.push_back(t);
        }
      }
    }
    // Defensive clamp: the break conditions above already stop at
    // max_candidates, but the downstream rank-slot allocation sizes off this
    // list, so enforce the invariant here too rather than trust loop
    // structure at a distance.
    if (local_facts.size() > options.max_candidates) {
      local_facts.resize(options.max_candidates);
    }
    out.num_candidates = local_facts.size();
    out.generation_seconds = generation_span.Stop();

    if (checkpoint_stop()) return;  // post-generation checkpoint

    // Lines 14-15: rank candidates against corruptions, keep rank <= top_n.
    // The dominant phase: one ScoreObjects/ScoreSubjects pass per distinct
    // (s, r) / (r, o) pair, each O(num_entities * dim). Both the scoring
    // passes and the per-candidate rank computations are independent, so
    // they fan out over `pool` (nested inside the per-relation loop, which
    // TaskGroup-scoped waiting makes safe). Ranks land in fixed
    // per-candidate slots and the top_n filter runs serially in candidate
    // order, so the facts are bit-identical for every thread count.
    ScopedSpan ranking_span(metrics, kDiscoveryRankingSpan);
    const size_t n_cand = local_facts.size();
    std::vector<SideScoreCache::Key> subject_keys;  // (s, r): object scores
    std::vector<SideScoreCache::Key> object_keys;   // (o, r): subject scores
    {
      std::unordered_set<EntityId> seen_subjects;
      std::unordered_set<EntityId> seen_objects;
      for (const Triple& t : local_facts) {
        if (seen_subjects.insert(t.subject).second) {
          subject_keys.emplace_back(t.subject, r);
        }
        if (seen_objects.insert(t.object).second) {
          object_keys.emplace_back(t.object, r);
        }
      }
    }
    // With a shared DiscoveryCache, seed the run-local cache with the
    // entries previous runs already scored and only precompute the misses;
    // freshly-scored entries are published back afterwards. Entries are
    // deterministic in (model, KG), so a warm-cache run ranks against
    // exactly the scores a cold run would compute.
    SideScoreCache score_cache;
    DiscoveryCache* const shared = options.shared_cache;
    std::vector<SideScoreCache::Key> fresh_subject_keys;
    std::vector<SideScoreCache::Key> fresh_object_keys;
    const std::vector<SideScoreCache::Key>* precompute_subject_keys =
        &subject_keys;
    const std::vector<SideScoreCache::Key>* precompute_object_keys =
        &object_keys;
    if (shared != nullptr) {
      shared->FetchObjects(subject_keys, options.filtered_ranking,
                           &score_cache, &fresh_subject_keys);
      shared->FetchSubjects(object_keys, options.filtered_ranking,
                            &score_cache, &fresh_object_keys);
      precompute_subject_keys = &fresh_subject_keys;
      precompute_object_keys = &fresh_object_keys;
    }
    score_cache.PrecomputeObjects(model, kg, *precompute_subject_keys,
                                  options.filtered_ranking, pool,
                                  &run_cancel);
    score_cache.PrecomputeSubjects(model, kg, *precompute_object_keys,
                                   options.filtered_ranking, pool,
                                   &run_cancel);
    if (shared != nullptr) {
      // Publish skips keys a cancelled precompute never scored.
      shared->PublishObjects(fresh_subject_keys, options.filtered_ranking,
                             score_cache);
      shared->PublishSubjects(fresh_object_keys, options.filtered_ranking,
                              score_cache);
    }
    // Pre-ranking checkpoint; also covers a stop during precompute, whose
    // partially-built cache must never be dereferenced below.
    if (checkpoint_stop()) return;
    std::vector<double> subject_ranks(n_cand);
    std::vector<double> object_ranks(n_cand);
    ParallelFor(
        pool, n_cand,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            // Per-ranking-chunk granularity on the pool comes from
            // ParallelFor's claim loop; this probe bounds the *serial*
            // path (one body call covering all candidates) too. The
            // relation is abandoned below, so bailing mid-chunk is safe.
            if ((i & 63u) == 0 && fine_stop()) return;
            const Triple& t = local_facts[i];
            const SideScoreCache::Entry* obj_entry =
                score_cache.FindObjects(t.subject, r);
            object_ranks[i] = RankAgainstScores(obj_entry->scores, t.object,
                                                &obj_entry->excluded);
            const SideScoreCache::Entry* subj_entry =
                score_cache.FindSubjects(r, t.object);
            subject_ranks[i] = RankAgainstScores(subj_entry->scores,
                                                 t.subject,
                                                 &subj_entry->excluded);
          }
        },
        // Kernel-block granularity: chunks sized in kQueryBlock multiples
        // keep the per-chunk claim/dispatch overhead amortized over at
        // least 64 candidates (per-candidate slivers were the PR2
        // ranking_speedup regression) and line up with the cancel probe's
        // 64-candidate stride above.
        &run_cancel, kernels::kQueryBlock);
    // A stop observed any time during ranking may have left rank slots
    // unfilled — abandon the whole relation rather than emit partial facts.
    if (fine_stop()) return;
    for (size_t i = 0; i < n_cand; ++i) {
      const double rank = Aggregate(options.rank_aggregation,
                                    subject_ranks[i], object_ranks[i]);
      if (rank <= static_cast<double>(options.top_n)) {
        DiscoveredFact fact;
        fact.triple = local_facts[i];
        fact.rank = rank;
        fact.subject_rank = subject_ranks[i];
        fact.object_rank = object_ranks[i];
        out.facts.push_back(fact);
      }
    }
    out.evaluation_seconds = ranking_span.Stop();

    if (metrics != nullptr) {
      candidates_counter->Increment(out.num_candidates);
      facts_counter->Increment(out.facts.size());
      // Every candidate does one lookup per side; the first toucher of each
      // distinct entry is the miss that paid for the scoring pass. Derived
      // arithmetically so the numbers match the serial path exactly
      // regardless of how the parallel precompute was scheduled.
      const size_t unique_entries = subject_keys.size() + object_keys.size();
      cache_misses_counter->Increment(unique_entries);
      cache_hits_counter->Increment(2 * n_cand - unique_entries);
      relations_counter->Increment();
    }

    out.completed = true;
    if (options.on_relation_complete) {
      RelationCompletion completion;
      completion.relation = r;
      completion.index = index;
      completion.num_candidates = out.num_candidates;
      completion.facts = out.facts;  // copy: `out` still feeds the result
      options.on_relation_complete(std::move(completion));
    }
  };

  // ADAPTIVE: the same relation contract (all-or-nothing outcome slot, own
  // seed-derived RNG streams, bit-identical across thread counts), but the
  // candidate budget is played out in bandit rounds. Each round samples with
  // the granted arm's weights from a round-specific RNG stream, ranks only
  // its own candidates, and feeds accepted-facts-per-candidate back into the
  // scheduler; the relation's SideScoreCache persists across rounds so
  // repeated (entity, relation) pairs never re-score. Rounds — not
  // relations — are the checkpoint unit: each finished live round fires
  // on_round_complete, and a resumed run replays the recorded rounds
  // through the scheduler (verifying the arm sequence) before playing the
  // rest live.
  auto process_relation_adaptive = [&](size_t index) {
    const RelationId r = relations[index];
    RelationOutcome& out = outcomes[index];
    if (checkpoint_stop()) return;  // relation-boundary checkpoint
    out.status = FailPoints::Instance().Evaluate(kFailPointDiscoveryRelation);
    if (!out.status.ok()) return;

    const uint64_t relation_seed =
        options.seed ^
        (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(r) + 1));

    BanditOptions bandit_options;
    bandit_options.rounds = options.adaptive_rounds;
    bandit_options.exploration = options.adaptive_exploration;
    bandit_options.seed = relation_seed;
    bandit_options.total_budget = options.max_candidates;
    bandit_options.metrics = metrics;
    BanditScheduler scheduler(arm_strategies, bandit_options);

    const std::vector<AdaptiveRoundRecord>* restored = nullptr;
    if (options.adaptive_resume != nullptr) {
      auto it = options.adaptive_resume->rounds.find(r);
      if (it != options.adaptive_resume->rounds.end()) restored = &it->second;
    }

    SideScoreCache score_cache;  // shared by every round of this relation
    std::unordered_set<uint64_t> fact_seen;  // cross-round dedup, first wins
    size_t live_candidates = 0;   // candidates scored by live rounds
    size_t unique_entries = 0;    // first-touch score entries, live rounds

    // Candidate generation for one round. Deduplicates against every earlier
    // round of this relation — the same whole-relation contract as the fixed
    // path — so repeat draws from a favored arm keep producing fresh
    // candidates instead of burning quota on triples an earlier round
    // already ranked. The output (and the dedup set's evolution) is a pure
    // function of (seed, relation, arm sequence), never of ranking results,
    // which lets a resumed run rebuild the exact set state by regenerating
    // replayed rounds without re-scoring them.
    std::unordered_set<uint64_t> candidate_seen;
    auto generate_round = [&](const BanditScheduler::RoundPlan& plan) {
      Rng round_rng(relation_seed ^
                    (0xD1B54A32D192ED03ULL *
                     (static_cast<uint64_t>(plan.round) + 1)));
      const size_t round_sample = MeshGridSampleSize(plan.quota);
      std::vector<Triple> round_candidates;
      for (size_t iteration = 0;
           iteration < options.max_iterations &&
           round_candidates.size() < plan.quota;
           ++iteration) {
        std::vector<EntityId> s_samples(round_sample);
        std::vector<EntityId> o_samples(round_sample);
        const ArmState& arm = arms[plan.arm];
        for (size_t i = 0; i < round_sample; ++i) {
          s_samples[i] =
              arm.weights
                  ->subject_pool[arm.subject_sampler->Sample(&round_rng)];
          o_samples[i] =
              arm.weights->object_pool[arm.object_sampler->Sample(&round_rng)];
        }
        for (EntityId s : s_samples) {
          if (round_candidates.size() >= plan.quota) break;
          for (EntityId o : o_samples) {
            if (round_candidates.size() >= plan.quota) break;
            const Triple t{s, r, o};
            if (kg.Contains(t)) continue;
            if (type_filter != nullptr && !type_filter->Admissible(t)) {
              continue;
            }
            if (!candidate_seen.insert(PackTriple(t)).second) continue;
            round_candidates.push_back(t);
          }
        }
      }
      if (round_candidates.size() > plan.quota) {
        round_candidates.resize(plan.quota);
      }
      return round_candidates;
    };

    while (!scheduler.Done()) {
      const BanditScheduler::RoundPlan plan = scheduler.NextRound();
      const SamplingStrategy arm_strategy = arm_strategies[plan.arm];

      if (restored != nullptr && plan.round < restored->size()) {
        // Replay: feed the recorded outcome back so the scheduler re-derives
        // the original allocation sequence, and merge the recorded facts
        // without re-ranking anything. A manifest whose recorded arm diverges
        // from the re-derived one was written by a different configuration
        // than CheckManifestCompatible admitted — refuse rather than splice
        // two different schedules.
        const AdaptiveRoundRecord& rec = (*restored)[plan.round];
        if (rec.arm != SamplingStrategyName(arm_strategy)) {
          out.status = Status::Internal(
              "resume manifest round " + std::to_string(plan.round) +
              " of relation " + std::to_string(r) + " recorded arm " +
              rec.arm + " but the scheduler re-derived " +
              SamplingStrategyName(arm_strategy) +
              "; the manifest does not match this run");
          return;
        }
        // Regenerate (never re-rank) the replayed round's candidates so the
        // cross-round dedup set evolves exactly as in the original run;
        // later live rounds then draw the same fresh candidates they would
        // have drawn uninterrupted. A count mismatch means the manifest was
        // produced under different generation inputs than this run.
        const std::vector<Triple> replayed = generate_round(plan);
        if (replayed.size() != rec.num_candidates) {
          out.status = Status::Internal(
              "resume manifest round " + std::to_string(plan.round) +
              " of relation " + std::to_string(r) + " recorded " +
              std::to_string(rec.num_candidates) +
              " candidates but regeneration produced " +
              std::to_string(replayed.size()) +
              "; the manifest does not match this run");
          return;
        }
        scheduler.Report(plan, rec.num_candidates, rec.facts.size(),
                         /*ranking_seconds=*/0.0);
        for (const DiscoveredFact& fact : rec.facts) {
          if (fact_seen.insert(PackTriple(fact.triple)).second) {
            out.facts.push_back(fact);
          }
        }
        out.num_candidates += rec.num_candidates;
        continue;  // replayed rounds never re-fire on_round_complete
      }

      if (checkpoint_stop()) return;  // round-boundary checkpoint

      // Generation, scoped to this round's quota. The round RNG stream is a
      // pure function of (seed, relation, round), so a replayed prefix
      // leaves later rounds' streams untouched.
      ScopedSpan generation_span(metrics, kDiscoveryGenerationSpan);
      const std::vector<Triple> round_candidates = generate_round(plan);
      out.num_candidates += round_candidates.size();
      live_candidates += round_candidates.size();
      out.generation_seconds += generation_span.Stop();

      if (checkpoint_stop()) return;  // post-generation checkpoint

      // Ranking: identical mechanics to the fixed-strategy path, restricted
      // to this round's candidates. Only keys the relation cache has never
      // seen are (fetched and) precomputed.
      ScopedSpan ranking_span(metrics, kDiscoveryRankingSpan);
      const size_t n_cand = round_candidates.size();
      std::vector<SideScoreCache::Key> need_subject_keys;
      std::vector<SideScoreCache::Key> need_object_keys;
      {
        std::unordered_set<EntityId> seen_subjects;
        std::unordered_set<EntityId> seen_objects;
        for (const Triple& t : round_candidates) {
          if (seen_subjects.insert(t.subject).second &&
              score_cache.FindObjects(t.subject, r) == nullptr) {
            need_subject_keys.emplace_back(t.subject, r);
          }
          if (seen_objects.insert(t.object).second &&
              score_cache.FindSubjects(r, t.object) == nullptr) {
            need_object_keys.emplace_back(t.object, r);
          }
        }
      }
      unique_entries += need_subject_keys.size() + need_object_keys.size();
      DiscoveryCache* const shared = options.shared_cache;
      std::vector<SideScoreCache::Key> fresh_subject_keys;
      std::vector<SideScoreCache::Key> fresh_object_keys;
      const std::vector<SideScoreCache::Key>* precompute_subject_keys =
          &need_subject_keys;
      const std::vector<SideScoreCache::Key>* precompute_object_keys =
          &need_object_keys;
      if (shared != nullptr) {
        shared->FetchObjects(need_subject_keys, options.filtered_ranking,
                             &score_cache, &fresh_subject_keys);
        shared->FetchSubjects(need_object_keys, options.filtered_ranking,
                              &score_cache, &fresh_object_keys);
        precompute_subject_keys = &fresh_subject_keys;
        precompute_object_keys = &fresh_object_keys;
      }
      score_cache.PrecomputeObjects(model, kg, *precompute_subject_keys,
                                    options.filtered_ranking, pool,
                                    &run_cancel);
      score_cache.PrecomputeSubjects(model, kg, *precompute_object_keys,
                                     options.filtered_ranking, pool,
                                     &run_cancel);
      if (shared != nullptr) {
        shared->PublishObjects(fresh_subject_keys, options.filtered_ranking,
                               score_cache);
        shared->PublishSubjects(fresh_object_keys, options.filtered_ranking,
                                score_cache);
      }
      if (checkpoint_stop()) return;  // pre-ranking / post-precompute
      std::vector<double> subject_ranks(n_cand);
      std::vector<double> object_ranks(n_cand);
      ParallelFor(
          pool, n_cand,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              if ((i & 63u) == 0 && fine_stop()) return;
              const Triple& t = round_candidates[i];
              const SideScoreCache::Entry* obj_entry =
                  score_cache.FindObjects(t.subject, r);
              object_ranks[i] = RankAgainstScores(obj_entry->scores, t.object,
                                                  &obj_entry->excluded);
              const SideScoreCache::Entry* subj_entry =
                  score_cache.FindSubjects(r, t.object);
              subject_ranks[i] = RankAgainstScores(subj_entry->scores,
                                                   t.subject,
                                                   &subj_entry->excluded);
            }
          },
          &run_cancel, kernels::kQueryBlock);
      if (fine_stop()) return;  // rank slots may be partially filled
      std::vector<DiscoveredFact> round_facts;
      for (size_t i = 0; i < n_cand; ++i) {
        const double rank = Aggregate(options.rank_aggregation,
                                      subject_ranks[i], object_ranks[i]);
        if (rank <= static_cast<double>(options.top_n)) {
          DiscoveredFact fact;
          fact.triple = round_candidates[i];
          fact.rank = rank;
          fact.subject_rank = subject_ranks[i];
          fact.object_rank = object_ranks[i];
          round_facts.push_back(fact);
        }
      }
      const double ranking_seconds = ranking_span.Stop();
      out.evaluation_seconds += ranking_seconds;

      scheduler.Report(plan, round_candidates.size(), round_facts.size(),
                       ranking_seconds);
      for (const DiscoveredFact& fact : round_facts) {
        if (fact_seen.insert(PackTriple(fact.triple)).second) {
          out.facts.push_back(fact);
        }
      }

      if (options.on_round_complete) {
        AdaptiveRoundCompletion completion;
        completion.relation = r;
        completion.index = index;
        completion.record.round = plan.round;
        completion.record.arm = SamplingStrategyName(arm_strategy);
        completion.record.num_candidates = round_candidates.size();
        completion.record.facts = std::move(round_facts);
        options.on_round_complete(std::move(completion));
      }
    }

    if (metrics != nullptr) {
      candidates_counter->Increment(out.num_candidates);
      facts_counter->Increment(out.facts.size());
      // Same derived arithmetic as the fixed path, over the live rounds
      // only (replayed rounds did no scoring in this run).
      cache_misses_counter->Increment(unique_entries);
      cache_hits_counter->Increment(2 * live_candidates - unique_entries);
      relations_counter->Increment();
    }

    out.completed = true;
    if (options.on_relation_complete) {
      RelationCompletion completion;
      completion.relation = r;
      completion.index = index;
      completion.num_candidates = out.num_candidates;
      completion.facts = out.facts;
      options.on_relation_complete(std::move(completion));
    }
  };

  ParallelFor(
      pool, relations.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (adaptive) {
            process_relation_adaptive(i);
          } else {
            process_relation(i);
          }
        }
      },
      &run_cancel);
  const auto final_reason =
      static_cast<StoppedReason>(stop_reason.load(std::memory_order_acquire));

  DiscoveryResult result;
  result.stopped_reason = final_reason;
  // Hoisted weight time belongs to the weight phase only; seeding
  // generation_seconds with it (as this code once did) double-counted it.
  result.stats.weight_seconds = hoisted_weight_seconds;
  for (RelationOutcome& out : outcomes) {
    KGFD_RETURN_NOT_OK(out.status);
    // Unfinished relations on a stopped sweep — whether their checkpoint
    // bailed or their index was never claimed by the cancelled ParallelFor
    // — are uniformly "skipped".
    if (!out.completed) {
      ++result.stats.num_relations_skipped;
      continue;
    }
    result.facts.insert(result.facts.end(), out.facts.begin(),
                        out.facts.end());
    result.stats.num_candidates += out.num_candidates;
    result.stats.generation_seconds += out.generation_seconds;
    result.stats.evaluation_seconds += out.evaluation_seconds;
    result.stats.weight_seconds += out.weight_seconds;
    ++result.stats.num_relations_processed;
  }
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  result.stats.num_facts = result.facts.size();
  return result;
}

}  // namespace kgfd
