#ifndef KGFD_CORE_JOB_H_
#define KGFD_CORE_JOB_H_

#include <memory>
#include <string>

#include "core/discovery.h"
#include "kg/dataset.h"
#include "kge/evaluator.h"
#include "kge/model.h"
#include "kge/trainer.h"
#include "util/config_file.h"
#include "util/status.h"

namespace kgfd {

/// A declarative experiment job — the kgfd analogue of LibKGE's YAML job
/// definitions (the workflow the paper runs its study on): one config file
/// describes dataset, model, training and (optionally) discovery, and
/// RunJob executes the whole pipeline. Recognized keys:
///
///   dataset.preset    = FB15K-237 | WN18RR | YAGO3-10 | CoDEx-L
///   dataset.dir       = <path>      # alternative: load TSV directory
///   dataset.scale     = 100         # preset downscale divisor
///   model.type        = TransE | DistMult | ComplEx | RESCAL | HolE | ConvE
///   model.dim         = 32
///   train.epochs      = 25
///   train.batch_size  = 128
///   train.lr          = 0.03
///   train.loss        = margin_ranking | bce | softplus
///   train.negatives   = 2
///   train.mode        = negative_sampling | 1vsAll
///   train.bernoulli   = false
///   eval.enabled      = true
///   discovery.enabled = true
///   discovery.strategy        = <any strategy name; default is
///                               KGFD_DEFAULT_STRATEGY, else ENTITY_FREQUENCY>
///   discovery.top_n           = 500
///   discovery.max_candidates  = 500
///   discovery.type_filter     = false
///   discovery.max_candidate_memory_bytes = 1073741824
///   discovery.adaptive_rounds      = 8    # strategy=ADAPTIVE bandit rounds
///   discovery.adaptive_exploration = 0.5  # UCB1 exploration constant
///   seed              = 42
struct JobSpec {
  std::string dataset_preset = "FB15K-237";
  std::string dataset_dir;       // non-empty overrides the preset
  double dataset_scale = 100.0;
  ModelKind model = ModelKind::kTransE;
  size_t embedding_dim = 32;
  TrainerConfig trainer;
  bool run_eval = true;
  bool run_discovery = true;
  DiscoveryOptions discovery;
  uint64_t seed = 42;
  /// When set, RunJob wires this registry into training, evaluation and
  /// discovery (see src/obs/); not a config-file key — set it in code.
  MetricsRegistry* metrics = nullptr;
  /// When stoppable, RunJob threads this context into every phase (trainer,
  /// evaluators, discovery) and checks it between phases. A stop during
  /// training degrades gracefully (partial model, job continues only if the
  /// stop was observed *after* the phase boundary — otherwise RunJob
  /// returns Cancelled/DeadlineExceeded); a stop during eval or discovery
  /// surfaces that phase's semantics. Not a config-file key — set it in
  /// code.
  CancelContext cancel;

  /// Parses a config file; unknown keys are an error (typo safety).
  static Result<JobSpec> FromConfig(const ConfigFile& config);
};

/// Everything a job produces.
struct JobResult {
  std::string dataset_name;
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<Model> model;
  LinkPredictionMetrics test_metrics;  // valid iff spec.run_eval
  DiscoveryResult discovery;           // valid iff spec.run_discovery
};

/// Runs dataset acquisition -> training -> (evaluation) -> (discovery).
Result<JobResult> RunJob(const JobSpec& spec);

}  // namespace kgfd

#endif  // KGFD_CORE_JOB_H_
