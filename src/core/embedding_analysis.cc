#include "core/embedding_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kgfd {
namespace {

/// The entity table of a model: by convention every model names it
/// "entities" (ConvE shares input/output embeddings the same way).
Result<const Tensor*> EntityTable(const Model& model) {
  if (model.quantized_entities() != nullptr) {
    return Status::InvalidArgument(
        "embedding analysis needs float entity embeddings; this model was "
        "loaded from a quantized checkpoint (re-run against the original "
        "float checkpoint)");
  }
  // Parameters() is non-const by design (the optimizer mutates through
  // it); analysis only reads.
  auto& mutable_model = const_cast<Model&>(model);
  for (const NamedTensor& p : mutable_model.Parameters()) {
    if (p.name == "entities") return static_cast<const Tensor*>(p.tensor);
  }
  return Status::Internal("model exposes no 'entities' parameter");
}

double SquaredDistance(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

Result<std::vector<ScoredTriple>> QueryTopN(const Model& model,
                                            const TripleStore& kg,
                                            const Triple& partial,
                                            QuerySlot unknown, size_t n) {
  if (n == 0) return Status::InvalidArgument("n must be > 0");
  if (partial.relation >= model.num_relations()) {
    return Status::OutOfRange("relation id out of range");
  }
  const EntityId known = unknown == QuerySlot::kSubject ? partial.object
                                                        : partial.subject;
  if (known >= model.num_entities()) {
    return Status::OutOfRange("entity id out of range");
  }

  std::vector<double> scores;
  if (unknown == QuerySlot::kObject) {
    model.ScoreObjects(partial.subject, partial.relation, &scores);
  } else {
    model.ScoreSubjects(partial.relation, partial.object, &scores);
  }

  std::vector<ScoredTriple> candidates;
  candidates.reserve(scores.size());
  for (EntityId e = 0; e < scores.size(); ++e) {
    Triple t = partial;
    if (unknown == QuerySlot::kObject) {
      t.object = e;
    } else {
      t.subject = e;
    }
    if (kg.Contains(t)) continue;  // known facts are not discoveries
    candidates.push_back(ScoredTriple{t, scores[e]});
  }
  const size_t keep = std::min(n, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(),
                    [](const ScoredTriple& a, const ScoredTriple& b) {
                      return a.score > b.score;
                    });
  candidates.resize(keep);
  return candidates;
}

Result<std::vector<DuplicatePair>> FindDuplicates(const Model& model,
                                                  double threshold,
                                                  size_t max_entities,
                                                  uint64_t seed) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be >= 0");
  }
  KGFD_ASSIGN_OR_RETURN(const Tensor* entities, EntityTable(model));
  std::vector<EntityId> pool(entities->rows());
  for (EntityId e = 0; e < pool.size(); ++e) pool[e] = e;
  if (max_entities > 0 && pool.size() > max_entities) {
    Rng rng(seed);
    rng.Shuffle(&pool);
    pool.resize(max_entities);
    std::sort(pool.begin(), pool.end());
  }

  const double threshold_sq = threshold * threshold;
  std::vector<DuplicatePair> out;
  for (size_t i = 0; i < pool.size(); ++i) {
    const float* a = entities->Row(pool[i]);
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const double d2 =
          SquaredDistance(a, entities->Row(pool[j]), entities->cols());
      if (d2 <= threshold_sq) {
        out.push_back(DuplicatePair{pool[i], pool[j], std::sqrt(d2)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DuplicatePair& x, const DuplicatePair& y) {
              return x.distance < y.distance;
            });
  return out;
}

Result<std::vector<Neighbor>> FindNearestNeighbors(const Model& model,
                                                   EntityId entity,
                                                   size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  KGFD_ASSIGN_OR_RETURN(const Tensor* entities, EntityTable(model));
  if (entity >= entities->rows()) {
    return Status::OutOfRange("entity id out of range");
  }
  const float* query = entities->Row(entity);
  std::vector<Neighbor> all;
  all.reserve(entities->rows() - 1);
  for (EntityId e = 0; e < entities->rows(); ++e) {
    if (e == entity) continue;
    all.push_back(Neighbor{
        e, std::sqrt(SquaredDistance(query, entities->Row(e),
                                     entities->cols()))});
  }
  const size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance;
                    });
  all.resize(keep);
  return all;
}

Result<ClusteringResult> FindClusters(const Model& model, size_t k,
                                      size_t max_iterations,
                                      uint64_t seed) {
  KGFD_ASSIGN_OR_RETURN(const Tensor* entities, EntityTable(model));
  const size_t n = entities->rows();
  const size_t dim = entities->cols();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, num_entities]");
  }

  // k-means++ style seeding: first centroid uniform, the rest by squared
  // distance to the nearest chosen centroid.
  Rng rng(seed);
  ClusteringResult result;
  result.centroids.assign(k, std::vector<double>(dim, 0.0));
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<EntityId> chosen;
  {
    const EntityId first = static_cast<EntityId>(rng.UniformInt(n));
    chosen.push_back(first);
    for (size_t c = 1; c < k; ++c) {
      const float* last = entities->Row(chosen.back());
      double total = 0.0;
      for (size_t e = 0; e < n; ++e) {
        min_dist[e] = std::min(
            min_dist[e], SquaredDistance(entities->Row(e), last, dim));
        total += min_dist[e];
      }
      double target = rng.UniformDouble() * total;
      EntityId pick = static_cast<EntityId>(n - 1);
      for (size_t e = 0; e < n; ++e) {
        target -= min_dist[e];
        if (target <= 0.0) {
          pick = static_cast<EntityId>(e);
          break;
        }
      }
      chosen.push_back(pick);
    }
    for (size_t c = 0; c < k; ++c) {
      const float* row = entities->Row(chosen[c]);
      for (size_t i = 0; i < dim; ++i) result.centroids[c][i] = row[i];
    }
  }

  result.assignment.assign(n, 0);
  std::vector<size_t> counts(k, 0);
  for (size_t iteration = 0; iteration < max_iterations; ++iteration) {
    // Assign.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t e = 0; e < n; ++e) {
      const float* row = entities->Row(e);
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          const double d = static_cast<double>(row[i]) -
                           result.centroids[c][i];
          d2 += d * d;
        }
        if (d2 < best) {
          best = d2;
          best_c = static_cast<uint32_t>(c);
        }
      }
      if (result.assignment[e] != best_c) {
        result.assignment[e] = best_c;
        changed = true;
      }
      result.inertia += best;
    }
    result.iterations = iteration + 1;
    if (!changed && iteration > 0) break;
    // Update into fresh accumulators; an empty cluster keeps its previous
    // centroid.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t e = 0; e < n; ++e) {
      const float* row = entities->Row(e);
      auto& sum = sums[result.assignment[e]];
      for (size_t i = 0; i < dim; ++i) sum[i] += row[i];
      ++counts[result.assignment[e]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t i = 0; i < dim; ++i) {
        result.centroids[c][i] = sums[c][i] / static_cast<double>(counts[c]);
      }
    }
  }
  return result;
}

}  // namespace kgfd
