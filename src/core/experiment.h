#ifndef KGFD_CORE_EXPERIMENT_H_
#define KGFD_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "kg/dataset.h"
#include "kg/synthetic.h"
#include "kge/model.h"
#include "kge/trainer.h"
#include "util/status.h"

namespace kgfd {

/// Knobs shared by the paper-reproduction benches: which datasets (by scale),
/// which models, training setup and discovery hyperparameters. Defaults are
/// sized for a single-core CI run; raise --scale toward 1 to approach the
/// paper's full dataset sizes.
struct ExperimentConfig {
  /// Dataset downscale divisor (see synthetic.h); larger = smaller data.
  double scale = 150.0;
  size_t embedding_dim = 16;
  size_t epochs = 12;
  size_t batch_size = 128;
  size_t negatives_per_positive = 2;
  double learning_rate = 0.05;
  DiscoveryOptions discovery;
  std::vector<ModelKind> models = {ModelKind::kTransE, ModelKind::kDistMult,
                                   ModelKind::kComplEx, ModelKind::kRescal,
                                   ModelKind::kConvE};
  /// The paper's comparative columns; ComparativeStrategies() is the single
  /// source of truth shared with the CLI help text and the adaptive arm set.
  std::vector<SamplingStrategy> strategies = ComparativeStrategies();
  /// Appends the adaptive-subsystem cells (MODEL_SCORE, then ADAPTIVE) after
  /// the comparative columns, for the adaptive-vs-fixed comparison rows.
  /// Off by default so the paper-figure benches keep the paper's grid shape.
  bool include_adaptive = false;
  uint64_t seed = 42;
};

/// Per-model loss defaults mirroring common LibKGE practice: margin ranking
/// for the translational model, pointwise losses for the (convolutional)
/// bilinear family.
TrainerConfig DefaultTrainerConfig(ModelKind kind,
                                   const ExperimentConfig& config);

/// Model hyperparameters derived from a dataset + experiment config.
ModelConfig DefaultModelConfig(ModelKind kind, const Dataset& dataset,
                               const ExperimentConfig& config);

/// A trained model paired with its dataset, reused across strategies.
struct TrainedModel {
  ModelKind kind;
  std::unique_ptr<Model> model;
};

/// Trains every configured model on `dataset`.
Result<std::vector<TrainedModel>> TrainAllModels(
    const Dataset& dataset, const ExperimentConfig& config);

/// One (dataset, model, strategy) grid cell of the comparative study.
struct ExperimentCell {
  std::string dataset;
  std::string model;
  std::string strategy;
  std::string strategy_abbrev;
  DiscoveryStats stats;
  double mrr = 0.0;
};

/// Runs the full comparative grid of the paper's Section 4.2: every dataset
/// x model x strategy combination, returning one cell per run. This backs
/// Figures 2 (runtime), 4 (MRR) and 6 (efficiency).
Result<std::vector<ExperimentCell>> RunComparativeGrid(
    const ExperimentConfig& config);

/// Same grid over a single pre-generated dataset (used by the
/// hyperparameter benches that only look at FB15K-237 + TransE).
Result<std::vector<ExperimentCell>> RunGridOnDataset(
    const Dataset& dataset, const ExperimentConfig& config);

}  // namespace kgfd

#endif  // KGFD_CORE_EXPERIMENT_H_
