#include "core/report.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace kgfd {

std::vector<RelationDiscoverySummary> SummarizeByRelation(
    const std::vector<DiscoveredFact>& facts) {
  std::map<RelationId, std::vector<const DiscoveredFact*>> grouped;
  for (const DiscoveredFact& f : facts) {
    grouped[f.triple.relation].push_back(&f);
  }
  std::vector<RelationDiscoverySummary> out;
  out.reserve(grouped.size());
  for (const auto& [relation, group] : grouped) {
    RelationDiscoverySummary s;
    s.relation = relation;
    s.num_facts = group.size();
    s.best_rank = group.front()->rank;
    for (const DiscoveredFact* f : group) {
      s.best_rank = std::min(s.best_rank, f->rank);
      s.mean_rank += f->rank;
      s.mrr += 1.0 / f->rank;
    }
    s.mean_rank /= static_cast<double>(group.size());
    s.mrr /= static_cast<double>(group.size());
    out.push_back(s);
  }
  return out;
}

namespace {

std::string NameOf(const Vocabulary& vocab, uint32_t id) {
  auto result = vocab.Name(id);
  return result.ok() ? std::move(result).value() : std::to_string(id);
}

}  // namespace

std::string FormatFactsTsv(const std::vector<DiscoveredFact>& facts,
                           const Vocabulary& entities,
                           const Vocabulary& relations) {
  // Default ostream double formatting, deliberately: it matches what every
  // historical writer used, so goldens stay byte-stable.
  std::ostringstream out;
  for (const DiscoveredFact& f : facts) {
    out << NameOf(entities, f.triple.subject) << '\t'
        << NameOf(relations, f.triple.relation) << '\t'
        << NameOf(entities, f.triple.object) << '\t' << f.rank << '\n';
  }
  return std::move(out).str();
}

Status WriteFactsTsv(const std::string& path,
                     const std::vector<DiscoveredFact>& facts,
                     const Vocabulary& entities,
                     const Vocabulary& relations) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string tsv = FormatFactsTsv(facts, entities, relations);
  out.write(tsv.data(), static_cast<std::streamsize>(tsv.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<DiscoveredFact>> ReadFactsTsv(const std::string& path,
                                                 Vocabulary* entities,
                                                 Vocabulary* relations) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<DiscoveredFact> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 4) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 4 tab-separated fields");
    }
    DiscoveredFact fact;
    fact.triple.subject = entities->AddOrGet(Trim(fields[0]));
    fact.triple.relation = relations->AddOrGet(Trim(fields[1]));
    fact.triple.object = entities->AddOrGet(Trim(fields[2]));
    char* end = nullptr;
    fact.rank = std::strtod(fields[3].c_str(), &end);
    if (end == fields[3].c_str()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": bad rank value");
    }
    out.push_back(fact);
  }
  return out;
}

}  // namespace kgfd
