#ifndef KGFD_CORE_TYPE_FILTER_H_
#define KGFD_CORE_TYPE_FILTER_H_

#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"

namespace kgfd {

/// CHAI-style rule-based candidate filter (Borrego et al. 2019, the
/// complement the paper's §5.1 suggests pairing with sampling-based
/// discovery): rejects candidates that are "illogical" with respect to the
/// relation's observed signature. Without an explicit ontology, the domain
/// and range of each relation are induced from the training graph — the
/// entities seen as its subjects and objects. A candidate (s, r, o) is
/// admissible iff s was ever a subject of r and o ever an object of r.
///
/// This prunes type-nonsense like (disease, treats, drug) in a biomedical
/// KG where `treats` only ever links drugs to diseases, at the cost of
/// never proposing a relation for an entity outside its observed signature
/// (a deliberate precision/recall trade governed by `enabled`).
class RelationTypeFilter {
 public:
  /// Learns the per-relation domain/range signatures from `kg`.
  explicit RelationTypeFilter(const TripleStore& kg);

  /// True if the candidate respects the relation's observed signature.
  bool Admissible(const Triple& t) const {
    return domain_[t.relation][t.subject] != 0 &&
           range_[t.relation][t.object] != 0;
  }

  /// Number of entities in the observed domain/range of `r`.
  size_t DomainSize(RelationId r) const { return domain_size_[r]; }
  size_t RangeSize(RelationId r) const { return range_size_[r]; }

 private:
  // relation -> byte-per-entity membership (dense; relations x entities is
  // small at the scales this library targets, and lookups are O(1)).
  std::vector<std::vector<char>> domain_;
  std::vector<std::vector<char>> range_;
  std::vector<size_t> domain_size_;
  std::vector<size_t> range_size_;
};

}  // namespace kgfd

#endif  // KGFD_CORE_TYPE_FILTER_H_
