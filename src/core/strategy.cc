#include "core/strategy.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "graph/adjacency.h"
#include "graph/metrics.h"
#include "graph/pagerank.h"
#include "kg/kg_stats.h"

namespace kgfd {

const char* SamplingStrategyName(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kUniformRandom:
      return "UNIFORM_RANDOM";
    case SamplingStrategy::kEntityFrequency:
      return "ENTITY_FREQUENCY";
    case SamplingStrategy::kGraphDegree:
      return "GRAPH_DEGREE";
    case SamplingStrategy::kClusteringCoefficient:
      return "CLUSTERING_COEFFICIENT";
    case SamplingStrategy::kClusteringTriangles:
      return "CLUSTERING_TRIANGLES";
    case SamplingStrategy::kClusteringSquares:
      return "CLUSTERING_SQUARES";
    case SamplingStrategy::kInverseDegree:
      return "INVERSE_DEGREE";
    case SamplingStrategy::kExplorationMixture:
      return "EXPLORATION_MIXTURE";
    case SamplingStrategy::kPageRank:
      return "PAGERANK";
    case SamplingStrategy::kModelScore:
      return "MODEL_SCORE";
    case SamplingStrategy::kAdaptive:
      return "ADAPTIVE";
  }
  return "UNKNOWN";
}

const char* SamplingStrategyAbbrev(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kUniformRandom:
      return "UR";
    case SamplingStrategy::kEntityFrequency:
      return "EF";
    case SamplingStrategy::kGraphDegree:
      return "GD";
    case SamplingStrategy::kClusteringCoefficient:
      return "CC";
    case SamplingStrategy::kClusteringTriangles:
      return "CT";
    case SamplingStrategy::kClusteringSquares:
      return "CS";
    case SamplingStrategy::kInverseDegree:
      return "ID";
    case SamplingStrategy::kExplorationMixture:
      return "EX";
    case SamplingStrategy::kPageRank:
      return "PR";
    case SamplingStrategy::kModelScore:
      return "MS";
    case SamplingStrategy::kAdaptive:
      return "AD";
  }
  return "??";
}

const std::vector<SamplingStrategy>& AllSamplingStrategies() {
  static const std::vector<SamplingStrategy> all = {
      SamplingStrategy::kUniformRandom,
      SamplingStrategy::kEntityFrequency,
      SamplingStrategy::kGraphDegree,
      SamplingStrategy::kClusteringCoefficient,
      SamplingStrategy::kClusteringTriangles,
      SamplingStrategy::kClusteringSquares,
      SamplingStrategy::kInverseDegree,
      SamplingStrategy::kExplorationMixture,
      SamplingStrategy::kPageRank,
      SamplingStrategy::kModelScore,
      SamplingStrategy::kAdaptive,
  };
  return all;
}

std::string SamplingStrategyNameList() {
  std::string joined;
  for (SamplingStrategy s : AllSamplingStrategies()) {
    if (!joined.empty()) joined += ", ";
    joined += SamplingStrategyName(s);
  }
  return joined;
}

Result<SamplingStrategy> SamplingStrategyFromName(const std::string& name) {
  for (SamplingStrategy s : AllSamplingStrategies()) {
    if (name == SamplingStrategyName(s) || name == SamplingStrategyAbbrev(s)) {
      return s;
    }
  }
  return Status::NotFound("unknown sampling strategy: " + name +
                          " (valid: " + SamplingStrategyNameList() + ")");
}

std::vector<SamplingStrategy> ComparativeStrategies() {
  return {SamplingStrategy::kUniformRandom, SamplingStrategy::kEntityFrequency,
          SamplingStrategy::kGraphDegree,
          SamplingStrategy::kClusteringCoefficient,
          SamplingStrategy::kClusteringTriangles};
}

SamplingStrategy DefaultSamplingStrategy() {
  const char* env = std::getenv("KGFD_DEFAULT_STRATEGY");
  if (env == nullptr || env[0] == '\0') {
    return SamplingStrategy::kEntityFrequency;
  }
  auto parsed = SamplingStrategyFromName(env);
  // Unknown values were rejected at startup by ValidateDefaultStrategyEnv;
  // fall back defensively for library users that skipped validation.
  return parsed.ok() ? parsed.value() : SamplingStrategy::kEntityFrequency;
}

Status ValidateDefaultStrategyEnv() {
  const char* env = std::getenv("KGFD_DEFAULT_STRATEGY");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  const auto parsed = SamplingStrategyFromName(env);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        "KGFD_DEFAULT_STRATEGY=" + std::string(env) + ": " +
        parsed.status().message());
  }
  return Status::OK();
}

namespace {

/// Builds a one-pool-for-both-sides StrategyWeights from per-node topology
/// metrics, falling back to the uniform distribution over all entities when
/// the metric is identically zero (paper formulas would divide by zero).
template <typename MetricVector>
StrategyWeights FromNodeMetric(const TripleStore& kg,
                               const MetricVector& metric) {
  StrategyWeights w;
  const size_t n = kg.num_entities();
  w.subject_pool.resize(n);
  std::iota(w.subject_pool.begin(), w.subject_pool.end(), 0);
  w.object_pool = w.subject_pool;
  double total = 0.0;
  w.subject_weights.resize(n);
  for (size_t i = 0; i < n; ++i) {
    w.subject_weights[i] = static_cast<double>(metric[i]);
    total += w.subject_weights[i];
  }
  if (total <= 0.0) {
    std::fill(w.subject_weights.begin(), w.subject_weights.end(),
              1.0 / static_cast<double>(n));
    w.fell_back_to_uniform = true;
  } else {
    for (double& v : w.subject_weights) v /= total;
  }
  w.object_weights = w.subject_weights;
  return w;
}

}  // namespace

Result<StrategyWeights> ComputeStrategyWeights(SamplingStrategy strategy,
                                               const TripleStore& kg) {
  if (kg.size() == 0) {
    return Status::InvalidArgument("cannot compute weights on an empty KG");
  }
  switch (strategy) {
    case SamplingStrategy::kUniformRandom: {
      // weight(x, side) = 1 / len(side)  (Eq. 1)
      const SideCounts counts = ComputeSideCounts(kg);
      StrategyWeights w;
      w.subject_pool = counts.unique_subjects;
      w.object_pool = counts.unique_objects;
      w.subject_weights.assign(
          w.subject_pool.size(),
          1.0 / static_cast<double>(w.subject_pool.size()));
      w.object_weights.assign(
          w.object_pool.size(),
          1.0 / static_cast<double>(w.object_pool.size()));
      return w;
    }
    case SamplingStrategy::kEntityFrequency: {
      // weight(x, side) = count(x, side) / len(side)  (Eq. 2), where
      // len(side) is the number of triples on that side — every triple
      // contributes exactly one subject and one object, so len(side) ==
      // kg.size() for both sides and each side's weights sum to 1. (An
      // earlier version divided by the unique-entity pool size instead,
      // leaving the weights unnormalized.)
      const SideCounts counts = ComputeSideCounts(kg);
      const double len_side = static_cast<double>(kg.size());
      StrategyWeights w;
      w.subject_pool = counts.unique_subjects;
      w.object_pool = counts.unique_objects;
      w.subject_weights.reserve(w.subject_pool.size());
      for (EntityId e : w.subject_pool) {
        w.subject_weights.push_back(
            static_cast<double>(counts.subject_count[e]) / len_side);
      }
      w.object_weights.reserve(w.object_pool.size());
      for (EntityId e : w.object_pool) {
        w.object_weights.push_back(
            static_cast<double>(counts.object_count[e]) / len_side);
      }
      return w;
    }
    case SamplingStrategy::kGraphDegree: {
      // weight(x) = deg(x) / sum deg  (Eq. 3)
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      return FromNodeMetric(kg, Degrees(adj));
    }
    case SamplingStrategy::kClusteringTriangles: {
      // weight(x) = T(x) / sum T  (Eq. 4)
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      return FromNodeMetric(kg, LocalTriangleCounts(adj));
    }
    case SamplingStrategy::kClusteringCoefficient: {
      // weight(x) = c(x) / sum c  (Eq. 5)
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      return FromNodeMetric(kg, LocalClusteringCoefficients(adj));
    }
    case SamplingStrategy::kClusteringSquares: {
      // weight(x) = c4(x) / sum c4  (Eq. 6)
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      return FromNodeMetric(kg, SquareClusteringCoefficients(adj));
    }
    case SamplingStrategy::kInverseDegree: {
      // Extension: weight(x) ∝ 1/deg(x) over connected entities. Isolated
      // entities stay at weight 0 — the model has never seen them, so
      // proposing facts about them is pure noise.
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      const std::vector<uint64_t> degrees = Degrees(adj);
      std::vector<double> inverse(degrees.size(), 0.0);
      for (size_t i = 0; i < degrees.size(); ++i) {
        if (degrees[i] > 0) inverse[i] = 1.0 / static_cast<double>(degrees[i]);
      }
      return FromNodeMetric(kg, inverse);
    }
    case SamplingStrategy::kExplorationMixture: {
      // Extension: ε-greedy mixture, ε = 0.5 — half uniform over connected
      // entities, half proportional to degree.
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      const std::vector<uint64_t> degrees = Degrees(adj);
      double degree_total = 0.0;
      size_t connected = 0;
      for (uint64_t d : degrees) {
        degree_total += static_cast<double>(d);
        if (d > 0) ++connected;
      }
      std::vector<double> mixed(degrees.size(), 0.0);
      for (size_t i = 0; i < degrees.size(); ++i) {
        if (degrees[i] == 0) continue;
        mixed[i] = 0.5 / static_cast<double>(connected) +
                   0.5 * static_cast<double>(degrees[i]) /
                       std::max(1.0, degree_total);
      }
      return FromNodeMetric(kg, mixed);
    }
    case SamplingStrategy::kPageRank: {
      // Extension: weight(x) ∝ PageRank(x) on the undirected projection.
      const Adjacency adj = Adjacency::FromTripleStore(kg);
      return FromNodeMetric(kg, PageRank(adj));
    }
    case SamplingStrategy::kModelScore:
      // Model-aware: the weights come from the score sketch, which needs the
      // trained model — DiscoverFacts (or DiscoveryCache) computes them via
      // adaptive/score_sketch.h, never through this KG-only entry point.
      return Status::InvalidArgument(
          "MODEL_SCORE weights require the trained model; they are computed "
          "inside DiscoverFacts (adaptive/score_sketch.h), not from the KG "
          "alone");
    case SamplingStrategy::kAdaptive:
      return Status::InvalidArgument(
          "ADAPTIVE is a budget scheduler over other strategies "
          "(adaptive/scheduler.h), not a weighting; it has no weights of "
          "its own");
  }
  return Status::InvalidArgument("unhandled strategy");
}

}  // namespace kgfd
