#ifndef KGFD_CORE_EMBEDDING_ANALYSIS_H_
#define KGFD_CORE_EMBEDDING_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"
#include "kge/model.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgfd {

/// Companions of DiscoverFacts mirroring the rest of AmpliGraph's Discovery
/// API (the library whose discover_facts the paper evaluates): top-n
/// completion of partial triples, embedding-space duplicate detection, and
/// embedding-space clustering.

/// A scored completion of a partial triple.
struct ScoredTriple {
  Triple triple;
  double score = 0.0;
};

/// Which slot of the query triple is unknown.
enum class QuerySlot { kSubject, kObject };

/// Top-n completions of a partial triple (s, r, ?) or (?, r, o) by model
/// score, descending. Entities already forming a known triple in `kg` are
/// skipped (the caller wants *new* facts). n is clamped to the number of
/// admissible entities.
Result<std::vector<ScoredTriple>> QueryTopN(const Model& model,
                                            const TripleStore& kg,
                                            const Triple& partial,
                                            QuerySlot unknown, size_t n);

/// A pair of entities whose embeddings are closer than a threshold.
struct DuplicatePair {
  EntityId a = 0;
  EntityId b = 0;
  double distance = 0.0;
};

/// Finds entity pairs with L2 embedding distance below `threshold` —
/// AmpliGraph's find_duplicates: near-identical embeddings usually indicate
/// duplicate real-world entities. O(n^2) over the sampled candidate set:
/// `max_entities` entities are considered (0 = all), sampled uniformly with
/// `seed` when the entity count exceeds the cap.
Result<std::vector<DuplicatePair>> FindDuplicates(const Model& model,
                                                  double threshold,
                                                  size_t max_entities = 0,
                                                  uint64_t seed = 1);

/// A neighbor of a query entity in embedding space.
struct Neighbor {
  EntityId entity = 0;
  double distance = 0.0;
};

/// The k entities with smallest L2 embedding distance to `entity`
/// (excluding itself), ascending by distance — AmpliGraph's
/// find_nearest_neighbours. k is clamped to num_entities - 1.
Result<std::vector<Neighbor>> FindNearestNeighbors(const Model& model,
                                                   EntityId entity,
                                                   size_t k);

/// K-means clustering of entity embeddings (AmpliGraph's find_clusters).
struct ClusteringResult {
  /// cluster id per entity, in [0, k).
  std::vector<uint32_t> assignment;
  /// k x dim centroids, row-major.
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  size_t iterations = 0;
};

Result<ClusteringResult> FindClusters(const Model& model, size_t k,
                                      size_t max_iterations = 50,
                                      uint64_t seed = 1);

}  // namespace kgfd

#endif  // KGFD_CORE_EMBEDDING_ANALYSIS_H_
