#ifndef KGFD_CORE_STRATEGY_H_
#define KGFD_CORE_STRATEGY_H_

#include <string>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"
#include "util/status.h"

namespace kgfd {

/// The six candidate-sampling strategies evaluated by the paper (AmpliGraph
/// discover_facts strategies), plus two exploration-oriented extensions
/// implementing the paper's §6 future-work direction ("explore the sparse
/// areas of KGs" / long-tail entities):
///   * INVERSE_DEGREE — weight ∝ 1/deg(x) over connected entities, the
///     mirror image of GRAPH_DEGREE (pure exploration).
///   * EXPLORATION_MIXTURE — an ε-greedy blend: with ε = 0.5, half the
///     probability mass is uniform over connected entities (explore) and
///     half proportional to degree (exploit).
///   * PAGERANK — weight ∝ PageRank over the undirected projection, a
///     smoother popularity metric than raw degree.
///
/// Two further model-aware strategies back the adaptive sampling subsystem
/// (src/adaptive/):
///   * MODEL_SCORE — weight from a one-time per-(model, KG) score sketch:
///     probe scoring passes through the batch kernels credit the entities
///     the model itself ranks highly (see adaptive/score_sketch.h). The
///     only strategy whose weights depend on the model, so
///     ComputeStrategyWeights rejects it — DiscoverFacts computes (or
///     fetches from DiscoveryCache) the sketch itself.
///   * ADAPTIVE — not a weighting at all: a per-relation UCB1 bandit
///     (adaptive/scheduler.h) splits max_candidates into rounds and
///     reallocates budget across the comparative strategies + MODEL_SCORE
///     by observed reward.
enum class SamplingStrategy {
  kUniformRandom,
  kEntityFrequency,
  kGraphDegree,
  kClusteringCoefficient,
  kClusteringTriangles,
  kClusteringSquares,
  kInverseDegree,
  kExplorationMixture,
  kPageRank,
  kModelScore,
  kAdaptive,
};

/// Canonical name, e.g. "ENTITY_FREQUENCY".
const char* SamplingStrategyName(SamplingStrategy strategy);
/// Two-letter label used by the paper's figures (UR, EF, GD, CC, CT, CS).
const char* SamplingStrategyAbbrev(SamplingStrategy strategy);
/// Accepts canonical names and abbreviations; the error message lists every
/// valid name so a typo'd CLI flag or job-config value is self-explaining.
Result<SamplingStrategy> SamplingStrategyFromName(const std::string& name);

/// Every strategy, in enum order — the single source of truth behind
/// SamplingStrategyFromName's error listing and the CLI --strategy help.
const std::vector<SamplingStrategy>& AllSamplingStrategies();

/// Comma-separated canonical names of AllSamplingStrategies() (for help
/// text and error messages).
std::string SamplingStrategyNameList();

/// The five strategies of the paper's comparative study (CLUSTERING_SQUARES
/// is excluded there for inefficiency, reproduced by bench_squares_exclusion).
/// The single source of truth for the experiment grid; the adaptive bandit's
/// arm set is this list + MODEL_SCORE (adaptive/scheduler.h).
std::vector<SamplingStrategy> ComparativeStrategies();

/// The strategy front ends (kgfd_cli, kgfd_server job parsing) fall back to
/// when a request names none: KGFD_DEFAULT_STRATEGY if set (any name
/// SamplingStrategyFromName accepts), ENTITY_FREQUENCY otherwise. Library
/// callers are unaffected — DiscoveryOptions keeps its compiled-in default.
SamplingStrategy DefaultSamplingStrategy();

/// Startup validation mirroring ValidateKernelBackendEnv(): a typo'd
/// KGFD_DEFAULT_STRATEGY is a clean error at launch, not a surprise
/// ENTITY_FREQUENCY run hours later.
Status ValidateDefaultStrategyEnv();

/// Per-side sampling pools and weights, the output of the paper's
/// compute_weights(): entity pools with parallel unnormalized weights.
/// Side-aware strategies (UNIFORM_RANDOM, ENTITY_FREQUENCY) restrict each
/// side's pool to the entities seen on that side and may weight an entity
/// differently per side; graph-topology strategies use one pool of all
/// entities with identical weights on both sides.
struct StrategyWeights {
  std::vector<EntityId> subject_pool;
  std::vector<double> subject_weights;
  std::vector<EntityId> object_pool;
  std::vector<double> object_weights;
  /// Set when every topology weight was zero (e.g. a triangle-free graph
  /// under CLUSTERING_TRIANGLES) and the pool fell back to uniform.
  bool fell_back_to_uniform = false;
};

/// Computes the sampling weights of `strategy` over the training graph.
/// Deliberately performs the full metric computation on each call: the
/// paper's Algorithm 1 invokes compute_weights() inside the per-relation
/// loop, which is precisely why the triangle-based strategies dominate
/// runtime (Fig. 2). Callers wanting the cached ablation compute once and
/// reuse (see DiscoveryOptions::cache_weights).
Result<StrategyWeights> ComputeStrategyWeights(SamplingStrategy strategy,
                                               const TripleStore& kg);

}  // namespace kgfd

#endif  // KGFD_CORE_STRATEGY_H_
