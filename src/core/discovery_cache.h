#ifndef KGFD_CORE_DISCOVERY_CACHE_H_
#define KGFD_CORE_DISCOVERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/side_score_cache.h"
#include "core/strategy.h"
#include "kg/triple_store.h"
#include "util/alias_sampler.h"
#include "util/status.h"

namespace kgfd {

class MetricsRegistry;
class Counter;

/// Metric names recorded when a DiscoveryCache is constructed with a
/// registry. Weight hits count relations served from a cached strategy
/// computation; score hits/misses count side-score entries served from /
/// absent in the cross-run store.
inline constexpr char kSharedWeightsHitsCounter[] =
    "discovery.shared_weights.hits";
inline constexpr char kSharedWeightsMissesCounter[] =
    "discovery.shared_weights.misses";
inline constexpr char kSharedScoresHitsCounter[] =
    "discovery.shared_scores.hits";
inline constexpr char kSharedScoresMissesCounter[] =
    "discovery.shared_scores.misses";
/// Model-score sketch (MODEL_SCORE strategy) served from / absent in the
/// cache. A hit skips the whole probe-pass precompute.
inline constexpr char kSketchHitsCounter[] = "discovery.sketch.hits";
inline constexpr char kSketchMissesCounter[] = "discovery.sketch.misses";

/// Cross-run cache of the two most expensive reusable artifacts of
/// DiscoverFacts:
///
///  * strategy weights — ComputeStrategyWeights output plus the built alias
///    samplers, keyed by strategy (weights depend only on the KG);
///  * side-score entries — full ScoreObjects/ScoreSubjects passes, keyed by
///    (entity, relation, filtered protocol), exactly the SideScoreCache
///    entries a discovery run computes per relation.
///
/// Both artifacts are deterministic functions of (model, KG), so serving
/// them from cache leaves discovered facts bit-identical to a cold run —
/// the discovery server relies on this to keep HTTP job output
/// byte-identical to kgfd_cli while amortizing work across requests.
///
/// An instance is only valid for a FIXED (model, KG) pair. The owner (the
/// server's job manager) keys instances by the model/KG fingerprint of
/// core/resume.h (HashModelParameters + graph shape) and must never share
/// one across fingerprints; DiscoverFacts trusts the pairing.
///
/// All methods are thread-safe; entries are immutable once published, so
/// fetched shared_ptrs stay valid without holding any lock.
class DiscoveryCache {
 public:
  /// When `metrics` is non-null, hit/miss counters (names above) are
  /// recorded there for the lifetime of the cache.
  explicit DiscoveryCache(MetricsRegistry* metrics = nullptr);

  /// One strategy's sampling state, computed once and shared by every
  /// relation of every run that uses the strategy.
  struct WeightsEntry {
    StrategyWeights weights;
    AliasSampler subject_sampler;
    AliasSampler object_sampler;
  };

  /// Returns the cached entry for `strategy`, computing (weights + both
  /// samplers) on first use. Concurrent callers for the same strategy
  /// serialize on the first computation and then share one entry.
  Result<std::shared_ptr<const WeightsEntry>> GetOrComputeWeights(
      SamplingStrategy strategy, const TripleStore& kg);

  /// MODEL_SCORE counterpart: computes the score sketch (one probe-pass
  /// sweep through the batch kernels, adaptive/score_sketch.h) on first use
  /// and caches the resulting weights + samplers like any other strategy.
  /// The sketch is a deterministic function of (model, KG) — exactly the
  /// pair this cache instance is keyed by (HashModelParameters ⊕ KG
  /// fingerprint), so one instance never mixes sketches of two models.
  Result<std::shared_ptr<const WeightsEntry>> GetOrComputeModelScoreWeights(
      const Model& model, const TripleStore& kg);

  /// Copies cached object-side entries for `keys` into `local` and appends
  /// the keys without a cached entry to `missing` (preserving `keys`
  /// order). Returns the number of hits.
  size_t FetchObjects(const std::vector<SideScoreCache::Key>& keys,
                      bool filtered, SideScoreCache* local,
                      std::vector<SideScoreCache::Key>* missing);
  /// Subject-side counterpart ((object, relation) keys).
  size_t FetchSubjects(const std::vector<SideScoreCache::Key>& keys,
                       bool filtered, SideScoreCache* local,
                       std::vector<SideScoreCache::Key>* missing);

  /// Copies `local`'s entries for `keys` into the store. First writer wins;
  /// keys without a local entry (a cancelled precompute) are skipped.
  void PublishObjects(const std::vector<SideScoreCache::Key>& keys,
                      bool filtered, const SideScoreCache& local);
  void PublishSubjects(const std::vector<SideScoreCache::Key>& keys,
                       bool filtered, const SideScoreCache& local);

  size_t num_weight_entries() const;
  size_t num_score_entries() const;
  uint64_t weights_hits() const { return weights_hits_n_; }
  uint64_t scores_hits() const { return scores_hits_n_; }

 private:
  using ScoreMap =
      std::unordered_map<uint64_t,
                         std::shared_ptr<const SideScoreCache::Entry>>;

  static uint64_t PackKey(const SideScoreCache::Key& key) {
    return (static_cast<uint64_t>(key.second) << 32) |
           static_cast<uint64_t>(key.first);
  }

  size_t Fetch(const std::vector<SideScoreCache::Key>& keys, bool filtered,
               bool object_side, SideScoreCache* local,
               std::vector<SideScoreCache::Key>* missing);
  void Publish(const std::vector<SideScoreCache::Key>& keys, bool filtered,
               bool object_side, const SideScoreCache& local);

  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<const WeightsEntry>> weights_;
  /// Indexed [object_side][filtered]: the filtered protocol changes an
  /// entry's `excluded` mask, so the two protocols never share entries.
  ScoreMap scores_[2][2];

  Counter* weights_hits_ = nullptr;
  Counter* weights_misses_ = nullptr;
  Counter* scores_hits_ = nullptr;
  Counter* scores_misses_ = nullptr;
  Counter* sketch_hits_ = nullptr;
  Counter* sketch_misses_ = nullptr;
  std::atomic<uint64_t> weights_hits_n_{0};
  std::atomic<uint64_t> scores_hits_n_{0};
};

}  // namespace kgfd

#endif  // KGFD_CORE_DISCOVERY_CACHE_H_
