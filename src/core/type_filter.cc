#include "core/type_filter.h"

namespace kgfd {

RelationTypeFilter::RelationTypeFilter(const TripleStore& kg)
    : domain_(kg.num_relations(),
              std::vector<char>(kg.num_entities(), 0)),
      range_(kg.num_relations(), std::vector<char>(kg.num_entities(), 0)),
      domain_size_(kg.num_relations(), 0),
      range_size_(kg.num_relations(), 0) {
  for (const Triple& t : kg.triples()) {
    if (domain_[t.relation][t.subject] == 0) {
      domain_[t.relation][t.subject] = 1;
      ++domain_size_[t.relation];
    }
    if (range_[t.relation][t.object] == 0) {
      range_[t.relation][t.object] = 1;
      ++range_size_[t.relation];
    }
  }
}

}  // namespace kgfd
