#include "core/side_score_cache.h"

#include <algorithm>
#include <unordered_set>

#include "kge/kernels.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace kgfd {

SideScoreCache::Entry SideScoreCache::MakeObjectsEntry(const Model& model,
                                                       const TripleStore& kg,
                                                       EntityId s,
                                                       RelationId r,
                                                       bool filtered) {
  Entry entry;
  model.ScoreObjects(s, r, &entry.scores);
  entry.excluded.assign(entry.scores.size(), 0);
  if (filtered) {
    for (EntityId o : kg.ObjectsOf(s, r)) entry.excluded[o] = 1;
  }
  return entry;
}

SideScoreCache::Entry SideScoreCache::MakeSubjectsEntry(const Model& model,
                                                        const TripleStore& kg,
                                                        RelationId r,
                                                        EntityId o,
                                                        bool filtered) {
  Entry entry;
  model.ScoreSubjects(r, o, &entry.scores);
  entry.excluded.assign(entry.scores.size(), 0);
  if (filtered) {
    for (EntityId s : kg.SubjectsOf(r, o)) entry.excluded[s] = 1;
  }
  return entry;
}

const SideScoreCache::Entry& SideScoreCache::ObjectsEntry(
    const Model& model, const TripleStore& kg, EntityId s, RelationId r,
    bool filtered) {
  const uint64_t key = PackKey(s, r);
  auto it = by_subject_.find(key);
  if (it != by_subject_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return by_subject_
      .emplace(key, MakeObjectsEntry(model, kg, s, r, filtered))
      .first->second;
}

const SideScoreCache::Entry& SideScoreCache::SubjectsEntry(
    const Model& model, const TripleStore& kg, RelationId r, EntityId o,
    bool filtered) {
  const uint64_t key = PackKey(o, r);
  auto it = by_object_.find(key);
  if (it != by_object_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return by_object_
      .emplace(key, MakeSubjectsEntry(model, kg, r, o, filtered))
      .first->second;
}

namespace {

/// Shared shape of both Precompute* calls: score the not-yet-cached keys
/// through the model's batch API into fixed slots on the pool, then insert
/// serially (the map itself is not thread-safe).
///
/// Both cache sides store Key as (entity, relation) with exactly the entity
/// the batch API wants (subject for the object side, object for the subject
/// side), so one SideQuery construction serves both; only `fill_excluded`
/// differs. Scoring walks each ParallelFor chunk in kernels::kQueryBlock
/// sub-blocks — one kernel invocation per sub-block instead of one virtual
/// ScoreObjects call per key — with a cancel probe between sub-blocks so a
/// stop request never waits on more than one block of scoring.
template <typename BatchScore, typename FillExcluded>
size_t PrecomputeInto(std::unordered_map<uint64_t, SideScoreCache::Entry>* map,
                      const std::vector<SideScoreCache::Key>& keys,
                      uint64_t (*pack)(const SideScoreCache::Key&),
                      const BatchScore& batch_score,
                      const FillExcluded& fill_excluded, ThreadPool* pool,
                      const CancelContext* cancel) {
  std::vector<const SideScoreCache::Key*> fresh;
  fresh.reserve(keys.size());
  std::unordered_set<uint64_t> batch;  // dedup within this key list too
  for (const SideScoreCache::Key& key : keys) {
    const uint64_t packed = pack(key);
    if (map->find(packed) == map->end() && batch.insert(packed).second) {
      fresh.push_back(&key);
    }
  }
  const bool stoppable = cancel != nullptr && cancel->CanStop();
  std::vector<SideScoreCache::Entry> entries(fresh.size());
  ParallelFor(
      pool, fresh.size(),
      [&](size_t begin, size_t end) {
        SideQuery queries[kernels::kQueryBlock];
        std::vector<double>* outs[kernels::kQueryBlock];
        for (size_t block = begin; block < end;
             block += kernels::kQueryBlock) {
          if (stoppable && cancel->StopReason() != StoppedReason::kNone) {
            return;
          }
          const size_t block_end =
              std::min(block + kernels::kQueryBlock, end);
          for (size_t i = block; i < block_end; ++i) {
            queries[i - block] = SideQuery{fresh[i]->first, fresh[i]->second};
            outs[i - block] = &entries[i].scores;
          }
          batch_score(queries, block_end - block, outs);
          for (size_t i = block; i < block_end; ++i) {
            fill_excluded(*fresh[i], &entries[i]);
          }
        }
      },
      cancel, kernels::kQueryBlock);
  // A cancelled ParallelFor leaves later slots untouched; only insert
  // entries that were actually scored so lookups for the rest keep missing
  // (an empty cached entry would read as "no competitors").
  size_t inserted = 0;
  for (size_t i = 0; i < fresh.size(); ++i) {
    if (entries[i].scores.empty()) continue;
    map->emplace(pack(*fresh[i]), std::move(entries[i]));
    ++inserted;
  }
  return inserted;
}

}  // namespace

size_t SideScoreCache::PrecomputeObjects(const Model& model,
                                         const TripleStore& kg,
                                         const std::vector<Key>& keys,
                                         bool filtered, ThreadPool* pool,
                                         const CancelContext* cancel) {
  return PrecomputeInto(
      &by_subject_, keys,
      +[](const Key& k) { return PackKey(k.first, k.second); },
      [&](const SideQuery* queries, size_t n,
          std::vector<double>* const* outs) {
        model.ScoreObjectsBatch(queries, n, outs);
      },
      [&](const Key& k, Entry* entry) {
        entry->excluded.assign(entry->scores.size(), 0);
        if (filtered) {
          for (EntityId o : kg.ObjectsOf(k.first, k.second)) {
            entry->excluded[o] = 1;
          }
        }
      },
      pool, cancel);
}

size_t SideScoreCache::PrecomputeSubjects(const Model& model,
                                          const TripleStore& kg,
                                          const std::vector<Key>& keys,
                                          bool filtered, ThreadPool* pool,
                                          const CancelContext* cancel) {
  return PrecomputeInto(
      &by_object_, keys,
      +[](const Key& k) { return PackKey(k.first, k.second); },
      [&](const SideQuery* queries, size_t n,
          std::vector<double>* const* outs) {
        model.ScoreSubjectsBatch(queries, n, outs);
      },
      [&](const Key& k, Entry* entry) {
        entry->excluded.assign(entry->scores.size(), 0);
        if (filtered) {
          for (EntityId s : kg.SubjectsOf(k.second, k.first)) {
            entry->excluded[s] = 1;
          }
        }
      },
      pool, cancel);
}

const SideScoreCache::Entry* SideScoreCache::FindObjects(EntityId s,
                                                         RelationId r) const {
  auto it = by_subject_.find(PackKey(s, r));
  return it == by_subject_.end() ? nullptr : &it->second;
}

const SideScoreCache::Entry* SideScoreCache::FindSubjects(RelationId r,
                                                          EntityId o) const {
  auto it = by_object_.find(PackKey(o, r));
  return it == by_object_.end() ? nullptr : &it->second;
}

void SideScoreCache::InsertObjects(EntityId s, RelationId r, Entry entry) {
  by_subject_.emplace(PackKey(s, r), std::move(entry));
}

void SideScoreCache::InsertSubjects(RelationId r, EntityId o, Entry entry) {
  by_object_.emplace(PackKey(o, r), std::move(entry));
}

void SideScoreCache::Clear() {
  by_subject_.clear();
  by_object_.clear();
}

}  // namespace kgfd
