#include "core/side_score_cache.h"

#include <unordered_set>

#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace kgfd {

SideScoreCache::Entry SideScoreCache::MakeObjectsEntry(const Model& model,
                                                       const TripleStore& kg,
                                                       EntityId s,
                                                       RelationId r,
                                                       bool filtered) {
  Entry entry;
  model.ScoreObjects(s, r, &entry.scores);
  entry.excluded.assign(entry.scores.size(), 0);
  if (filtered) {
    for (EntityId o : kg.ObjectsOf(s, r)) entry.excluded[o] = 1;
  }
  return entry;
}

SideScoreCache::Entry SideScoreCache::MakeSubjectsEntry(const Model& model,
                                                        const TripleStore& kg,
                                                        RelationId r,
                                                        EntityId o,
                                                        bool filtered) {
  Entry entry;
  model.ScoreSubjects(r, o, &entry.scores);
  entry.excluded.assign(entry.scores.size(), 0);
  if (filtered) {
    for (EntityId s : kg.SubjectsOf(r, o)) entry.excluded[s] = 1;
  }
  return entry;
}

const SideScoreCache::Entry& SideScoreCache::ObjectsEntry(
    const Model& model, const TripleStore& kg, EntityId s, RelationId r,
    bool filtered) {
  const uint64_t key = PackKey(s, r);
  auto it = by_subject_.find(key);
  if (it != by_subject_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return by_subject_
      .emplace(key, MakeObjectsEntry(model, kg, s, r, filtered))
      .first->second;
}

const SideScoreCache::Entry& SideScoreCache::SubjectsEntry(
    const Model& model, const TripleStore& kg, RelationId r, EntityId o,
    bool filtered) {
  const uint64_t key = PackKey(o, r);
  auto it = by_object_.find(key);
  if (it != by_object_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return by_object_
      .emplace(key, MakeSubjectsEntry(model, kg, r, o, filtered))
      .first->second;
}

namespace {

/// Shared shape of both Precompute* calls: compute entries for the
/// not-yet-cached keys into fixed slots on the pool, then insert serially
/// (the map itself is not thread-safe).
template <typename MakeEntry>
size_t PrecomputeInto(std::unordered_map<uint64_t, SideScoreCache::Entry>* map,
                      const std::vector<SideScoreCache::Key>& keys,
                      uint64_t (*pack)(const SideScoreCache::Key&),
                      const MakeEntry& make_entry, ThreadPool* pool,
                      const CancelContext* cancel) {
  std::vector<const SideScoreCache::Key*> fresh;
  fresh.reserve(keys.size());
  std::unordered_set<uint64_t> batch;  // dedup within this key list too
  for (const SideScoreCache::Key& key : keys) {
    const uint64_t packed = pack(key);
    if (map->find(packed) == map->end() && batch.insert(packed).second) {
      fresh.push_back(&key);
    }
  }
  std::vector<SideScoreCache::Entry> entries(fresh.size());
  ParallelFor(
      pool, fresh.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) entries[i] = make_entry(*fresh[i]);
      },
      cancel);
  // A cancelled ParallelFor leaves later slots untouched; only insert
  // entries that were actually scored so lookups for the rest keep missing
  // (an empty cached entry would read as "no competitors").
  size_t inserted = 0;
  for (size_t i = 0; i < fresh.size(); ++i) {
    if (entries[i].scores.empty()) continue;
    map->emplace(pack(*fresh[i]), std::move(entries[i]));
    ++inserted;
  }
  return inserted;
}

}  // namespace

size_t SideScoreCache::PrecomputeObjects(const Model& model,
                                         const TripleStore& kg,
                                         const std::vector<Key>& keys,
                                         bool filtered, ThreadPool* pool,
                                         const CancelContext* cancel) {
  return PrecomputeInto(
      &by_subject_, keys,
      +[](const Key& k) { return PackKey(k.first, k.second); },
      [&](const Key& k) {
        return MakeObjectsEntry(model, kg, k.first, k.second, filtered);
      },
      pool, cancel);
}

size_t SideScoreCache::PrecomputeSubjects(const Model& model,
                                          const TripleStore& kg,
                                          const std::vector<Key>& keys,
                                          bool filtered, ThreadPool* pool,
                                          const CancelContext* cancel) {
  return PrecomputeInto(
      &by_object_, keys,
      +[](const Key& k) { return PackKey(k.first, k.second); },
      [&](const Key& k) {
        return MakeSubjectsEntry(model, kg, k.second, k.first, filtered);
      },
      pool, cancel);
}

const SideScoreCache::Entry* SideScoreCache::FindObjects(EntityId s,
                                                         RelationId r) const {
  auto it = by_subject_.find(PackKey(s, r));
  return it == by_subject_.end() ? nullptr : &it->second;
}

const SideScoreCache::Entry* SideScoreCache::FindSubjects(RelationId r,
                                                          EntityId o) const {
  auto it = by_object_.find(PackKey(o, r));
  return it == by_object_.end() ? nullptr : &it->second;
}

void SideScoreCache::Clear() {
  by_subject_.clear();
  by_object_.clear();
}

}  // namespace kgfd
