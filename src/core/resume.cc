#include "core/resume.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

constexpr char kMagic[8] = {'K', 'G', 'F', 'D', 'R', 'S', 'U', 'M'};
// Version 2 appends a CRC-32 trailer over everything before it, so loads
// reject truncated or bit-flipped manifests instead of parsing garbage.
// Version 3 adds the ADAPTIVE fingerprint fields (rounds, exploration) and
// the per-relation partial-round section that makes bandit rounds the
// checkpoint unit.
constexpr uint32_t kFormatVersion = 3;

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteDouble(std::ostream& out, double v) {
  WriteU64(out, std::bit_cast<uint64_t>(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Result<uint64_t> ReadU64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return Status::IoError("truncated resume manifest");
  return v;
}

Result<uint32_t> ReadU32(std::istream& in) {
  uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) return Status::IoError("truncated resume manifest");
  return v;
}

Result<double> ReadDouble(std::istream& in) {
  KGFD_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(in));
  return std::bit_cast<double>(bits);
}

Result<std::string> ReadString(std::istream& in) {
  KGFD_ASSIGN_OR_RETURN(uint64_t n, ReadU64(in));
  if (n > (1ULL << 20)) {
    return Status::IoError("corrupt resume manifest string");
  }
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) return Status::IoError("truncated resume manifest");
  return s;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

uint64_t HashModelParameters(Model* model) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const NamedTensor& p : model->Parameters()) {
    mix_bytes(p.name.data(), p.name.size());
    const uint64_t rows = p.tensor->rows();
    const uint64_t cols = p.tensor->cols();
    mix_bytes(&rows, sizeof(rows));
    mix_bytes(&cols, sizeof(cols));
    mix_bytes(p.tensor->flat(), p.tensor->size() * sizeof(float));
  }
  // Quantized entity tables live outside Parameters(); mix their
  // fingerprint so float and quantized loads of one checkpoint never share
  // a resume/cache identity.
  const uint64_t storage = model->StorageFingerprint();
  if (storage != 0) mix_bytes(&storage, sizeof(storage));
  return h;
}

ResumeManifest MakeManifestHeader(Model* model, const TripleStore& kg,
                                  const DiscoveryOptions& options,
                                  const std::vector<RelationId>& relations) {
  ResumeManifest m;
  m.model_name = model->name();
  m.model_param_hash = HashModelParameters(model);
  m.num_entities = kg.num_entities();
  m.num_relations = kg.num_relations();
  m.num_triples = kg.size();
  m.seed = options.seed;
  m.strategy = SamplingStrategyName(options.strategy);
  m.top_n = options.top_n;
  m.max_candidates = options.max_candidates;
  m.max_iterations = options.max_iterations;
  m.filtered_ranking = options.filtered_ranking ? 1 : 0;
  m.cache_weights = options.cache_weights ? 1 : 0;
  m.type_filter = options.type_filter ? 1 : 0;
  m.rank_aggregation = static_cast<uint8_t>(options.rank_aggregation);
  if (options.strategy == SamplingStrategy::kAdaptive) {
    m.adaptive_rounds = options.adaptive_rounds;
    m.adaptive_exploration = options.adaptive_exploration;
  }
  m.relations = relations;
  return m;
}

Status CheckManifestCompatible(const ResumeManifest& loaded,
                               const ResumeManifest& expected) {
  auto mismatch = [](const std::string& field) {
    return Status::FailedPrecondition(
        "resume manifest does not match this run: " + field +
        " differs (delete the manifest to start over)");
  };
  if (loaded.model_name != expected.model_name) return mismatch("model");
  if (loaded.model_param_hash != expected.model_param_hash) {
    return mismatch("model parameters");
  }
  if (loaded.num_entities != expected.num_entities ||
      loaded.num_relations != expected.num_relations ||
      loaded.num_triples != expected.num_triples) {
    return mismatch("graph shape");
  }
  if (loaded.seed != expected.seed) return mismatch("seed");
  if (loaded.strategy != expected.strategy) return mismatch("strategy");
  if (loaded.top_n != expected.top_n) return mismatch("top_n");
  if (loaded.max_candidates != expected.max_candidates) {
    return mismatch("max_candidates");
  }
  if (loaded.max_iterations != expected.max_iterations) {
    return mismatch("max_iterations");
  }
  if (loaded.filtered_ranking != expected.filtered_ranking) {
    return mismatch("filtered_ranking");
  }
  if (loaded.cache_weights != expected.cache_weights) {
    return mismatch("cache_weights");
  }
  if (loaded.type_filter != expected.type_filter) {
    return mismatch("type_filter");
  }
  if (loaded.rank_aggregation != expected.rank_aggregation) {
    return mismatch("rank_aggregation");
  }
  if (loaded.adaptive_rounds != expected.adaptive_rounds) {
    return mismatch("adaptive_rounds");
  }
  // Bit comparison: any numeric difference in the exploration constant, even
  // one a tolerance would forgive, yields a different bandit schedule.
  if (std::bit_cast<uint64_t>(loaded.adaptive_exploration) !=
      std::bit_cast<uint64_t>(expected.adaptive_exploration)) {
    return mismatch("adaptive_exploration");
  }
  if (loaded.relations != expected.relations) {
    return mismatch("relation list");
  }
  return Status::OK();
}

Status SaveResumeManifest(const ResumeManifest& manifest,
                          const std::string& path) {
  KGFD_FAIL_POINT(kFailPointResumeSave);
  // Serialize into memory first so the CRC-32 trailer can cover every byte
  // before it; the file write then becomes payload + trailer in one go.
  std::ostringstream out(std::ios::binary);
  {
    out.write(kMagic, sizeof(kMagic));
    WriteU32(out, kFormatVersion);
    WriteString(out, manifest.model_name);
    WriteU64(out, manifest.model_param_hash);
    WriteU64(out, manifest.num_entities);
    WriteU64(out, manifest.num_relations);
    WriteU64(out, manifest.num_triples);
    WriteU64(out, manifest.seed);
    WriteString(out, manifest.strategy);
    WriteU64(out, manifest.top_n);
    WriteU64(out, manifest.max_candidates);
    WriteU64(out, manifest.max_iterations);
    WriteU32(out, (static_cast<uint32_t>(manifest.filtered_ranking) << 0) |
                      (static_cast<uint32_t>(manifest.cache_weights) << 8) |
                      (static_cast<uint32_t>(manifest.type_filter) << 16) |
                      (static_cast<uint32_t>(manifest.rank_aggregation)
                       << 24));
    WriteU64(out, manifest.adaptive_rounds);
    WriteDouble(out, manifest.adaptive_exploration);
    WriteU64(out, manifest.relations.size());
    for (RelationId r : manifest.relations) WriteU32(out, r);
    WriteU64(out, manifest.done.size());
    for (const RelationCheckpointEntry& entry : manifest.done) {
      WriteU32(out, entry.relation);
      WriteU64(out, entry.num_candidates);
      WriteU64(out, entry.facts.size());
      for (const DiscoveredFact& fact : entry.facts) {
        WriteU32(out, fact.triple.subject);
        WriteU32(out, fact.triple.relation);
        WriteU32(out, fact.triple.object);
        WriteDouble(out, fact.rank);
        WriteDouble(out, fact.subject_rank);
        WriteDouble(out, fact.object_rank);
      }
    }
    WriteU64(out, manifest.partial.size());
    for (const AdaptiveRelationPartial& partial : manifest.partial) {
      WriteU32(out, partial.relation);
      WriteU64(out, partial.rounds.size());
      for (const AdaptiveRoundRecord& round : partial.rounds) {
        WriteU64(out, round.round);
        WriteString(out, round.arm);
        WriteU64(out, round.num_candidates);
        WriteU64(out, round.facts.size());
        for (const DiscoveredFact& fact : round.facts) {
          WriteU32(out, fact.triple.subject);
          WriteU32(out, fact.triple.relation);
          WriteU32(out, fact.triple.object);
          WriteDouble(out, fact.rank);
          WriteDouble(out, fact.subject_rank);
          WriteDouble(out, fact.object_rank);
        }
      }
    }
  }
  const std::string payload = out.str();
  const uint32_t crc = Crc32(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::IoError("cannot open for writing: " + tmp);
    file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    WriteU32(file, crc);
    file.flush();
    if (!file) return Status::IoError("write failed: " + tmp);
  }
  // Atomic publish: readers see either the old manifest or the new one,
  // never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Result<ResumeManifest> LoadResumeManifest(const std::string& path) {
  KGFD_FAIL_POINT(kFailPointResumeLoad);
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open: " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::IoError("read failed: " + path);
  }
  // Verify before parsing: magic, then the CRC-32 trailer over everything
  // preceding it. A failed check means truncation or corruption — nothing
  // past this point ever parses unchecksummed bytes.
  if (data.size() < sizeof(kMagic) + 2 * sizeof(uint32_t)) {
    return Status::IoError("truncated resume manifest: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("not a kgfd resume manifest: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc = Crc32(data.data(), data.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::IoError(
        "resume manifest checksum mismatch (truncated or corrupted): " +
        path);
  }
  std::istringstream in(data.substr(0, data.size() - sizeof(uint32_t)),
                        std::ios::binary);
  in.ignore(sizeof(kMagic));
  KGFD_ASSIGN_OR_RETURN(uint32_t version, ReadU32(in));
  if (version != kFormatVersion) {
    return Status::IoError("unsupported resume manifest version");
  }
  ResumeManifest m;
  KGFD_ASSIGN_OR_RETURN(m.model_name, ReadString(in));
  KGFD_ASSIGN_OR_RETURN(m.model_param_hash, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.num_entities, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.num_relations, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.num_triples, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.seed, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.strategy, ReadString(in));
  KGFD_ASSIGN_OR_RETURN(m.top_n, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.max_candidates, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.max_iterations, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(uint32_t flags, ReadU32(in));
  m.filtered_ranking = static_cast<uint8_t>(flags & 0xFF);
  m.cache_weights = static_cast<uint8_t>((flags >> 8) & 0xFF);
  m.type_filter = static_cast<uint8_t>((flags >> 16) & 0xFF);
  m.rank_aggregation = static_cast<uint8_t>((flags >> 24) & 0xFF);
  KGFD_ASSIGN_OR_RETURN(m.adaptive_rounds, ReadU64(in));
  KGFD_ASSIGN_OR_RETURN(m.adaptive_exploration, ReadDouble(in));
  KGFD_ASSIGN_OR_RETURN(uint64_t num_relations, ReadU64(in));
  if (num_relations > (1ULL << 32)) {
    return Status::IoError("corrupt resume manifest relation count");
  }
  m.relations.reserve(num_relations);
  for (uint64_t i = 0; i < num_relations; ++i) {
    KGFD_ASSIGN_OR_RETURN(uint32_t r, ReadU32(in));
    m.relations.push_back(r);
  }
  KGFD_ASSIGN_OR_RETURN(uint64_t num_done, ReadU64(in));
  if (num_done > num_relations) {
    return Status::IoError("corrupt resume manifest entry count");
  }
  m.done.reserve(num_done);
  for (uint64_t i = 0; i < num_done; ++i) {
    RelationCheckpointEntry entry;
    KGFD_ASSIGN_OR_RETURN(entry.relation, ReadU32(in));
    KGFD_ASSIGN_OR_RETURN(entry.num_candidates, ReadU64(in));
    KGFD_ASSIGN_OR_RETURN(uint64_t num_facts, ReadU64(in));
    if (num_facts > (1ULL << 32)) {
      return Status::IoError("corrupt resume manifest fact count");
    }
    entry.facts.reserve(num_facts);
    for (uint64_t f = 0; f < num_facts; ++f) {
      DiscoveredFact fact;
      KGFD_ASSIGN_OR_RETURN(fact.triple.subject, ReadU32(in));
      KGFD_ASSIGN_OR_RETURN(fact.triple.relation, ReadU32(in));
      KGFD_ASSIGN_OR_RETURN(fact.triple.object, ReadU32(in));
      KGFD_ASSIGN_OR_RETURN(fact.rank, ReadDouble(in));
      KGFD_ASSIGN_OR_RETURN(fact.subject_rank, ReadDouble(in));
      KGFD_ASSIGN_OR_RETURN(fact.object_rank, ReadDouble(in));
      entry.facts.push_back(fact);
    }
    m.done.push_back(std::move(entry));
  }
  KGFD_ASSIGN_OR_RETURN(uint64_t num_partial, ReadU64(in));
  if (num_partial > num_relations) {
    return Status::IoError("corrupt resume manifest partial count");
  }
  m.partial.reserve(num_partial);
  for (uint64_t i = 0; i < num_partial; ++i) {
    AdaptiveRelationPartial partial;
    KGFD_ASSIGN_OR_RETURN(partial.relation, ReadU32(in));
    KGFD_ASSIGN_OR_RETURN(uint64_t num_rounds, ReadU64(in));
    if (num_rounds > (1ULL << 20)) {
      return Status::IoError("corrupt resume manifest round count");
    }
    partial.rounds.reserve(num_rounds);
    for (uint64_t k = 0; k < num_rounds; ++k) {
      AdaptiveRoundRecord round;
      KGFD_ASSIGN_OR_RETURN(uint64_t round_number, ReadU64(in));
      round.round = round_number;
      KGFD_ASSIGN_OR_RETURN(round.arm, ReadString(in));
      KGFD_ASSIGN_OR_RETURN(uint64_t round_candidates, ReadU64(in));
      round.num_candidates = round_candidates;
      KGFD_ASSIGN_OR_RETURN(uint64_t num_facts, ReadU64(in));
      if (num_facts > (1ULL << 32)) {
        return Status::IoError("corrupt resume manifest fact count");
      }
      round.facts.reserve(num_facts);
      for (uint64_t f = 0; f < num_facts; ++f) {
        DiscoveredFact fact;
        KGFD_ASSIGN_OR_RETURN(fact.triple.subject, ReadU32(in));
        KGFD_ASSIGN_OR_RETURN(fact.triple.relation, ReadU32(in));
        KGFD_ASSIGN_OR_RETURN(fact.triple.object, ReadU32(in));
        KGFD_ASSIGN_OR_RETURN(fact.rank, ReadDouble(in));
        KGFD_ASSIGN_OR_RETURN(fact.subject_rank, ReadDouble(in));
        KGFD_ASSIGN_OR_RETURN(fact.object_rank, ReadDouble(in));
        round.facts.push_back(fact);
      }
      partial.rounds.push_back(std::move(round));
    }
    m.partial.push_back(std::move(partial));
  }
  return m;
}

Result<DiscoveryResult> DiscoverFactsResumable(const Model& model,
                                               const TripleStore& kg,
                                               const DiscoveryOptions& options,
                                               const ResumeOptions& resume,
                                               ThreadPool* pool) {
  if (resume.manifest_path.empty()) {
    return Status::InvalidArgument("ResumeOptions::manifest_path is empty");
  }
  // Validate up front even though DiscoverFacts validates again: a manifest
  // with every relation already done skips the live sweep below, and invalid
  // options must not read as a successful no-op resume.
  KGFD_RETURN_NOT_OK(ValidateDiscoveryOptions(options, kg));
  std::vector<RelationId> relations = options.relations;
  if (relations.empty()) relations = kg.UsedRelations();
  {
    std::unordered_set<RelationId> unique(relations.begin(), relations.end());
    if (unique.size() != relations.size()) {
      return Status::InvalidArgument(
          "resumable discovery requires unique relation ids (the manifest "
          "is keyed by relation)");
    }
  }

  // Parameters() is non-const in the Model interface but read-only here.
  Model* mutable_model = const_cast<Model*>(&model);
  const ResumeManifest header =
      MakeManifestHeader(mutable_model, kg, options, relations);

  ResumeManifest manifest;
  if (FileExists(resume.manifest_path)) {
    KGFD_ASSIGN_OR_RETURN(manifest, LoadResumeManifest(resume.manifest_path));
    KGFD_RETURN_NOT_OK(CheckManifestCompatible(manifest, header));
  } else {
    manifest = header;
    // Persist the header immediately: catches an unwritable manifest path
    // before hours of work, and makes a restart-before-first-relation
    // resumable too.
    KGFD_RETURN_NOT_OK(RetryStatus(
        resume.save_retry, "SaveResumeManifest", [&manifest, &resume]() {
          return SaveResumeManifest(manifest, resume.manifest_path);
        }));
  }

  std::unordered_map<RelationId, const RelationCheckpointEntry*> done;
  for (const RelationCheckpointEntry& entry : manifest.done) {
    done.emplace(entry.relation, &entry);
  }
  std::vector<RelationId> remaining;
  remaining.reserve(relations.size());
  for (RelationId r : relations) {
    if (done.find(r) == done.end()) remaining.push_back(r);
  }

  // Completed relations stream into the manifest as they finish; the lock
  // serializes manifest mutation + atomic rewrite across pool workers.
  std::mutex manifest_mu;
  Status save_error;  // first persistence failure, surfaced after the run
  DiscoveryOptions live_options = options;
  live_options.relations = remaining;
  const bool adaptive = options.strategy == SamplingStrategy::kAdaptive;

  // ADAPTIVE: hand the restored round history of still-unfinished relations
  // to DiscoverFacts for replay, and persist every live round as it
  // finishes — rounds, not relations, are the checkpoint unit.
  AdaptiveResumeState adaptive_state;
  const auto chained_round_callback = options.on_round_complete;
  if (adaptive) {
    for (const AdaptiveRelationPartial& partial : manifest.partial) {
      if (done.find(partial.relation) == done.end()) {
        adaptive_state.rounds.emplace(partial.relation, partial.rounds);
      }
    }
    live_options.adaptive_resume = &adaptive_state;
    live_options.on_round_complete =
        [&](AdaptiveRoundCompletion&& completion) {
          {
            std::lock_guard<std::mutex> lock(manifest_mu);
            AdaptiveRelationPartial* slot = nullptr;
            for (AdaptiveRelationPartial& partial : manifest.partial) {
              if (partial.relation == completion.relation) {
                slot = &partial;
                break;
              }
            }
            if (slot == nullptr) {
              manifest.partial.emplace_back();
              slot = &manifest.partial.back();
              slot->relation = completion.relation;
              // Live rounds follow the replayed prefix, so the restored
              // rounds must be re-seated first for index == round number to
              // hold on the next resume.
              auto it = adaptive_state.rounds.find(completion.relation);
              if (it != adaptive_state.rounds.end()) slot->rounds = it->second;
            }
            slot->rounds.push_back(completion.record);
            const Status status = RetryStatus(
                resume.save_retry, "SaveResumeManifest",
                [&manifest, &resume]() {
                  return SaveResumeManifest(manifest, resume.manifest_path);
                });
            if (!status.ok() && save_error.ok()) save_error = status;
          }
          if (chained_round_callback) {
            chained_round_callback(std::move(completion));
          }
        };
  }

  const auto chained_callback = options.on_relation_complete;
  live_options.on_relation_complete = [&](RelationCompletion&& completion) {
    {
      std::lock_guard<std::mutex> lock(manifest_mu);
      RelationCheckpointEntry entry;
      entry.relation = completion.relation;
      entry.num_candidates = completion.num_candidates;
      entry.facts = completion.facts;
      manifest.done.push_back(std::move(entry));
      // A completed relation's rounds are subsumed by its `done` entry.
      for (size_t i = 0; i < manifest.partial.size(); ++i) {
        if (manifest.partial[i].relation == completion.relation) {
          manifest.partial.erase(manifest.partial.begin() +
                                 static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      const Status status = RetryStatus(
          resume.save_retry, "SaveResumeManifest", [&manifest, &resume]() {
            return SaveResumeManifest(manifest, resume.manifest_path);
          });
      if (!status.ok() && save_error.ok()) save_error = status;
    }
    if (chained_callback) chained_callback(std::move(completion));
  };

  DiscoveryResult live;
  if (!remaining.empty()) {
    KGFD_ASSIGN_OR_RETURN(live, DiscoverFacts(model, kg, live_options, pool));
  } else {
    KGFD_RETURN_NOT_OK(
        ValidateModelShape(model, kg.num_entities(), kg.num_relations()));
  }
  KGFD_RETURN_NOT_OK(save_error);

  // Assemble the final fact set in canonical relation order from the
  // manifest, which now holds every relation: restored ones from before the
  // restart, live ones appended by the callback. This reproduces the exact
  // concatenation order of an uninterrupted run.
  done.clear();
  for (const RelationCheckpointEntry& entry : manifest.done) {
    done.emplace(entry.relation, &entry);
  }
  DiscoveryResult result;
  result.stats = live.stats;  // timing covers the live portion only
  result.stopped_reason = live.stopped_reason;
  result.stats.num_candidates = 0;
  result.stats.num_relations_processed = 0;
  result.stats.num_relations_skipped = 0;
  for (RelationId r : relations) {
    auto it = done.find(r);
    if (it == done.end()) {
      // On a stopped run, unfinished relations are expected: their facts
      // are simply absent until a later --resume regenerates them. On a
      // completed run a hole means the manifest and the sweep disagree.
      if (result.stopped_reason != StoppedReason::kNone) {
        ++result.stats.num_relations_skipped;
        continue;
      }
      return Status::Internal("resume manifest missing completed relation " +
                              std::to_string(r));
    }
    const RelationCheckpointEntry& entry = *it->second;
    result.facts.insert(result.facts.end(), entry.facts.begin(),
                        entry.facts.end());
    result.stats.num_candidates += entry.num_candidates;
    ++result.stats.num_relations_processed;
  }
  result.stats.num_facts = result.facts.size();
  return result;
}

}  // namespace kgfd
