#ifndef KGFD_KG_RELATION_STATS_H_
#define KGFD_KG_RELATION_STATS_H_

#include <string>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"

namespace kgfd {

/// Per-relation cardinality profile (Bordes et al. 2013's 1-1 / 1-N /
/// N-1 / N-N taxonomy). tph/hpt are the statistics the Bernoulli
/// corruption scheme derives its side probabilities from; the cardinality
/// class explains which relations a mesh-grid candidate generator can
/// cover well.
struct RelationStats {
  RelationId relation = 0;
  size_t num_triples = 0;
  size_t distinct_subjects = 0;
  size_t distinct_objects = 0;
  /// Mean distinct tails per (head, relation).
  double tails_per_head = 0.0;
  /// Mean distinct heads per (relation, tail).
  double heads_per_tail = 0.0;

  /// "1-1", "1-N", "N-1" or "N-N" with the conventional 1.5 threshold.
  std::string Cardinality() const;
};

/// Stats for every relation with at least one triple, ascending by id.
std::vector<RelationStats> ComputeRelationStats(const TripleStore& store);

}  // namespace kgfd

#endif  // KGFD_KG_RELATION_STATS_H_
