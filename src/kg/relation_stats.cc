#include "kg/relation_stats.h"

#include <unordered_map>
#include <unordered_set>

namespace kgfd {

std::string RelationStats::Cardinality() const {
  constexpr double kThreshold = 1.5;
  const bool many_tails = tails_per_head >= kThreshold;
  const bool many_heads = heads_per_tail >= kThreshold;
  if (many_tails && many_heads) return "N-N";
  if (many_tails) return "1-N";
  if (many_heads) return "N-1";
  return "1-1";
}

std::vector<RelationStats> ComputeRelationStats(const TripleStore& store) {
  std::vector<RelationStats> out;
  for (RelationId r : store.UsedRelations()) {
    const std::vector<Triple>& triples = store.ByRelation(r);
    std::unordered_map<EntityId, std::unordered_set<EntityId>> by_head;
    std::unordered_map<EntityId, std::unordered_set<EntityId>> by_tail;
    for (const Triple& t : triples) {
      by_head[t.subject].insert(t.object);
      by_tail[t.object].insert(t.subject);
    }
    RelationStats stats;
    stats.relation = r;
    stats.num_triples = triples.size();
    stats.distinct_subjects = by_head.size();
    stats.distinct_objects = by_tail.size();
    double tph = 0.0;
    for (const auto& [head, tails] : by_head) {
      tph += static_cast<double>(tails.size());
    }
    stats.tails_per_head = tph / static_cast<double>(by_head.size());
    double hpt = 0.0;
    for (const auto& [tail, heads] : by_tail) {
      hpt += static_cast<double>(heads.size());
    }
    stats.heads_per_tail = hpt / static_cast<double>(by_tail.size());
    out.push_back(stats);
  }
  return out;
}

}  // namespace kgfd
