#ifndef KGFD_KG_TRIPLE_STORE_H_
#define KGFD_KG_TRIPLE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/types.h"
#include "util/status.h"

namespace kgfd {

/// In-memory triple set with the indexes the rest of the library needs:
///   * O(1) membership (packed-key hash set) — candidate filtering,
///   * per-relation triple lists — the discovery loop iterates relations,
///   * (s, r) -> objects and (r, o) -> subjects — filtered link-prediction
///     ranking a la Bordes et al.
/// Duplicate inserts are ignored (a KG is a set of facts).
class TripleStore {
 public:
  /// Creates a store over the id spaces [0, num_entities) x
  /// [0, num_relations). Both must fit the packed-triple limits.
  TripleStore(size_t num_entities, size_t num_relations);

  /// Validates ids and inserts; returns false (and OK status) if the triple
  /// was already present.
  Result<bool> Add(const Triple& t);

  /// Bulk Add; fails fast on the first invalid triple.
  Status AddAll(const std::vector<Triple>& triples);

  bool Contains(const Triple& t) const {
    return keys_.count(PackTriple(t)) > 0;
  }

  size_t size() const { return triples_.size(); }
  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }

  const std::vector<Triple>& triples() const { return triples_; }

  /// Triples with the given relation (empty vector for unused relations).
  const std::vector<Triple>& ByRelation(RelationId r) const;

  /// Relations that occur in at least one triple, ascending.
  std::vector<RelationId> UsedRelations() const;

  /// Objects o such that (s, r, o) in the store. Unsorted. Empty if none.
  const std::vector<EntityId>& ObjectsOf(EntityId s, RelationId r) const;

  /// Subjects s such that (s, r, o) in the store. Unsorted. Empty if none.
  const std::vector<EntityId>& SubjectsOf(RelationId r, EntityId o) const;

 private:
  static uint64_t PairKey(uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  size_t num_entities_;
  size_t num_relations_;
  std::vector<Triple> triples_;
  std::unordered_set<uint64_t> keys_;
  std::vector<std::vector<Triple>> by_relation_;
  std::unordered_map<uint64_t, std::vector<EntityId>> sr_to_objects_;
  std::unordered_map<uint64_t, std::vector<EntityId>> ro_to_subjects_;
  std::vector<EntityId> empty_;
};

}  // namespace kgfd

#endif  // KGFD_KG_TRIPLE_STORE_H_
