#ifndef KGFD_KG_VOCAB_H_
#define KGFD_KG_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace kgfd {

/// Bidirectional mapping between external string names (entity IRIs,
/// relation labels) and dense 0-based ids. Ids are assigned in insertion
/// order and never reused.
class Vocabulary {
 public:
  /// Returns the id of `name`, inserting it if absent.
  uint32_t AddOrGet(const std::string& name);

  /// Returns the id of `name` or NotFound.
  Result<uint32_t> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Returns the name of `id` or OutOfRange.
  Result<std::string> Name(uint32_t id) const;

  size_t size() const { return names_.size(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace kgfd

#endif  // KGFD_KG_VOCAB_H_
