#include "kg/leakage.h"

#include <algorithm>

namespace kgfd {

std::vector<InverseRelationPair> DetectInverseRelations(
    const TripleStore& store, double min_coverage) {
  const size_t k = store.num_relations();
  // match[r][r'] = |{(s, r, o) : (o, r', s) in store}|.
  std::vector<std::vector<size_t>> match(k, std::vector<size_t>(k, 0));
  for (const Triple& t : store.triples()) {
    for (RelationId r2 = 0; r2 < k; ++r2) {
      if (store.Contains({t.object, r2, t.subject})) ++match[t.relation][r2];
    }
  }
  std::vector<InverseRelationPair> out;
  for (RelationId r = 0; r < k; ++r) {
    const size_t total = store.ByRelation(r).size();
    if (total == 0) continue;
    for (RelationId r2 = 0; r2 < k; ++r2) {
      const double coverage =
          static_cast<double>(match[r][r2]) / static_cast<double>(total);
      if (coverage >= min_coverage && match[r][r2] > 0) {
        out.push_back(InverseRelationPair{r, r2, coverage, match[r][r2]});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const InverseRelationPair& a, const InverseRelationPair& b) {
              if (a.coverage != b.coverage) return a.coverage > b.coverage;
              return a.support > b.support;
            });
  return out;
}

Result<double> TestLeakageScore(const Dataset& dataset) {
  if (dataset.test().size() == 0) {
    return Status::InvalidArgument("empty test split");
  }
  size_t leaked = 0;
  for (const Triple& t : dataset.test().triples()) {
    for (RelationId r2 = 0; r2 < dataset.num_relations(); ++r2) {
      if (dataset.train().Contains({t.object, r2, t.subject})) {
        ++leaked;
        break;
      }
    }
  }
  return static_cast<double>(leaked) /
         static_cast<double>(dataset.test().size());
}

}  // namespace kgfd
