#include "kg/vocab.h"

namespace kgfd {

uint32_t Vocabulary::AddOrGet(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

Result<uint32_t> Vocabulary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return Status::NotFound("unknown name: " + name);
  return it->second;
}

bool Vocabulary::Contains(const std::string& name) const {
  return ids_.count(name) > 0;
}

Result<std::string> Vocabulary::Name(uint32_t id) const {
  if (id >= names_.size()) {
    return Status::OutOfRange("vocabulary id out of range: " +
                              std::to_string(id));
  }
  return names_[id];
}

}  // namespace kgfd
