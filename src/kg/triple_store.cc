#include "kg/triple_store.h"

#include <algorithm>

namespace kgfd {

TripleStore::TripleStore(size_t num_entities, size_t num_relations)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      by_relation_(num_relations) {}

Result<bool> TripleStore::Add(const Triple& t) {
  if (t.subject >= num_entities_ || t.object >= num_entities_) {
    return Status::OutOfRange("entity id out of range");
  }
  if (t.relation >= num_relations_) {
    return Status::OutOfRange("relation id out of range");
  }
  if (num_entities_ > kMaxPackableEntities ||
      num_relations_ > kMaxPackableRelations) {
    return Status::FailedPrecondition("id space exceeds packed-triple limits");
  }
  const uint64_t key = PackTriple(t);
  if (!keys_.insert(key).second) return false;
  triples_.push_back(t);
  by_relation_[t.relation].push_back(t);
  sr_to_objects_[PairKey(t.subject, t.relation)].push_back(t.object);
  ro_to_subjects_[PairKey(t.relation, t.object)].push_back(t.subject);
  return true;
}

Status TripleStore::AddAll(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) {
    KGFD_ASSIGN_OR_RETURN([[maybe_unused]] bool inserted, Add(t));
  }
  return Status::OK();
}

const std::vector<Triple>& TripleStore::ByRelation(RelationId r) const {
  static const std::vector<Triple> kEmpty;
  if (r >= by_relation_.size()) return kEmpty;
  return by_relation_[r];
}

std::vector<RelationId> TripleStore::UsedRelations() const {
  std::vector<RelationId> out;
  for (RelationId r = 0; r < by_relation_.size(); ++r) {
    if (!by_relation_[r].empty()) out.push_back(r);
  }
  return out;
}

const std::vector<EntityId>& TripleStore::ObjectsOf(EntityId s,
                                                    RelationId r) const {
  auto it = sr_to_objects_.find(PairKey(s, r));
  return it == sr_to_objects_.end() ? empty_ : it->second;
}

const std::vector<EntityId>& TripleStore::SubjectsOf(RelationId r,
                                                     EntityId o) const {
  auto it = ro_to_subjects_.find(PairKey(r, o));
  return it == ro_to_subjects_.end() ? empty_ : it->second;
}

}  // namespace kgfd
