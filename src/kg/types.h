#ifndef KGFD_KG_TYPES_H_
#define KGFD_KG_TYPES_H_

#include <cstdint>
#include <functional>

namespace kgfd {

/// Dense 0-based identifiers assigned by a Vocabulary.
using EntityId = uint32_t;
using RelationId = uint32_t;

/// A (subject, relation, object) statement.
struct Triple {
  EntityId subject = 0;
  RelationId relation = 0;
  EntityId object = 0;

  friend bool operator==(const Triple& a, const Triple& b) = default;
  friend auto operator<=>(const Triple& a, const Triple& b) = default;
};

/// Packs a triple into one 64-bit key: 26 bits subject | 12 bits relation |
/// 26 bits object. Sufficient for graphs with < 2^26 (~67M) entities and
/// < 4096 relations, which covers every benchmark KG in the paper with a
/// wide margin. Used for O(1) membership tests on the training graph.
constexpr uint64_t kMaxPackableEntities = 1ULL << 26;
constexpr uint64_t kMaxPackableRelations = 1ULL << 12;

inline uint64_t PackTriple(const Triple& t) {
  return (static_cast<uint64_t>(t.subject) << 38) |
         (static_cast<uint64_t>(t.relation) << 26) |
         static_cast<uint64_t>(t.object);
}

inline Triple UnpackTriple(uint64_t key) {
  Triple t;
  t.subject = static_cast<EntityId>(key >> 38);
  t.relation = static_cast<RelationId>((key >> 26) & 0xFFF);
  t.object = static_cast<EntityId>(key & 0x3FFFFFF);
  return t;
}

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t x = PackTriple(t);
    // SplitMix64 finalizer as an avalanching hash.
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Which side of a triple an entity occupies. Sampling strategies that are
/// side-aware (UNIFORM_RANDOM, ENTITY_FREQUENCY) weight the two sides
/// independently, exactly as in the paper.
enum class TripleSide { kSubject, kObject };

}  // namespace kgfd

#endif  // KGFD_KG_TYPES_H_
