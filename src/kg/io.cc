#include "kg/io.h"

#include <fstream>
#include <sstream>

#include "util/failpoint.h"
#include "util/retry.h"
#include "util/string_util.h"

namespace kgfd {

Result<std::vector<Triple>> ReadTriplesTsv(const std::string& path,
                                           Vocabulary* entities,
                                           Vocabulary* relations) {
  KGFD_FAIL_POINT(kFailPointKgIoRead);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<Triple> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Accept CRLF files: getline keeps the '\r', strip it before parsing so
    // the last field and blank lines behave identically to LF input.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.find('\0') != std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": NUL byte in input");
    }
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) +
          ": expected 3 tab-separated fields, got " +
          std::to_string(fields.size()));
    }
    const std::string subject = Trim(fields[0]);
    const std::string relation = Trim(fields[1]);
    const std::string object = Trim(fields[2]);
    if (subject.empty() || relation.empty() || object.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": empty field");
    }
    Triple t;
    t.subject = entities->AddOrGet(subject);
    t.relation = relations->AddOrGet(relation);
    t.object = entities->AddOrGet(object);
    out.push_back(t);
  }
  return out;
}

Status WriteTriplesTsv(const std::string& path,
                       const std::vector<Triple>& triples,
                       const Vocabulary& entities,
                       const Vocabulary& relations) {
  KGFD_FAIL_POINT(kFailPointKgIoWrite);
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  auto name_of = [](const Vocabulary& vocab, uint32_t id) {
    auto result = vocab.Name(id);
    return result.ok() ? std::move(result).value() : std::to_string(id);
  };
  for (const Triple& t : triples) {
    out << name_of(entities, t.subject) << '\t'
        << name_of(relations, t.relation) << '\t'
        << name_of(entities, t.object) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDatasetDir(const std::string& dir,
                               const std::string& name,
                               const RetryPolicy& retry) {
  Vocabulary entities;
  Vocabulary relations;
  // Each split read retries under the policy: a transient IoError (e.g. an
  // injected fault or a flaky network filesystem) costs a bounded backoff
  // instead of the whole load.
  auto read_split = [&](const char* file) {
    const std::string path = dir + "/" + file;
    return Retry<std::vector<Triple>>(retry, "ReadTriplesTsv", [&]() {
      return ReadTriplesTsv(path, &entities, &relations);
    });
  };
  KGFD_ASSIGN_OR_RETURN(auto train_triples, read_split("train.txt"));
  KGFD_ASSIGN_OR_RETURN(auto valid_triples, read_split("valid.txt"));
  KGFD_ASSIGN_OR_RETURN(auto test_triples, read_split("test.txt"));
  Dataset dataset(name, entities.size(), relations.size());
  dataset.entity_vocab() = entities;
  dataset.relation_vocab() = relations;
  KGFD_RETURN_NOT_OK(dataset.train().AddAll(train_triples));
  KGFD_RETURN_NOT_OK(dataset.valid().AddAll(valid_triples));
  KGFD_RETURN_NOT_OK(dataset.test().AddAll(test_triples));
  KGFD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

Status SaveDatasetDir(const Dataset& dataset, const std::string& dir) {
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/train.txt",
                                     dataset.train().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/valid.txt",
                                     dataset.valid().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/test.txt",
                                     dataset.test().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  return Status::OK();
}

}  // namespace kgfd
