#include "kg/io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace kgfd {

Result<std::vector<Triple>> ReadTriplesTsv(const std::string& path,
                                           Vocabulary* entities,
                                           Vocabulary* relations) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<Triple> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected 3 tab-separated fields");
    }
    Triple t;
    t.subject = entities->AddOrGet(Trim(fields[0]));
    t.relation = relations->AddOrGet(Trim(fields[1]));
    t.object = entities->AddOrGet(Trim(fields[2]));
    out.push_back(t);
  }
  return out;
}

Status WriteTriplesTsv(const std::string& path,
                       const std::vector<Triple>& triples,
                       const Vocabulary& entities,
                       const Vocabulary& relations) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  auto name_of = [](const Vocabulary& vocab, uint32_t id) {
    auto result = vocab.Name(id);
    return result.ok() ? std::move(result).value() : std::to_string(id);
  };
  for (const Triple& t : triples) {
    out << name_of(entities, t.subject) << '\t'
        << name_of(relations, t.relation) << '\t'
        << name_of(entities, t.object) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDatasetDir(const std::string& dir,
                               const std::string& name) {
  Vocabulary entities;
  Vocabulary relations;
  KGFD_ASSIGN_OR_RETURN(auto train_triples,
                        ReadTriplesTsv(dir + "/train.txt", &entities,
                                       &relations));
  KGFD_ASSIGN_OR_RETURN(auto valid_triples,
                        ReadTriplesTsv(dir + "/valid.txt", &entities,
                                       &relations));
  KGFD_ASSIGN_OR_RETURN(auto test_triples,
                        ReadTriplesTsv(dir + "/test.txt", &entities,
                                       &relations));
  Dataset dataset(name, entities.size(), relations.size());
  dataset.entity_vocab() = entities;
  dataset.relation_vocab() = relations;
  KGFD_RETURN_NOT_OK(dataset.train().AddAll(train_triples));
  KGFD_RETURN_NOT_OK(dataset.valid().AddAll(valid_triples));
  KGFD_RETURN_NOT_OK(dataset.test().AddAll(test_triples));
  KGFD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

Status SaveDatasetDir(const Dataset& dataset, const std::string& dir) {
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/train.txt",
                                     dataset.train().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/valid.txt",
                                     dataset.valid().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  KGFD_RETURN_NOT_OK(WriteTriplesTsv(dir + "/test.txt",
                                     dataset.test().triples(),
                                     dataset.entity_vocab(),
                                     dataset.relation_vocab()));
  return Status::OK();
}

}  // namespace kgfd
