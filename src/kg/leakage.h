#ifndef KGFD_KG_LEAKAGE_H_
#define KGFD_KG_LEAKAGE_H_

#include <vector>

#include "kg/dataset.h"
#include "kg/triple_store.h"
#include "kg/types.h"
#include "util/status.h"

namespace kgfd {

/// Inverse-relation test leakage analysis — the dataset flaw the paper's
/// §4.1.2 recounts: FB15K and WN18 let models "solve" test triples
/// (s, r, o) by looking up the training triple (o, r^-1, s), which is why
/// FB15K-237 and WN18RR exist. These tools quantify that flaw for any
/// dataset loaded into kgfd.

/// A (near-)inverse relation pair within one triple set.
struct InverseRelationPair {
  RelationId relation = 0;
  RelationId inverse = 0;
  /// Fraction of `relation`'s triples (s, r, o) with (o, inverse, s)
  /// present.
  double coverage = 0.0;
  /// Absolute number of matched triples.
  size_t support = 0;
};

/// Finds relation pairs (r, r') where at least `min_coverage` of r's
/// triples have their flip present under r'. Self-pairs (r, r) are
/// reported too — they indicate symmetric relations. Results are sorted by
/// coverage, descending.
std::vector<InverseRelationPair> DetectInverseRelations(
    const TripleStore& store, double min_coverage = 0.8);

/// Fraction of test triples (s, r, o) for which some training triple
/// (o, r', s) exists — the upper bound on what a trivial inversion rule
/// could "predict". The paper's datasets were rebuilt precisely to push
/// this toward zero.
Result<double> TestLeakageScore(const Dataset& dataset);

}  // namespace kgfd

#endif  // KGFD_KG_LEAKAGE_H_
