#ifndef KGFD_KG_DATASET_H_
#define KGFD_KG_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"
#include "kg/vocab.h"
#include "util/status.h"

namespace kgfd {

/// A benchmark KG: shared entity/relation id spaces plus train/valid/test
/// splits, mirroring the LibKGE dataset layout the paper builds on.
class Dataset {
 public:
  Dataset(std::string name, size_t num_entities, size_t num_relations);

  const std::string& name() const { return name_; }
  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }

  TripleStore& train() { return train_; }
  const TripleStore& train() const { return train_; }
  TripleStore& valid() { return valid_; }
  const TripleStore& valid() const { return valid_; }
  TripleStore& test() { return test_; }
  const TripleStore& test() const { return test_; }

  /// Optional human-readable names; may be empty for synthetic data that
  /// only uses dense ids.
  Vocabulary& entity_vocab() { return entity_vocab_; }
  const Vocabulary& entity_vocab() const { return entity_vocab_; }
  Vocabulary& relation_vocab() { return relation_vocab_; }
  const Vocabulary& relation_vocab() const { return relation_vocab_; }

  /// True if `t` occurs in any split. Used by the filtered evaluation
  /// protocol and by discovery when excluding known facts.
  bool KnownAnywhere(const Triple& t) const {
    return train_.Contains(t) || valid_.Contains(t) || test_.Contains(t);
  }

  /// Checks the usual benchmark invariants: splits pairwise disjoint and
  /// every valid/test entity & relation seen in train.
  Status Validate() const;

 private:
  std::string name_;
  size_t num_entities_;
  size_t num_relations_;
  TripleStore train_;
  TripleStore valid_;
  TripleStore test_;
  Vocabulary entity_vocab_;
  Vocabulary relation_vocab_;
};

}  // namespace kgfd

#endif  // KGFD_KG_DATASET_H_
