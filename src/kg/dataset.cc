#include "kg/dataset.h"

#include <unordered_set>

namespace kgfd {

Dataset::Dataset(std::string name, size_t num_entities, size_t num_relations)
    : name_(std::move(name)),
      num_entities_(num_entities),
      num_relations_(num_relations),
      train_(num_entities, num_relations),
      valid_(num_entities, num_relations),
      test_(num_entities, num_relations) {}

Status Dataset::Validate() const {
  std::unordered_set<EntityId> train_entities;
  std::unordered_set<RelationId> train_relations;
  for (const Triple& t : train_.triples()) {
    train_entities.insert(t.subject);
    train_entities.insert(t.object);
    train_relations.insert(t.relation);
  }
  auto check_split = [&](const TripleStore& split,
                         const char* split_name) -> Status {
    for (const Triple& t : split.triples()) {
      if (train_.Contains(t)) {
        return Status::FailedPrecondition(std::string(split_name) +
                                          " split overlaps train");
      }
      if (train_entities.count(t.subject) == 0 ||
          train_entities.count(t.object) == 0) {
        return Status::FailedPrecondition(std::string(split_name) +
                                          " split has entity unseen in train");
      }
      if (train_relations.count(t.relation) == 0) {
        return Status::FailedPrecondition(
            std::string(split_name) + " split has relation unseen in train");
      }
    }
    return Status::OK();
  };
  KGFD_RETURN_NOT_OK(check_split(valid_, "valid"));
  KGFD_RETURN_NOT_OK(check_split(test_, "test"));
  for (const Triple& t : valid_.triples()) {
    if (test_.Contains(t)) {
      return Status::FailedPrecondition("valid and test splits overlap");
    }
  }
  return Status::OK();
}

}  // namespace kgfd
