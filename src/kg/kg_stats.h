#ifndef KGFD_KG_KG_STATS_H_
#define KGFD_KG_KG_STATS_H_

#include <cstdint>
#include <vector>

#include "kg/triple_store.h"
#include "kg/types.h"

namespace kgfd {

/// Per-side entity occurrence statistics over a triple store. These are the
/// inputs of the UNIFORM_RANDOM and ENTITY_FREQUENCY sampling strategies:
/// both operate over the *unique entities seen on a side* and, for
/// frequency, the per-side occurrence counts.
struct SideCounts {
  /// count(e, subject): number of triples with e as subject, indexed by id.
  std::vector<uint32_t> subject_count;
  /// count(e, object): number of triples with e as object, indexed by id.
  std::vector<uint32_t> object_count;
  /// Unique entity ids occurring as subject, ascending.
  std::vector<EntityId> unique_subjects;
  /// Unique entity ids occurring as object, ascending.
  std::vector<EntityId> unique_objects;

  uint32_t count(EntityId e, TripleSide side) const {
    return side == TripleSide::kSubject ? subject_count[e] : object_count[e];
  }
  const std::vector<EntityId>& unique(TripleSide side) const {
    return side == TripleSide::kSubject ? unique_subjects : unique_objects;
  }
};

/// Computes per-side counts in one pass over the store.
SideCounts ComputeSideCounts(const TripleStore& store);

/// Coarse graph-shape numbers shown by Table 1 / dataset explorer.
struct KgShape {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t num_triples = 0;
  /// 2 * M / N: average relations (triple slots) per entity, as computed in
  /// the paper's WN18RR discussion.
  double avg_relations_per_entity = 0.0;
  /// M / (N^2 * K): fraction of all possible triples that exist.
  double density = 0.0;
};

KgShape ComputeShape(const TripleStore& store);

}  // namespace kgfd

#endif  // KGFD_KG_KG_STATS_H_
