#ifndef KGFD_KG_SYNTHETIC_H_
#define KGFD_KG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "kg/dataset.h"
#include "util/status.h"

namespace kgfd {

/// Parameters of the synthetic KG generator. The generator draws entity and
/// relation usage from Zipf-like popularity distributions (matching the
/// heavy-tailed frequency structure of real benchmark KGs — the property the
/// paper's ENTITY_FREQUENCY / GRAPH_DEGREE strategies exploit) and closes
/// triangles with probability `closure_probability` (controlling the local
/// clustering structure the CLUSTERING_* strategies exploit).
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_entities = 1000;
  size_t num_relations = 10;
  size_t num_train = 10000;
  size_t num_valid = 500;
  size_t num_test = 500;
  /// Zipf exponent of entity popularity (0 = uniform; ~1 = strongly skewed).
  double entity_zipf_exponent = 0.9;
  /// Zipf exponent of relation popularity.
  double relation_zipf_exponent = 0.7;
  /// Probability that a new triple closes a length-2 path into a triangle.
  double closure_probability = 0.2;
  uint64_t seed = 42;
};

/// Generates a dataset with unique triples, pairwise-disjoint splits, and no
/// valid/test entity or relation unseen in train (Dataset::Validate holds on
/// the result). Generation is deterministic in `config.seed`.
Result<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config);

/// Presets matching the metadata signature (Table 1 of the paper) of the
/// four evaluation datasets, downscaled by `scale` (entity and triple counts
/// divided by `scale`; relation counts kept intact since the discovery
/// algorithm's runtime scales with them). `scale=1` reproduces the paper's
/// full sizes.
SyntheticConfig Fb15k237Config(double scale, uint64_t seed = 42);
SyntheticConfig Wn18rrConfig(double scale, uint64_t seed = 42);
SyntheticConfig Yago310Config(double scale, uint64_t seed = 42);
SyntheticConfig CodexLConfig(double scale, uint64_t seed = 42);

/// All four presets in paper order (FB15K-237, WN18RR, YAGO3-10, CoDEx-L).
std::vector<SyntheticConfig> AllDatasetConfigs(double scale,
                                               uint64_t seed = 42);

}  // namespace kgfd

#endif  // KGFD_KG_SYNTHETIC_H_
