#ifndef KGFD_KG_IO_H_
#define KGFD_KG_IO_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "kg/types.h"
#include "kg/vocab.h"
#include "util/retry.h"
#include "util/status.h"

namespace kgfd {

/// Parses a `subject<TAB>relation<TAB>object` file (the FB15K/WN18RR/LibKGE
/// interchange format), growing the vocabularies as new names appear.
/// CRLF line endings are accepted; lines with a NUL byte, a field count
/// other than 3, or an empty field after trimming are rejected.
Result<std::vector<Triple>> ReadTriplesTsv(const std::string& path,
                                           Vocabulary* entities,
                                           Vocabulary* relations);

/// Writes triples as TSV using the vocabularies for names; ids without names
/// are written as their decimal value.
Status WriteTriplesTsv(const std::string& path,
                       const std::vector<Triple>& triples,
                       const Vocabulary& entities,
                       const Vocabulary& relations);

/// Loads a LibKGE-style dataset directory containing train.txt, valid.txt
/// and test.txt. The dataset is validated (disjoint splits, no unseen
/// valid/test entities) before being returned. Transient I/O errors on the
/// split reads are retried under `retry` (default: 3 attempts with small
/// exponential backoff).
Result<Dataset> LoadDatasetDir(const std::string& dir,
                               const std::string& name,
                               const RetryPolicy& retry = RetryPolicy());

/// Writes the three splits of `dataset` into `dir` as train.txt / valid.txt
/// / test.txt. The directory must exist.
Status SaveDatasetDir(const Dataset& dataset, const std::string& dir);

}  // namespace kgfd

#endif  // KGFD_KG_IO_H_
