#include "kg/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/alias_sampler.h"
#include "util/logging.h"
#include "util/rng.h"

namespace kgfd {
namespace {

std::vector<double> ZipfWeights(size_t n, double exponent) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return w;
}

/// Splits unique triples into train/valid/test such that every valid/test
/// entity and relation still occurs in train: a triple may leave train only
/// while each of its three elements has multiplicity >= 2 among the
/// remaining train triples.
void SplitWithCoverage(std::vector<Triple> all, size_t num_valid,
                       size_t num_test, Rng* rng, Dataset* dataset) {
  rng->Shuffle(&all);
  std::vector<uint32_t> entity_count(dataset->num_entities(), 0);
  std::vector<uint32_t> relation_count(dataset->num_relations(), 0);
  for (const Triple& t : all) {
    ++entity_count[t.subject];
    ++entity_count[t.object];
    ++relation_count[t.relation];
  }
  std::vector<Triple> valid;
  std::vector<Triple> test;
  std::vector<Triple> train;
  for (const Triple& t : all) {
    // A triple can leave train only while each of its elements keeps at
    // least one remaining occurrence. The generator never emits self-loops,
    // so subject and object decrement independently.
    const bool movable = t.subject != t.object &&
                         entity_count[t.subject] >= 2 &&
                         entity_count[t.object] >= 2 &&
                         relation_count[t.relation] >= 2;
    if (movable && test.size() < num_test) {
      test.push_back(t);
    } else if (movable && valid.size() < num_valid) {
      valid.push_back(t);
    } else {
      train.push_back(t);
      continue;
    }
    --entity_count[t.subject];
    --entity_count[t.object];
    --relation_count[t.relation];
  }
  dataset->train().AddAll(train).AbortIfNotOk("synthetic train split");
  dataset->valid().AddAll(valid).AbortIfNotOk("synthetic valid split");
  dataset->test().AddAll(test).AbortIfNotOk("synthetic test split");
}

}  // namespace

Result<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config) {
  if (config.num_entities < 2 || config.num_relations < 1) {
    return Status::InvalidArgument("need >= 2 entities and >= 1 relation");
  }
  if (config.closure_probability < 0.0 || config.closure_probability > 1.0) {
    return Status::InvalidArgument("closure_probability must be in [0, 1]");
  }
  const size_t target =
      config.num_train + config.num_valid + config.num_test;
  const double capacity = static_cast<double>(config.num_entities) *
                          static_cast<double>(config.num_entities - 1) *
                          static_cast<double>(config.num_relations);
  if (static_cast<double>(target) > 0.5 * capacity) {
    return Status::InvalidArgument(
        "requested triple count exceeds half the graph capacity; "
        "increase entities/relations or lower triple counts");
  }

  Rng rng(config.seed);
  KGFD_ASSIGN_OR_RETURN(
      AliasSampler entity_sampler,
      AliasSampler::Build(
          ZipfWeights(config.num_entities, config.entity_zipf_exponent)));
  KGFD_ASSIGN_OR_RETURN(
      AliasSampler relation_sampler,
      AliasSampler::Build(
          ZipfWeights(config.num_relations, config.relation_zipf_exponent)));

  std::unordered_set<uint64_t> seen;
  std::vector<Triple> triples;
  triples.reserve(target);
  // Undirected neighbor lists for triangle closure; duplicates tolerated
  // (they just bias closure toward frequent co-occurrences).
  std::vector<std::vector<EntityId>> neighbors(config.num_entities);
  // Entities with >= 2 neighbors, eligible as triangle pivots.
  std::vector<EntityId> pivots;
  std::vector<bool> is_pivot(config.num_entities, false);

  auto try_add = [&](EntityId s, RelationId r, EntityId o) {
    if (s == o) return false;
    const Triple t{s, r, o};
    if (!seen.insert(PackTriple(t)).second) return false;
    triples.push_back(t);
    neighbors[s].push_back(o);
    neighbors[o].push_back(s);
    for (EntityId e : {s, o}) {
      if (!is_pivot[e] && neighbors[e].size() >= 2) {
        is_pivot[e] = true;
        pivots.push_back(e);
      }
    }
    return true;
  };

  const size_t max_attempts = 60 * target + 1000;
  size_t attempts = 0;
  while (triples.size() < target && attempts < max_attempts) {
    ++attempts;
    const RelationId r =
        static_cast<RelationId>(relation_sampler.Sample(&rng));
    if (!pivots.empty() && rng.Bernoulli(config.closure_probability)) {
      // Triadic closure: connect two neighbors of a pivot node.
      const EntityId v = pivots[rng.UniformInt(pivots.size())];
      const auto& nv = neighbors[v];
      const EntityId u = nv[rng.UniformInt(nv.size())];
      const EntityId w = nv[rng.UniformInt(nv.size())];
      if (rng.Bernoulli(0.5)) {
        try_add(u, r, w);
      } else {
        try_add(w, r, u);
      }
    } else {
      const EntityId s = static_cast<EntityId>(entity_sampler.Sample(&rng));
      const EntityId o = static_cast<EntityId>(entity_sampler.Sample(&rng));
      try_add(s, r, o);
    }
  }
  if (triples.size() < target) {
    return Status::Internal(
        "synthetic generator could not reach the requested triple count "
        "(graph too saturated); got " +
        std::to_string(triples.size()) + " of " + std::to_string(target));
  }

  Dataset dataset(config.name, config.num_entities, config.num_relations);
  SplitWithCoverage(std::move(triples), config.num_valid, config.num_test,
                    &rng, &dataset);
  KGFD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

namespace {

size_t Scaled(size_t full, double scale, size_t floor_value) {
  const double v = static_cast<double>(full) / scale;
  return std::max(floor_value, static_cast<size_t>(v));
}

}  // namespace

SyntheticConfig Fb15k237Config(double scale, uint64_t seed) {
  // Dense, many-relation Freebase subset: high clustering, strong skew.
  SyntheticConfig c;
  c.name = "FB15K-237";
  c.num_entities = Scaled(14541, scale, 50);
  c.num_relations = 237;
  c.num_train = Scaled(272115, scale, 500);
  c.num_valid = Scaled(17535, scale, 30);
  c.num_test = Scaled(20429, scale, 30);
  c.entity_zipf_exponent = 0.85;
  c.relation_zipf_exponent = 0.8;
  c.closure_probability = 0.42;
  c.seed = seed;
  return c;
}

SyntheticConfig Wn18rrConfig(double scale, uint64_t seed) {
  // Sparse lexical graph: few relations, ~4.5 triple slots per entity,
  // near-zero clustering (the paper's Fig. 3 outlier).
  SyntheticConfig c;
  c.name = "WN18RR";
  c.num_entities = Scaled(40943, scale, 120);
  c.num_relations = 11;
  c.num_train = Scaled(86835, scale, 260);
  c.num_valid = Scaled(3034, scale, 10);
  c.num_test = Scaled(3134, scale, 10);
  c.entity_zipf_exponent = 0.45;
  c.relation_zipf_exponent = 0.6;
  c.closure_probability = 0.02;
  c.seed = seed;
  return c;
}

SyntheticConfig Yago310Config(double scale, uint64_t seed) {
  // Large-scale Wikipedia/WordNet graph: moderate clustering, heavy tail.
  SyntheticConfig c;
  c.name = "YAGO3-10";
  c.num_entities = Scaled(123182, scale, 300);
  c.num_relations = 37;
  c.num_train = Scaled(1079040, scale, 2600);
  c.num_valid = Scaled(5000, scale, 12);
  c.num_test = Scaled(5000, scale, 12);
  c.entity_zipf_exponent = 1.0;
  c.relation_zipf_exponent = 0.9;
  c.closure_probability = 0.22;
  c.seed = seed;
  return c;
}

SyntheticConfig CodexLConfig(double scale, uint64_t seed) {
  // Wikidata extraction: between FB15K-237 and YAGO3-10 in density.
  SyntheticConfig c;
  c.name = "CoDEx-L";
  c.num_entities = Scaled(77951, scale, 200);
  c.num_relations = 69;
  c.num_train = Scaled(550800, scale, 1400);
  c.num_valid = Scaled(30600, scale, 75);
  c.num_test = Scaled(30600, scale, 75);
  c.entity_zipf_exponent = 0.9;
  c.relation_zipf_exponent = 0.75;
  c.closure_probability = 0.3;
  c.seed = seed;
  return c;
}

std::vector<SyntheticConfig> AllDatasetConfigs(double scale, uint64_t seed) {
  return {Fb15k237Config(scale, seed), Wn18rrConfig(scale, seed),
          Yago310Config(scale, seed), CodexLConfig(scale, seed)};
}

}  // namespace kgfd
