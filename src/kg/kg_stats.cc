#include "kg/kg_stats.h"

namespace kgfd {

SideCounts ComputeSideCounts(const TripleStore& store) {
  SideCounts counts;
  counts.subject_count.assign(store.num_entities(), 0);
  counts.object_count.assign(store.num_entities(), 0);
  for (const Triple& t : store.triples()) {
    ++counts.subject_count[t.subject];
    ++counts.object_count[t.object];
  }
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    if (counts.subject_count[e] > 0) counts.unique_subjects.push_back(e);
    if (counts.object_count[e] > 0) counts.unique_objects.push_back(e);
  }
  return counts;
}

KgShape ComputeShape(const TripleStore& store) {
  KgShape shape;
  shape.num_entities = store.num_entities();
  shape.num_relations = store.num_relations();
  shape.num_triples = store.size();
  if (shape.num_entities > 0) {
    shape.avg_relations_per_entity =
        2.0 * static_cast<double>(shape.num_triples) /
        static_cast<double>(shape.num_entities);
    const double possible = static_cast<double>(shape.num_entities) *
                            static_cast<double>(shape.num_entities) *
                            static_cast<double>(shape.num_relations);
    shape.density = possible > 0
                        ? static_cast<double>(shape.num_triples) / possible
                        : 0.0;
  }
  return shape;
}

}  // namespace kgfd
