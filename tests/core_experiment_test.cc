#include "core/experiment.h"

#include <gtest/gtest.h>

#include <set>

namespace kgfd {
namespace {

ExperimentConfig TinyExperiment() {
  ExperimentConfig c;
  c.scale = 600.0;  // smallest presets
  c.embedding_dim = 8;
  c.epochs = 2;
  c.models = {ModelKind::kTransE, ModelKind::kDistMult};
  c.strategies = {SamplingStrategy::kUniformRandom,
                  SamplingStrategy::kEntityFrequency};
  c.discovery.top_n = 20;
  c.discovery.max_candidates = 40;
  c.seed = 13;
  return c;
}

TEST(DefaultTrainerConfigTest, PerModelLosses) {
  const ExperimentConfig c;
  EXPECT_EQ(DefaultTrainerConfig(ModelKind::kTransE, c).loss,
            LossKind::kMarginRanking);
  EXPECT_EQ(DefaultTrainerConfig(ModelKind::kConvE, c).loss,
            LossKind::kBinaryCrossEntropy);
  EXPECT_EQ(DefaultTrainerConfig(ModelKind::kComplEx, c).loss,
            LossKind::kSoftplus);
  EXPECT_EQ(DefaultTrainerConfig(ModelKind::kDistMult, c).optimizer.kind,
            OptimizerKind::kAdam);
}

TEST(DefaultModelConfigTest, FixesUpModelConstraints) {
  Dataset d("x", 100, 7);
  ExperimentConfig c;
  c.embedding_dim = 15;  // odd, and not conv-reshapeable
  const ModelConfig complex_config =
      DefaultModelConfig(ModelKind::kComplEx, d, c);
  EXPECT_EQ(complex_config.embedding_dim % 2, 0u);
  const ModelConfig conve_config =
      DefaultModelConfig(ModelKind::kConvE, d, c);
  EXPECT_EQ(conve_config.embedding_dim % conve_config.conve_reshape_height,
            0u);
  EXPECT_GE(conve_config.embedding_dim / conve_config.conve_reshape_height,
            3u);
  c.embedding_dim = 64;
  const ModelConfig rescal_config =
      DefaultModelConfig(ModelKind::kRescal, d, c);
  EXPECT_LE(rescal_config.embedding_dim, 24u);
}

TEST(ExperimentTest, GridProducesOneCellPerCombination) {
  const ExperimentConfig c = TinyExperiment();
  auto ds = GenerateSyntheticDataset(Wn18rrConfig(c.scale, c.seed));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto cells = RunGridOnDataset(ds.value(), c);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  EXPECT_EQ(cells.value().size(),
            c.models.size() * c.strategies.size());
  std::set<std::pair<std::string, std::string>> combos;
  for (const ExperimentCell& cell : cells.value()) {
    EXPECT_EQ(cell.dataset, "WN18RR");
    combos.insert({cell.model, cell.strategy});
    EXPECT_GE(cell.stats.total_seconds, 0.0);
    EXPECT_GE(cell.mrr, 0.0);
    EXPECT_LE(cell.mrr, 1.0);
  }
  EXPECT_EQ(combos.size(), cells.value().size());
}

TEST(ExperimentTest, AbbrevMatchesStrategy) {
  const ExperimentConfig c = TinyExperiment();
  auto ds = GenerateSyntheticDataset(Wn18rrConfig(c.scale, c.seed));
  ASSERT_TRUE(ds.ok());
  auto cells = RunGridOnDataset(ds.value(), c);
  ASSERT_TRUE(cells.ok());
  for (const ExperimentCell& cell : cells.value()) {
    auto strategy = SamplingStrategyFromName(cell.strategy);
    ASSERT_TRUE(strategy.ok());
    EXPECT_EQ(cell.strategy_abbrev,
              SamplingStrategyAbbrev(strategy.value()));
  }
}

}  // namespace
}  // namespace kgfd
