#include "core/discovery.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_set>

#include <limits>

#include "kg/synthetic.h"
#include "kge/trainer.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<Model> model;
};

/// One trained model on a small synthetic KG, shared across tests.
const Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    SyntheticConfig c;
    c.name = "disc";
    c.num_entities = 60;
    c.num_relations = 4;
    c.num_train = 600;
    c.num_valid = 20;
    c.num_test = 20;
    c.seed = 9;
    auto dataset =
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset");
    ModelConfig mc;
    mc.num_entities = dataset.num_entities();
    mc.num_relations = dataset.num_relations();
    mc.embedding_dim = 12;
    TrainerConfig tc;
    tc.epochs = 10;
    tc.batch_size = 64;
    tc.loss = LossKind::kSoftplus;
    tc.optimizer.learning_rate = 0.05;
    tc.seed = 3;
    auto model =
        std::move(TrainModel(ModelKind::kDistMult, mc, dataset.train(), tc))
            .ValueOrDie("model");
    return new Fixture{std::move(dataset), std::move(model)};
  }();
  return *fixture;
}

DiscoveryOptions SmallOptions(SamplingStrategy strategy) {
  DiscoveryOptions o;
  o.top_n = 30;
  o.max_candidates = 100;
  o.strategy = strategy;
  o.seed = 77;
  return o;
}

TEST(DiscoveryMrrTest, EmptyIsZero) { EXPECT_EQ(DiscoveryMrr({}), 0.0); }

TEST(DiscoveryMrrTest, HandComputed) {
  std::vector<DiscoveredFact> facts(2);
  facts[0].rank = 2.0;
  facts[1].rank = 4.0;
  EXPECT_DOUBLE_EQ(DiscoveryMrr(facts), (0.5 + 0.25) / 2.0);
}

TEST(DiscoverFactsTest, RejectsBadOptions) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.top_n = 0;
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
  o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.max_candidates = 0;
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
  o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.max_iterations = 0;
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
  o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.relations = {99};
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
}

TEST(DiscoverFactsTest, ValidateDiscoveryOptionsMatchesDiscoverFacts) {
  // The standalone validator (used by the resumable and serving entry
  // points) must agree with DiscoverFacts on what is rejectable.
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kUniformRandom);
  EXPECT_TRUE(ValidateDiscoveryOptions(o, f.dataset.train()).ok());
  o.max_candidates = 0;
  EXPECT_EQ(ValidateDiscoveryOptions(o, f.dataset.train()).code(),
            StatusCode::kInvalidArgument);
  o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.relations = {99};
  EXPECT_EQ(ValidateDiscoveryOptions(o, f.dataset.train()).code(),
            StatusCode::kOutOfRange);
}

TEST(DiscoverFactsTest, TinyMaxCandidatesNeverOvershootsBudget) {
  // Regression: sample_size = sqrt(max_candidates) + 10 makes the
  // mesh-grid much larger than tiny budgets (max_candidates = 1 generates
  // up to 11x11 pairs); the per-relation candidate set must still honor
  // the cap exactly.
  const Fixture& f = SharedFixture();
  for (const size_t budget : {size_t{1}, size_t{2}, size_t{5}}) {
    DiscoveryOptions o = SmallOptions(SamplingStrategy::kUniformRandom);
    o.max_candidates = budget;
    o.top_n = 1000;  // rank filter wide open: the cap must do the limiting
    const auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const size_t num_relations = f.dataset.train().UsedRelations().size();
    EXPECT_LE(result.value().facts.size(), budget * num_relations);
    EXPECT_LE(result.value().stats.num_candidates, budget * num_relations);
  }
}

TEST(DiscoverFactsTest, CandidateMemoryCapRejectsOversizedSweep) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kUniformRandom);
  // A huge max_candidates would silently demand sample_size^2 mesh-grid
  // memory; the cap must refuse it up front with an actionable message
  // instead of attempting the allocation.
  o.max_candidates = size_t{1} << 40;
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("max_candidate_memory_bytes"),
            std::string::npos);

  // Raising the cap (or shrinking the sweep) clears the error.
  o = SmallOptions(SamplingStrategy::kUniformRandom);
  o.max_candidate_memory_bytes = 1;  // everything is over a 1-byte cap
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
  o.max_candidate_memory_bytes = size_t{1} << 30;
  EXPECT_TRUE(DiscoverFacts(*f.model, f.dataset.train(), o).ok());
}

TEST(DiscoverFactsTest, RejectsMismatchedModel) {
  const Fixture& f = SharedFixture();
  TripleStore other(5, 1);
  ASSERT_TRUE(other.Add({0, 0, 1}).ok());
  EXPECT_FALSE(
      DiscoverFacts(*f.model, other,
                    SmallOptions(SamplingStrategy::kUniformRandom))
          .ok());
}

TEST(DiscoverFactsTest, AcceptsModelWithExtraRelations) {
  // The shared shape contract (ValidateModelShape): entity vocabularies
  // must match exactly, but a model trained on a superset relation
  // vocabulary may score a sub-KG slice.
  const Fixture& f = SharedFixture();
  ModelConfig mc;
  mc.num_entities = f.dataset.num_entities();
  mc.num_relations = f.dataset.num_relations() + 3;
  mc.embedding_dim = 8;
  Rng rng(5);
  auto model = CreateModel(ModelKind::kDistMult, mc, &rng);
  ASSERT_TRUE(model.ok());
  auto result =
      DiscoverFacts(*model.value(), f.dataset.train(),
                    SmallOptions(SamplingStrategy::kUniformRandom));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

/// Contract sweep over all six strategies.
class DiscoveryContractTest
    : public ::testing::TestWithParam<SamplingStrategy> {};

TEST_P(DiscoveryContractTest, FactsAreNeverKnownTriples) {
  const Fixture& f = SharedFixture();
  auto result =
      DiscoverFacts(*f.model, f.dataset.train(), SmallOptions(GetParam()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const DiscoveredFact& fact : result.value().facts) {
    EXPECT_FALSE(f.dataset.train().Contains(fact.triple));
  }
}

TEST_P(DiscoveryContractTest, RanksRespectTopN) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions o = SmallOptions(GetParam());
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  for (const DiscoveredFact& fact : result.value().facts) {
    EXPECT_LE(fact.rank, static_cast<double>(o.top_n));
    EXPECT_GE(fact.rank, 1.0);
    EXPECT_DOUBLE_EQ(fact.rank,
                     0.5 * (fact.subject_rank + fact.object_rank));
  }
}

TEST_P(DiscoveryContractTest, CandidateBudgetRespected) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions o = SmallOptions(GetParam());
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  const size_t num_relations = f.dataset.train().UsedRelations().size();
  EXPECT_LE(result.value().stats.num_candidates,
            o.max_candidates * num_relations);
  EXPECT_LE(result.value().facts.size(),
            result.value().stats.num_candidates);
  EXPECT_EQ(result.value().stats.num_relations_processed, num_relations);
}

TEST_P(DiscoveryContractTest, DeterministicUnderSeed) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions o = SmallOptions(GetParam());
  auto a = DiscoverFacts(*f.model, f.dataset.train(), o);
  auto b = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().facts.size(), b.value().facts.size());
  for (size_t i = 0; i < a.value().facts.size(); ++i) {
    EXPECT_EQ(a.value().facts[i].triple, b.value().facts[i].triple);
    EXPECT_EQ(a.value().facts[i].rank, b.value().facts[i].rank);
  }
}

TEST_P(DiscoveryContractTest, NoDuplicateFactsWithinRelation) {
  const Fixture& f = SharedFixture();
  auto result =
      DiscoverFacts(*f.model, f.dataset.train(), SmallOptions(GetParam()));
  ASSERT_TRUE(result.ok());
  std::set<std::tuple<EntityId, RelationId, EntityId>> seen;
  for (const DiscoveredFact& fact : result.value().facts) {
    EXPECT_TRUE(seen.insert({fact.triple.subject, fact.triple.relation,
                             fact.triple.object})
                    .second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DiscoveryContractTest,
    ::testing::Values(SamplingStrategy::kUniformRandom,
                      SamplingStrategy::kEntityFrequency,
                      SamplingStrategy::kGraphDegree,
                      SamplingStrategy::kClusteringCoefficient,
                      SamplingStrategy::kClusteringTriangles,
                      SamplingStrategy::kClusteringSquares),
    [](const ::testing::TestParamInfo<SamplingStrategy>& info) {
      return SamplingStrategyName(info.param);
    });

TEST(DiscoverFactsTest, RelationSubsetHonored) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  o.relations = {1};
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.num_relations_processed, 1u);
  for (const DiscoveredFact& fact : result.value().facts) {
    EXPECT_EQ(fact.triple.relation, 1u);
  }
}

TEST(DiscoverFactsTest, HigherTopNNeverYieldsFewerFacts) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions lo = SmallOptions(SamplingStrategy::kGraphDegree);
  lo.top_n = 5;
  DiscoveryOptions hi = lo;
  hi.top_n = 60;
  auto few = DiscoverFacts(*f.model, f.dataset.train(), lo);
  auto many = DiscoverFacts(*f.model, f.dataset.train(), hi);
  ASSERT_TRUE(few.ok() && many.ok());
  EXPECT_GE(many.value().facts.size(), few.value().facts.size());
}

TEST(DiscoverFactsTest, HigherTopNLowersMrr) {
  // The paper's Fig. 8(b): admitting worse-ranked facts dilutes MRR.
  const Fixture& f = SharedFixture();
  DiscoveryOptions lo = SmallOptions(SamplingStrategy::kGraphDegree);
  lo.top_n = 5;
  DiscoveryOptions hi = lo;
  hi.top_n = 60;
  auto strict = DiscoverFacts(*f.model, f.dataset.train(), lo);
  auto loose = DiscoverFacts(*f.model, f.dataset.train(), hi);
  ASSERT_TRUE(strict.ok() && loose.ok());
  if (!strict.value().facts.empty() && !loose.value().facts.empty()) {
    EXPECT_GE(DiscoveryMrr(strict.value().facts),
              DiscoveryMrr(loose.value().facts));
  }
}

TEST(DiscoverFactsTest, CachedWeightsMatchFaithfulFacts) {
  // Weight caching is a pure performance ablation: with the same seed the
  // sampled candidates — and hence the discovered facts — are identical.
  const Fixture& f = SharedFixture();
  DiscoveryOptions faithful = SmallOptions(SamplingStrategy::kGraphDegree);
  DiscoveryOptions cached = faithful;
  cached.cache_weights = true;
  auto a = DiscoverFacts(*f.model, f.dataset.train(), faithful);
  auto b = DiscoverFacts(*f.model, f.dataset.train(), cached);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().facts.size(), b.value().facts.size());
  for (size_t i = 0; i < a.value().facts.size(); ++i) {
    EXPECT_EQ(a.value().facts[i].triple, b.value().facts[i].triple);
  }
  EXPECT_LE(b.value().stats.weight_seconds,
            a.value().stats.weight_seconds + 1e-9);
}

TEST(DiscoverFactsTest, StatsAreInternallyConsistent) {
  const Fixture& f = SharedFixture();
  auto result = DiscoverFacts(*f.model, f.dataset.train(),
                              SmallOptions(SamplingStrategy::kUniformRandom));
  ASSERT_TRUE(result.ok());
  const DiscoveryStats& s = result.value().stats;
  EXPECT_EQ(s.num_facts, result.value().facts.size());
  EXPECT_GE(s.total_seconds, 0.0);
  // The three phases are disjoint, so their sum never exceeds wall time
  // on a serial run.
  EXPECT_LE(s.weight_seconds + s.generation_seconds + s.evaluation_seconds,
            s.total_seconds + 0.05);
  if (s.total_seconds > 0.0 && s.num_facts > 0) {
    EXPECT_GT(s.FactsPerHour(), 0.0);
  }
}

TEST(DiscoverFactsTest, CachedWeightsNotDoubleCountedAsGeneration) {
  // Regression: generation_seconds used to be seeded with the hoisted
  // weight time, counting it in two phases at once.
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kClusteringTriangles);
  o.cache_weights = true;
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  const DiscoveryStats& s = result.value().stats;
  EXPECT_GT(s.weight_seconds, 0.0);
  EXPECT_LE(s.weight_seconds + s.generation_seconds + s.evaluation_seconds,
            s.total_seconds + 0.05);
}

TEST(DiscoverFactsTest, RankAggregationModes) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  o.rank_aggregation = RankAggregation::kMin;
  auto min_result = DiscoverFacts(*f.model, f.dataset.train(), o);
  o.rank_aggregation = RankAggregation::kMax;
  auto max_result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(min_result.ok() && max_result.ok());
  // kMin admits everything kMax admits (same candidates, laxer filter).
  EXPECT_GE(min_result.value().facts.size(),
            max_result.value().facts.size());
  for (const DiscoveredFact& fact : min_result.value().facts) {
    EXPECT_DOUBLE_EQ(
        fact.rank, std::min(fact.subject_rank, fact.object_rank));
  }
}

TEST(DiscoverFactsTest, ParallelMatchesSerialExactly) {
  // Each relation has its own RNG stream, so a thread pool must not change
  // the discovered facts in any way.
  const Fixture& f = SharedFixture();
  const DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  auto serial = DiscoverFacts(*f.model, f.dataset.train(), o);
  ThreadPool pool(4);
  auto parallel = DiscoverFacts(*f.model, f.dataset.train(), o, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial.value().facts.size(), parallel.value().facts.size());
  for (size_t i = 0; i < serial.value().facts.size(); ++i) {
    EXPECT_EQ(serial.value().facts[i].triple,
              parallel.value().facts[i].triple);
    EXPECT_EQ(serial.value().facts[i].rank, parallel.value().facts[i].rank);
  }
  EXPECT_EQ(serial.value().stats.num_candidates,
            parallel.value().stats.num_candidates);
}

TEST(DiscoverFactsTest, BitIdenticalAcrossThreadCounts) {
  // The inner ranking loop fans out over candidates; fixed per-candidate
  // slots plus per-relation RNG streams must keep the full result —
  // triples, all three ranks, and the candidate count — bit-identical for
  // every thread count, including the serial path.
  const Fixture& f = SharedFixture();
  const DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), o, nullptr);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads);
    auto result = DiscoverFacts(*f.model, f.dataset.train(), o, &pool);
    ASSERT_TRUE(result.ok()) << threads << " threads";
    ASSERT_EQ(result.value().facts.size(), reference.value().facts.size())
        << threads << " threads";
    for (size_t i = 0; i < reference.value().facts.size(); ++i) {
      const DiscoveredFact& want = reference.value().facts[i];
      const DiscoveredFact& got = result.value().facts[i];
      EXPECT_EQ(got.triple, want.triple) << threads << " threads";
      EXPECT_EQ(got.rank, want.rank) << threads << " threads";
      EXPECT_EQ(got.subject_rank, want.subject_rank) << threads << " threads";
      EXPECT_EQ(got.object_rank, want.object_rank) << threads << " threads";
    }
    EXPECT_EQ(result.value().stats.num_candidates,
              reference.value().stats.num_candidates);
  }
}

TEST(DiscoverFactsTest, SingleHotRelationUsesInnerParallelism) {
  // A one-relation job must still produce identical output under a pool
  // (the outer loop is a single slot; only the inner ranking fans out).
  const Fixture& f = SharedFixture();
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kGraphDegree);
  o.relations = {2};
  auto serial = DiscoverFacts(*f.model, f.dataset.train(), o, nullptr);
  ThreadPool pool(8);
  auto parallel = DiscoverFacts(*f.model, f.dataset.train(), o, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial.value().facts.size(), parallel.value().facts.size());
  for (size_t i = 0; i < serial.value().facts.size(); ++i) {
    EXPECT_EQ(serial.value().facts[i].triple,
              parallel.value().facts[i].triple);
    EXPECT_EQ(serial.value().facts[i].rank, parallel.value().facts[i].rank);
  }
}

TEST(DiscoverFactsTest, FactsOrderedByRelationSlot) {
  // Outcomes merge in relation order regardless of scheduling.
  const Fixture& f = SharedFixture();
  auto result = DiscoverFacts(*f.model, f.dataset.train(),
                              SmallOptions(SamplingStrategy::kGraphDegree));
  ASSERT_TRUE(result.ok());
  const std::vector<RelationId> used = f.dataset.train().UsedRelations();
  size_t last_pos = 0;
  for (RelationId r : used) {
    for (size_t i = last_pos; i < result.value().facts.size(); ++i) {
      if (result.value().facts[i].triple.relation == r) last_pos = i;
    }
  }
  // All facts of one relation must be contiguous.
  std::set<RelationId> closed;
  RelationId current = std::numeric_limits<RelationId>::max();
  for (const DiscoveredFact& fact : result.value().facts) {
    if (fact.triple.relation != current) {
      EXPECT_TRUE(closed.insert(fact.triple.relation).second)
          << "relation block split";
      current = fact.triple.relation;
    }
  }
}

TEST(DiscoverFactsTest, PopulatesMetricsRegistry) {
  const Fixture& f = SharedFixture();
  MetricsRegistry registry;
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  o.metrics = &registry;
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  const DiscoveryStats& stats = result.value().stats;
  const MetricsSnapshot snapshot = registry.Snapshot();

  // Counters line up with the returned stats.
  ASSERT_EQ(snapshot.counters.count(kDiscoveryCandidatesCounter), 1u);
  EXPECT_EQ(snapshot.counters.at(kDiscoveryCandidatesCounter),
            stats.num_candidates);
  EXPECT_EQ(snapshot.counters.at(kDiscoveryFactsCounter), stats.num_facts);
  EXPECT_EQ(snapshot.counters.at(kDiscoveryRelationsCounter),
            stats.num_relations_processed);
  // Every candidate performs exactly one object-side and one subject-side
  // score-cache lookup, each a hit or a miss.
  EXPECT_EQ(snapshot.counters.at(kDiscoveryScoreCacheHits) +
                snapshot.counters.at(kDiscoveryScoreCacheMisses),
            2 * stats.num_candidates);
  EXPECT_GT(snapshot.counters.at(kDiscoveryScoreCacheMisses), 0u);

  // One span per relation per phase, and the histogram totals equal the
  // phase timings (same measured values, so no double counting).
  for (const char* span : {kDiscoveryWeightsSpan, kDiscoveryGenerationSpan,
                           kDiscoveryRankingSpan}) {
    ASSERT_EQ(snapshot.histograms.count(span), 1u) << span;
    EXPECT_EQ(snapshot.histograms.at(span).total,
              stats.num_relations_processed)
        << span;
  }
  EXPECT_NEAR(snapshot.histograms.at(kDiscoveryWeightsSpan).sum,
              stats.weight_seconds, 1e-9);
  EXPECT_NEAR(snapshot.histograms.at(kDiscoveryGenerationSpan).sum,
              stats.generation_seconds, 1e-9);
  EXPECT_NEAR(snapshot.histograms.at(kDiscoveryRankingSpan).sum,
              stats.evaluation_seconds, 1e-9);
}

TEST(DiscoverFactsTest, CachedWeightsRecordOneWeightSpan) {
  const Fixture& f = SharedFixture();
  MetricsRegistry registry;
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  o.cache_weights = true;
  o.metrics = &registry;
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o);
  ASSERT_TRUE(result.ok());
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at(kDiscoveryWeightsSpan).total, 1u);
  EXPECT_NEAR(snapshot.histograms.at(kDiscoveryWeightsSpan).sum,
              result.value().stats.weight_seconds, 1e-9);
}

TEST(DiscoverFactsTest, MetricsMatchUnderThreadPool) {
  // Worker threads feed the same registry; totals must still line up.
  const Fixture& f = SharedFixture();
  MetricsRegistry registry;
  DiscoveryOptions o = SmallOptions(SamplingStrategy::kEntityFrequency);
  o.metrics = &registry;
  ThreadPool pool(4);
  pool.AttachMetrics(&registry);
  auto result = DiscoverFacts(*f.model, f.dataset.train(), o, &pool);
  ASSERT_TRUE(result.ok());
  const DiscoveryStats& stats = result.value().stats;
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(kDiscoveryCandidatesCounter),
            stats.num_candidates);
  EXPECT_EQ(snapshot.counters.at(kDiscoveryFactsCounter), stats.num_facts);
  EXPECT_EQ(snapshot.histograms.at(kDiscoveryRankingSpan).total,
            stats.num_relations_processed);
  EXPECT_EQ(snapshot.counters.at(kThreadPoolTasksSubmitted),
            snapshot.counters.at(kThreadPoolTasksCompleted));
}

TEST(DiscoverFactsTest, UnfilteredRankingIsHarsherOrEqual) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions filtered = SmallOptions(SamplingStrategy::kGraphDegree);
  DiscoveryOptions raw = filtered;
  raw.filtered_ranking = false;
  auto fr = DiscoverFacts(*f.model, f.dataset.train(), filtered);
  auto rr = DiscoverFacts(*f.model, f.dataset.train(), raw);
  ASSERT_TRUE(fr.ok() && rr.ok());
  // Same candidates (same seed); raw ranking can only add competitors.
  EXPECT_GE(fr.value().facts.size(), rr.value().facts.size());
}

}  // namespace
}  // namespace kgfd
