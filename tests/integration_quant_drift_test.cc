#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "kgfd.h"

namespace kgfd {
namespace {

// End-to-end drift contract for quantized storage: discovery on a
// quantized checkpoint must stay close to discovery on the float model
// it came from. "Close" is pinned numerically IN THE REPO (the constants
// below), so a quantization change that degrades downstream rankings
// fails here instead of surfacing as a quietly worse experiment. The
// float mmap backend, by contrast, is held to byte-identity: it stores
// the same floats, so the discovery TSV may not move at all.

/// Quantization changes scores, so ranks may shuffle — but int8 keeps
/// ~2.4 significant digits per row range, which empirically holds MRR
/// within a few points and the discovered fact set mostly intact. int16
/// has 256x the resolution; visible drift there means a bug, not noise.
constexpr double kMaxMrrDriftInt8 = 0.05;
constexpr double kMinFactJaccardInt8 = 0.60;
constexpr double kMaxMrrDriftInt16 = 0.005;
constexpr double kMinFactJaccardInt16 = 0.90;

DiscoveryOptions DriftOptions() {
  DiscoveryOptions o;
  o.top_n = 40;
  o.max_candidates = 80;
  o.strategy = SamplingStrategy::kEntityFrequency;
  o.seed = 20240807;
  return o;
}

/// %.17g: byte equality of the rendering == bit equality of the ranks.
std::string RenderFacts(const DiscoveryResult& result) {
  std::ostringstream out;
  char buffer[128];
  for (const DiscoveredFact& f : result.facts) {
    std::snprintf(buffer, sizeof(buffer), "%u\t%u\t%u\t%.17g\t%.17g\t%.17g\n",
                  f.triple.subject, f.triple.relation, f.triple.object,
                  f.rank, f.subject_rank, f.object_rank);
    out << buffer;
  }
  return out.str();
}

double FactJaccard(const DiscoveryResult& a, const DiscoveryResult& b) {
  std::set<uint64_t> sa, sb, both;
  for (const auto& f : a.facts) sa.insert(PackTriple(f.triple));
  for (const auto& f : b.facts) sb.insert(PackTriple(f.triple));
  for (uint64_t t : sa) {
    if (sb.count(t) != 0) both.insert(t);
  }
  const size_t uni = sa.size() + sb.size() - both.size();
  return uni == 0 ? 1.0 : static_cast<double>(both.size()) / uni;
}

class QuantDriftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig c;
    c.name = "quant_drift";
    c.num_entities = 48;
    c.num_relations = 5;
    c.num_train = 420;
    c.num_valid = 20;
    c.num_test = 20;
    c.seed = 4321;
    dataset_ = std::make_unique<Dataset>(
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("synth"));
    ModelConfig mc;
    mc.num_entities = dataset_->num_entities();
    mc.num_relations = dataset_->num_relations();
    mc.embedding_dim = 12;
    TrainerConfig tc;
    tc.epochs = 6;
    tc.batch_size = 64;
    tc.loss = LossKind::kMarginRanking;
    tc.optimizer.learning_rate = 0.05;
    tc.seed = 99;
    auto model = TrainModel(ModelKind::kTransE, mc, dataset_->train(), tc);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    float_path_ = ::testing::TempDir() + "/kgfd_drift_float.bin";
    ASSERT_TRUE(SaveModel(model.value().get(), mc, float_path_).ok());
  }
  void TearDown() override { std::remove(float_path_.c_str()); }

  Result<std::unique_ptr<Model>> Load(const std::string& path,
                                      EmbeddingBackend backend) {
    CheckpointLoadOptions o;
    o.backend = backend;
    o.verify_mapped_payload = backend == EmbeddingBackend::kMmap;
    return LoadModel(path, o);
  }

  /// Quantizes the float checkpoint to `dtype` and runs discovery and link
  /// prediction on it (ram backend).
  struct QuantRun {
    DiscoveryResult facts;
    double mrr = 0.0;
  };
  QuantRun RunQuantized(EmbeddingDtype dtype) {
    const std::string qpath = ::testing::TempDir() + "/kgfd_drift_" +
                              EmbeddingDtypeName(dtype) + ".bin";
    auto loaded =
        LoadModelWithConfig(float_path_, CheckpointLoadOptions());
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(SaveQuantizedModel(loaded.value().model.get(),
                                   loaded.value().config, dtype, qpath)
                    .ok());
    auto model = Load(qpath, EmbeddingBackend::kRam);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    QuantRun run;
    run.facts = std::move(DiscoverFacts(*model.value(), dataset_->train(),
                                        DriftOptions()))
                    .ValueOrDie("discover");
    run.mrr = std::move(EvaluateLinkPrediction(*model.value(), *dataset_,
                                               dataset_->test()))
                  .ValueOrDie("eval")
                  .mrr;
    std::remove(qpath.c_str());
    return run;
  }

  std::unique_ptr<Dataset> dataset_;
  std::string float_path_;
};

TEST_F(QuantDriftTest, MmapFloatDiscoveryIsByteIdenticalToRam) {
  auto ram = Load(float_path_, EmbeddingBackend::kRam);
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();
  auto mmap = Load(float_path_, EmbeddingBackend::kMmap);
  ASSERT_TRUE(mmap.ok()) << mmap.status().ToString();
  auto ram_facts =
      DiscoverFacts(*ram.value(), dataset_->train(), DriftOptions());
  auto mmap_facts =
      DiscoverFacts(*mmap.value(), dataset_->train(), DriftOptions());
  ASSERT_TRUE(ram_facts.ok() && mmap_facts.ok());
  ASSERT_GT(ram_facts.value().facts.size(), 0u);
  // Same floats, same kernels — the storage backend may not leak into
  // results even at the last bit.
  EXPECT_EQ(RenderFacts(ram_facts.value()), RenderFacts(mmap_facts.value()));
}

TEST_F(QuantDriftTest, QuantizedDriftWithinPinnedThresholds) {
  auto float_model = Load(float_path_, EmbeddingBackend::kRam);
  ASSERT_TRUE(float_model.ok());
  auto float_facts = DiscoverFacts(*float_model.value(), dataset_->train(),
                                   DriftOptions());
  ASSERT_TRUE(float_facts.ok()) << float_facts.status().ToString();
  ASSERT_GT(float_facts.value().facts.size(), 0u);
  const double float_mrr =
      std::move(EvaluateLinkPrediction(*float_model.value(), *dataset_,
                                       dataset_->test()))
          .ValueOrDie("eval")
          .mrr;
  ASSERT_GT(float_mrr, 0.0);

  const QuantRun int8_run = RunQuantized(EmbeddingDtype::kInt8);
  const double int8_drift = std::fabs(int8_run.mrr - float_mrr);
  const double int8_jaccard = FactJaccard(float_facts.value(), int8_run.facts);
  EXPECT_LE(int8_drift, kMaxMrrDriftInt8)
      << "int8 MRR " << int8_run.mrr << " vs float " << float_mrr;
  EXPECT_GE(int8_jaccard, kMinFactJaccardInt8);

  const QuantRun int16_run = RunQuantized(EmbeddingDtype::kInt16);
  const double int16_drift = std::fabs(int16_run.mrr - float_mrr);
  const double int16_jaccard =
      FactJaccard(float_facts.value(), int16_run.facts);
  EXPECT_LE(int16_drift, kMaxMrrDriftInt16)
      << "int16 MRR " << int16_run.mrr << " vs float " << float_mrr;
  EXPECT_GE(int16_jaccard, kMinFactJaccardInt16);

  // int16 should never be less faithful than int8 end to end.
  EXPECT_LE(int16_drift, int8_drift + 1e-12);

  std::printf("drift: float_mrr=%.6f int8_mrr=%.6f (jaccard %.3f) "
              "int16_mrr=%.6f (jaccard %.3f)\n",
              float_mrr, int8_run.mrr, int8_jaccard, int16_run.mrr,
              int16_jaccard);
}

TEST_F(QuantDriftTest, QuantizedMmapDiscoveryMatchesQuantizedRam) {
  const std::string qpath =
      ::testing::TempDir() + "/kgfd_drift_mmap_int8.bin";
  auto loaded = LoadModelWithConfig(float_path_, CheckpointLoadOptions());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(SaveQuantizedModel(loaded.value().model.get(),
                                 loaded.value().config,
                                 EmbeddingDtype::kInt8, qpath)
                  .ok());
  auto ram = Load(qpath, EmbeddingBackend::kRam);
  auto mmap = Load(qpath, EmbeddingBackend::kMmap);
  ASSERT_TRUE(ram.ok() && mmap.ok());
  auto ram_facts =
      DiscoverFacts(*ram.value(), dataset_->train(), DriftOptions());
  auto mmap_facts =
      DiscoverFacts(*mmap.value(), dataset_->train(), DriftOptions());
  ASSERT_TRUE(ram_facts.ok() && mmap_facts.ok());
  EXPECT_EQ(RenderFacts(ram_facts.value()), RenderFacts(mmap_facts.value()));
  std::remove(qpath.c_str());
}

}  // namespace
}  // namespace kgfd
