#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "kge/grad.h"
#include "kge/model.h"
#include "util/rng.h"

namespace kgfd {
namespace {

/// Finite-difference gradient check of AccumulateScoreGradient against
/// TrainingScore for every model. The analytic gradient of the scoring
/// function is the backbone of the whole training stack, so this is the
/// most load-bearing property test in the suite.
struct GradCheckParam {
  ModelKind kind;
  size_t dim;
  int transe_norm = 1;
};

class GradCheckTest : public ::testing::TestWithParam<GradCheckParam> {
 protected:
  static constexpr double kEps = 1e-3;    // central difference step
  static constexpr double kTol = 2e-2;    // float params => loose-ish bound

  void CheckTriple(Model* model, const Triple& t) {
    GradientBatch grads;
    model->AccumulateScoreGradient(t, 1.0, &grads);
    for (const NamedTensor& p : model->Parameters()) {
      const auto* rows = grads.RowsFor(p.tensor);
      // Perturb every touched row coordinate and compare.
      if (rows == nullptr) continue;
      for (const auto& [row, grad] : *rows) {
        for (size_t i = 0; i < p.tensor->cols(); ++i) {
          float* cell = &p.tensor->Row(row)[i];
          const float saved = *cell;
          *cell = saved + static_cast<float>(kEps);
          const double up = model->TrainingScore(t);
          *cell = saved - static_cast<float>(kEps);
          const double down = model->TrainingScore(t);
          *cell = saved;
          const double numeric = (up - down) / (2.0 * kEps);
          EXPECT_NEAR(grad[i], numeric,
                      kTol * std::max(1.0, std::fabs(numeric)))
              << p.name << " row=" << row << " col=" << i;
        }
      }
    }
  }
};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCheckParam& param = GetParam();
  ModelConfig config;
  config.num_entities = 6;
  config.num_relations = 2;
  config.embedding_dim = param.dim;
  config.transe_norm = param.transe_norm;
  config.conve_reshape_height = 2;
  config.conve_num_filters = 2;
  Rng rng(31);
  auto model_or = CreateModel(param.kind, config, &rng);
  ASSERT_TRUE(model_or.ok()) << model_or.status().ToString();
  std::unique_ptr<Model> model = std::move(model_or).value();

  // Several triples, including a self-loop and repeated entities (the
  // gradient must accumulate correctly when subject == object).
  for (const Triple& t : std::vector<Triple>{
           {0, 0, 1}, {2, 1, 3}, {4, 0, 4}, {5, 1, 0}}) {
    CheckTriple(model.get(), t);
  }
}

TEST_P(GradCheckTest, GradientScalesLinearlyWithDscore) {
  const GradCheckParam& param = GetParam();
  ModelConfig config;
  config.num_entities = 5;
  config.num_relations = 2;
  config.embedding_dim = param.dim;
  config.transe_norm = param.transe_norm;
  config.conve_reshape_height = 2;
  config.conve_num_filters = 2;
  Rng rng(32);
  auto model = std::move(CreateModel(param.kind, config, &rng))
                   .ValueOrDie("CreateModel");
  const Triple t{1, 0, 2};
  GradientBatch g1, g3;
  model->AccumulateScoreGradient(t, 1.0, &g1);
  model->AccumulateScoreGradient(t, 3.0, &g3);
  for (const NamedTensor& p : model->Parameters()) {
    const auto* rows1 = g1.RowsFor(p.tensor);
    const auto* rows3 = g3.RowsFor(p.tensor);
    if (rows1 == nullptr) {
      EXPECT_EQ(rows3, nullptr);
      continue;
    }
    ASSERT_NE(rows3, nullptr);
    for (const auto& [row, grad] : *rows1) {
      const auto& grad3 = rows3->at(row);
      for (size_t i = 0; i < grad.size(); ++i) {
        EXPECT_NEAR(grad3[i], 3.0f * grad[i],
                    1e-4 * std::max(1.0f, std::fabs(grad[i])));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, GradCheckTest,
    ::testing::Values(GradCheckParam{ModelKind::kTransE, 8, 2},
                      GradCheckParam{ModelKind::kTransE, 6, 1},
                      GradCheckParam{ModelKind::kDistMult, 8},
                      GradCheckParam{ModelKind::kComplEx, 8},
                      GradCheckParam{ModelKind::kRescal, 6},
                      GradCheckParam{ModelKind::kHolE, 7},
                      GradCheckParam{ModelKind::kConvE, 8},
                      GradCheckParam{ModelKind::kConvE, 10}),
    [](const ::testing::TestParamInfo<GradCheckParam>& info) {
      return std::string(ModelKindName(info.param.kind)) + "_dim" +
             std::to_string(info.param.dim) +
             (info.param.kind == ModelKind::kTransE
                  ? "_L" + std::to_string(info.param.transe_norm)
                  : "");
    });

}  // namespace
}  // namespace kgfd
