#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "util/thread_pool.h"

namespace kgfd {
namespace {

// ------------------------------------------------------------------ token

TEST(CancellationTokenTest, StartsUncancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_TRUE(token.CheckCancelled().ok());
  EXPECT_EQ(token.SecondsSinceRequest(), 0.0);
}

TEST(CancellationTokenTest, RequestCancelIsStickyAndIdempotent) {
  CancellationToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.IsCancelled());
  token.RequestCancel();  // no-op, must not crash or reset the timestamp
  EXPECT_TRUE(token.IsCancelled());
  const Status status = token.CheckCancelled("unit test");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.ToString().find("unit test"), std::string::npos);
}

TEST(CancellationTokenTest, SecondsSinceRequestGrowsFromFirstRequest) {
  CancellationToken token;
  token.RequestCancel();
  const double first = token.SecondsSinceRequest();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  token.RequestCancel();  // must NOT move the request timestamp forward
  EXPECT_GE(token.SecondsSinceRequest(), first);
  EXPECT_GE(token.SecondsSinceRequest(), 0.004);
}

TEST(CancellationTokenTest, VisibleAcrossThreads) {
  CancellationToken token;
  std::atomic<bool> observed{false};
  std::thread watcher([&] {
    while (!token.IsCancelled()) std::this_thread::yield();
    observed.store(true);
  });
  token.RequestCancel();
  watcher.join();
  EXPECT_TRUE(observed.load());
}

// ----------------------------------------------------------- signal handler

TEST(CancellationTokenTest, InstalledSignalHandlerFlipsToken) {
  CancellationToken token;
  InstallSignalCancellation(&token);
  std::raise(SIGINT);
  EXPECT_TRUE(token.IsCancelled());
  // Detach before the token goes out of scope, restoring SIG_DFL so a
  // later real SIGINT does not touch a dangling pointer.
  InstallSignalCancellation(nullptr);
}

TEST(CancellationTokenTest, SigtermAlsoRequestsCancellation) {
  CancellationToken token;
  InstallSignalCancellation(&token);
  std::raise(SIGTERM);
  EXPECT_TRUE(token.IsCancelled());
  InstallSignalCancellation(nullptr);
}

// --------------------------------------------------------------- deadline

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.has_deadline());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.CheckExpired().ok());
  EXPECT_GT(deadline.RemainingSeconds(), 1e12);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-1.0).Expired());
  const Status status = Deadline::After(0.0).CheckExpired("sweep");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.ToString().find("sweep"), std::string::npos);
}

TEST(DeadlineTest, FarFutureBudgetIsNotExpired) {
  const Deadline deadline = Deadline::After(3600.0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 3500.0);
  EXPECT_LE(deadline.RemainingSeconds(), 3600.0);
}

TEST(DeadlineTest, ShortBudgetExpires) {
  const Deadline deadline = Deadline::After(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

// ---------------------------------------------------------------- context

TEST(CancelContextTest, DefaultNeverStops) {
  CancelContext context;
  EXPECT_FALSE(context.CanStop());
  EXPECT_EQ(context.StopReason(), StoppedReason::kNone);
  EXPECT_TRUE(context.Check().ok());
}

TEST(CancelContextTest, TokenDrivesCancelledReason) {
  CancellationToken token;
  const CancelContext context(&token);
  EXPECT_TRUE(context.CanStop());
  EXPECT_EQ(context.StopReason(), StoppedReason::kNone);
  token.RequestCancel();
  EXPECT_EQ(context.StopReason(), StoppedReason::kCancelled);
  EXPECT_EQ(context.Check("ctx").code(), StatusCode::kCancelled);
}

TEST(CancelContextTest, DeadlineDrivesDeadlineReason) {
  const CancelContext context(Deadline::After(0.0));
  EXPECT_TRUE(context.CanStop());
  EXPECT_EQ(context.StopReason(), StoppedReason::kDeadline);
  EXPECT_EQ(context.Check("ctx").code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelContextTest, TokenWinsOverExpiredDeadline) {
  CancellationToken token;
  token.RequestCancel();
  const CancelContext context(&token, Deadline::After(0.0));
  EXPECT_EQ(context.StopReason(), StoppedReason::kCancelled);
}

TEST(StoppedReasonTest, NamesAndStatusesAreStable) {
  EXPECT_STREQ(StoppedReasonName(StoppedReason::kNone), "none");
  EXPECT_STREQ(StoppedReasonName(StoppedReason::kCancelled), "cancelled");
  EXPECT_STREQ(StoppedReasonName(StoppedReason::kDeadline), "deadline");
  EXPECT_TRUE(StoppedStatus(StoppedReason::kNone, "x").ok());
  EXPECT_EQ(StoppedStatus(StoppedReason::kCancelled, "x").code(),
            StatusCode::kCancelled);
  EXPECT_EQ(StoppedStatus(StoppedReason::kDeadline, nullptr).code(),
            StatusCode::kDeadlineExceeded);
}

// ------------------------------------------------------------- ParallelFor

TEST(ParallelForCancelTest, SerialPathSkipsBodyWhenAlreadyStopped) {
  CancellationToken token;
  token.RequestCancel();
  const CancelContext cancel(&token);
  size_t calls = 0;
  ParallelFor(nullptr, 100, [&](size_t, size_t) { ++calls; }, &cancel);
  EXPECT_EQ(calls, 0u);
}

TEST(ParallelForCancelTest, SerialPathRunsWholeRangeWhenNotStopped) {
  CancellationToken token;
  const CancelContext cancel(&token);
  std::vector<char> seen(64, 0);
  ParallelFor(
      nullptr, seen.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) seen[i] = 1;
      },
      &cancel);
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(ParallelForCancelTest, PooledWorkersStopClaimingAfterCancel) {
  ThreadPool pool(4);
  CancellationToken token;
  const CancelContext cancel(&token);
  // Large n guarantees many chunks per worker; cancelling from inside the
  // very first chunk must leave most chunks unclaimed.
  std::atomic<size_t> processed{0};
  ParallelFor(
      &pool, 1 << 16,
      [&](size_t begin, size_t end) {
        token.RequestCancel();
        processed.fetch_add(end - begin);
      },
      &cancel);
  // Started chunks finish (no tearing), but the claim loops bail out, so
  // only a bounded prefix — at most one in-flight chunk per worker — ran.
  EXPECT_LT(processed.load(), size_t{1} << 16);
}

TEST(ParallelForCancelTest, PooledRunCompletesWhenNeverCancelled) {
  ThreadPool pool(4);
  CancellationToken token;
  const CancelContext cancel(&token);
  std::atomic<size_t> processed{0};
  ParallelFor(
      &pool, 1000,
      [&](size_t begin, size_t end) { processed.fetch_add(end - begin); },
      &cancel);
  EXPECT_EQ(processed.load(), 1000u);
}

TEST(ParallelForCancelTest, NullContextBehavesAsBefore) {
  ThreadPool pool(2);
  std::atomic<size_t> processed{0};
  ParallelFor(&pool, 512, [&](size_t begin, size_t end) {
    processed.fetch_add(end - begin);
  });
  EXPECT_EQ(processed.load(), 512u);
}

}  // namespace
}  // namespace kgfd
