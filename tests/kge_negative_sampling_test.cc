#include "kge/negative_sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace kgfd {
namespace {

TripleStore SmallStore() {
  TripleStore store(6, 2);
  store.AddAll({{0, 0, 1}, {1, 0, 2}, {2, 1, 3}, {3, 1, 4}})
      .AbortIfNotOk("small store");
  return store;
}

TEST(NegativeSamplerTest, CorruptChangesExactlyOneSide) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, false);
  Rng rng(1);
  const Triple pos{1, 0, 2};
  for (int i = 0; i < 200; ++i) {
    const Triple neg = sampler.Corrupt(pos, &rng);
    EXPECT_EQ(neg.relation, pos.relation);
    const bool subject_changed = neg.subject != pos.subject;
    const bool object_changed = neg.object != pos.object;
    EXPECT_TRUE(subject_changed != object_changed)
        << "exactly one side must change";
  }
}

TEST(NegativeSamplerTest, CorruptSideRespectsSide) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, false);
  Rng rng(2);
  const Triple pos{1, 0, 2};
  for (int i = 0; i < 100; ++i) {
    const Triple neg = sampler.CorruptSide(pos, TripleSide::kObject, &rng);
    EXPECT_EQ(neg.subject, pos.subject);
    EXPECT_NE(neg.object, pos.object);
  }
  for (int i = 0; i < 100; ++i) {
    const Triple neg = sampler.CorruptSide(pos, TripleSide::kSubject, &rng);
    EXPECT_EQ(neg.object, pos.object);
    EXPECT_NE(neg.subject, pos.subject);
  }
}

TEST(NegativeSamplerTest, FilteredAvoidsTrainingTriples) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, true);
  Rng rng(3);
  const Triple pos{1, 0, 2};
  int known_hits = 0;
  for (int i = 0; i < 500; ++i) {
    const Triple neg = sampler.Corrupt(pos, &rng);
    if (store.Contains(neg)) ++known_hits;
  }
  // With 6 entities and 4 triples, unfiltered sampling would hit known
  // triples regularly; filtered sampling should essentially never (only via
  // retry exhaustion, impossible at this density).
  EXPECT_EQ(known_hits, 0);
}

TEST(NegativeSamplerTest, UnfilteredMayProduceTrainingTriples) {
  // Several subjects share object 1, so subject corruptions of (0, 0, 1)
  // regularly land on true training triples when unfiltered.
  TripleStore store(6, 1);
  ASSERT_TRUE(store.AddAll({{0, 0, 1}, {2, 0, 1}, {3, 0, 1}, {4, 0, 1}})
                  .ok());
  NegativeSampler sampler(&store, false);
  Rng rng(4);
  int known_hits = 0;
  for (int i = 0; i < 500; ++i) {
    if (store.Contains(
            sampler.CorruptSide({0, 0, 1}, TripleSide::kSubject, &rng))) {
      ++known_hits;
    }
  }
  EXPECT_GT(known_hits, 0);

  // The same setup with filtering almost never hits a known triple — only
  // through the documented bounded-retry fallback, which at this density
  // fires with probability (4/6)^16 per draw.
  NegativeSampler filtered(&store, true);
  int filtered_hits = 0;
  for (int i = 0; i < 500; ++i) {
    if (store.Contains(
            filtered.CorruptSide({0, 0, 1}, TripleSide::kSubject, &rng))) {
      ++filtered_hits;
    }
  }
  EXPECT_LT(filtered_hits, 10);
  EXPECT_LT(filtered_hits * 20, known_hits);  // far rarer than unfiltered
}

TEST(NegativeSamplerTest, CorruptManyAlternatesSides) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, false);
  Rng rng(5);
  const Triple pos{2, 1, 3};
  const std::vector<Triple> negs = sampler.CorruptMany(pos, 6, &rng);
  ASSERT_EQ(negs.size(), 6u);
  for (size_t i = 0; i < negs.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(negs[i].object, pos.object) << i;
    } else {
      EXPECT_EQ(negs[i].subject, pos.subject) << i;
    }
  }
}

TEST(NegativeSamplerTest, CoversEntitySpace) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, false);
  Rng rng(6);
  std::set<EntityId> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(sampler.CorruptSide({0, 0, 1}, TripleSide::kObject, &rng)
                    .object);
  }
  // All entities except the positive's object should eventually appear.
  EXPECT_GE(seen.size(), 5u);
}

TEST(NegativeSamplerTest, DeterministicUnderSeed) {
  const TripleStore store = SmallStore();
  NegativeSampler sampler(&store, true);
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sampler.Corrupt({1, 0, 2}, &a), sampler.Corrupt({1, 0, 2}, &b));
  }
}

}  // namespace
}  // namespace kgfd
