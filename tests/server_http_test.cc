#include <gtest/gtest.h>

#include <string>

#include "server/discovery_service.h"
#include "server/http.h"
#include "server/job_manager.h"
#include "util/config_file.h"

namespace kgfd {
namespace {

// ------------------------------------------------------- message framing

TEST(HttpMessageTest, HeaderEndFindsCrlfAndBareLfTerminators) {
  EXPECT_EQ(HttpHeaderEnd("GET / HTTP/1.1\r\nhost: x\r\n\r\nbody"), 27u);
  EXPECT_EQ(HttpHeaderEnd("GET / HTTP/1.1\nhost: x\n\nbody"), 24u);
  EXPECT_EQ(HttpHeaderEnd("GET / HTTP/1.1\r\nhost: x\r\n"),
            std::string::npos);
  EXPECT_EQ(HttpHeaderEnd(""), std::string::npos);
}

TEST(HttpMessageTest, ContentLengthParsesAndRejectsGarbage) {
  std::map<std::string, std::string> headers;
  EXPECT_EQ(HttpContentLength(headers).value(), 0u);  // absent = no body
  headers["content-length"] = "123";
  EXPECT_EQ(HttpContentLength(headers).value(), 123u);
  headers["content-length"] = "12x";
  EXPECT_FALSE(HttpContentLength(headers).ok());
  headers["content-length"] = "-5";
  EXPECT_FALSE(HttpContentLength(headers).ok());
  headers["content-length"] = "99999999999999999999999";  // > uint64
  EXPECT_FALSE(HttpContentLength(headers).ok());
}

TEST(HttpMessageTest, RequestRoundTripsThroughSerializeAndParse) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/jobs";
  request.body = "data.dir = d\nmodel.checkpoint = m\n";
  request.headers["host"] = "127.0.0.1:80";

  const auto parsed = ParseHttpRequest(SerializeHttpRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().method, "POST");
  EXPECT_EQ(parsed.value().target, "/jobs");
  EXPECT_EQ(parsed.value().body, request.body);
  EXPECT_EQ(parsed.value().headers.at("host"), "127.0.0.1:80");
  EXPECT_EQ(parsed.value().headers.at("connection"), "close");
}

TEST(HttpMessageTest, ResponseRoundTripsThroughSerializeAndParse) {
  HttpResponse response;
  response.status_code = 429;
  response.body = "job queue full\n";

  const auto parsed = ParseHttpResponse(SerializeHttpResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().status_code, 429);
  EXPECT_EQ(parsed.value().body, "job queue full\n");
}

TEST(HttpMessageTest, ParseRejectsMalformedRequests) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n\r\n").ok());         // 2 parts
  EXPECT_FALSE(ParseHttpRequest("GET x HTTP/1.1\r\n\r\n").ok());  // no slash
  EXPECT_FALSE(ParseHttpRequest("GET / SPDY/3\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nbadheader\r\n\r\n").ok());
  // Body shorter than the declared Content-Length is a framing error.
  EXPECT_FALSE(
      ParseHttpRequest("POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nab")
          .ok());
}

TEST(HttpMessageTest, HeadOnlyParseIgnoresMissingBody) {
  // The server frames incrementally: it must learn Content-Length from the
  // head while the body is still in flight.
  const auto head = ParseHttpRequestHead(
      "POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\n");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value().method, "POST");
  EXPECT_EQ(HttpContentLength(head.value().headers).value(), 10u);
  EXPECT_TRUE(head.value().body.empty());
}

TEST(HttpMessageTest, HeaderNamesAreLowercasedAndTrimmed) {
  const auto parsed = ParseHttpRequest(
      "GET / HTTP/1.1\r\nContent-Type:  text/plain \r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().headers.at("content-type"), "text/plain");
}

TEST(HttpMessageTest, StatusMappingCoversServiceCodes) {
  EXPECT_EQ(HttpStatusFromStatus(Status::OK()), 200);
  EXPECT_EQ(HttpStatusFromStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusFromStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusFromStatus(Status::FailedPrecondition("x")), 409);
  EXPECT_EQ(HttpStatusFromStatus(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpStatusFromStatus(Status::Internal("x")), 500);
}

TEST(HttpMessageTest, ErrorBodiesGetTrailingNewline) {
  EXPECT_EQ(TextResponse(404, "not found").body, "not found\n");
  EXPECT_EQ(TextResponse(200, "j1").body, "j1");  // 2xx left untouched
}

// ------------------------------------------------------ job submissions

TEST(JobRequestTest, ParsesDiscoverJobWithDefaults) {
  const auto request = JobRequest::Parse(
      "data.dir = data\n"
      "model.checkpoint = model.bin\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().kind, JobRequest::Kind::kDiscover);
  EXPECT_EQ(request.value().data_dir, "data");
  EXPECT_EQ(request.value().checkpoint, "model.bin");
  // Defaults must match `kgfd_cli discover` so both front ends produce
  // identical facts from identical inputs.
  EXPECT_EQ(request.value().discovery.top_n, 500u);
  EXPECT_EQ(request.value().discovery.max_candidates, 500u);
  // (DefaultSamplingStrategy, not a literal: both front ends honor
  // KGFD_DEFAULT_STRATEGY, which the ADAPTIVE CI leg sets suite-wide.)
  EXPECT_EQ(request.value().discovery.strategy, DefaultSamplingStrategy());
  EXPECT_TRUE(request.value().discovery.filtered_ranking);
  EXPECT_EQ(request.value().discovery.seed, 123u);
  EXPECT_EQ(request.value().deadline_s, 0.0);
}

TEST(JobRequestTest, ParsesExplicitDiscoveryKeys) {
  const auto request = JobRequest::Parse(
      "job.kind = discover\n"
      "data.dir = d\n"
      "model.checkpoint = m\n"
      "discovery.strategy = UNIFORM_RANDOM\n"
      "discovery.top_n = 50\n"
      "discovery.max_candidates = 80\n"
      "discovery.seed = 9\n"
      "deadline_s = 2.5\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().discovery.strategy,
            SamplingStrategy::kUniformRandom);
  EXPECT_EQ(request.value().discovery.top_n, 50u);
  EXPECT_EQ(request.value().discovery.max_candidates, 80u);
  EXPECT_EQ(request.value().discovery.seed, 9u);
  EXPECT_EQ(request.value().deadline_s, 2.5);
}

TEST(JobRequestTest, RejectsBadSubmissions) {
  // Missing requireds.
  EXPECT_FALSE(JobRequest::Parse("").ok());
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n").ok());
  EXPECT_FALSE(JobRequest::Parse("model.checkpoint = m\n").ok());
  // Unknown kind.
  EXPECT_FALSE(JobRequest::Parse("job.kind = teleport\n").ok());
  // Unknown key (typo safety).
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n"
                                 "model.checkpoint = m\n"
                                 "discovery.topn = 50\n")
                   .ok());
  // Non-positive numerics must not wrap through the size_t cast.
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n"
                                 "model.checkpoint = m\n"
                                 "discovery.top_n = 0\n")
                   .ok());
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n"
                                 "model.checkpoint = m\n"
                                 "discovery.max_candidates = -3\n")
                   .ok());
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n"
                                 "model.checkpoint = m\n"
                                 "deadline_s = -1\n")
                   .ok());
  // Unknown strategy name.
  EXPECT_FALSE(JobRequest::Parse("data.dir = d\n"
                                 "model.checkpoint = m\n"
                                 "discovery.strategy = CLAIRVOYANT\n")
                   .ok());
}

TEST(JobRequestTest, RunKindValidatesFullSpecAtSubmitTime) {
  // A run job is validated through JobSpec::FromConfig at POST time...
  EXPECT_TRUE(JobRequest::Parse("job.kind = run\n"
                                "dataset.preset = FB15K-237\n"
                                "model.type = TransE\n"
                                "train.epochs = 1\n")
                  .ok());
  // ...so a typo'd pipeline key fails the submission immediately.
  EXPECT_FALSE(JobRequest::Parse("job.kind = run\n"
                                 "model.typ = TransE\n")
                   .ok());
}

TEST(JobStateTest, NamesAreStable) {
  EXPECT_STREQ(JobStateName(JobState::kQueued), "queued");
  EXPECT_STREQ(JobStateName(JobState::kRunning), "running");
  EXPECT_STREQ(JobStateName(JobState::kDone), "done");
  EXPECT_STREQ(JobStateName(JobState::kCancelled), "cancelled");
  EXPECT_STREQ(JobStateName(JobState::kDeadline), "deadline");
  EXPECT_STREQ(JobStateName(JobState::kFailed), "failed");
}

TEST(JobStatusTextTest, RendersConfigGrammarAndFlattensErrors) {
  JobStatus status;
  status.id = "j7";
  status.state = JobState::kFailed;
  status.relations_total = 4;
  status.relations_done = 2;
  status.error = "line one\nline two";

  const std::string text = FormatJobStatusText(status);
  // The body is valid config-file text: machine-readable with the repo's
  // own parser.
  const auto parsed = ConfigFile::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  EXPECT_EQ(parsed.value().GetString("id", ""), "j7");
  EXPECT_EQ(parsed.value().GetString("state", ""), "failed");
  EXPECT_EQ(parsed.value().GetInt("relations_done", -1).value(), 2);
  EXPECT_EQ(parsed.value().GetString("error", ""), "line one line two");
}

}  // namespace
}  // namespace kgfd
