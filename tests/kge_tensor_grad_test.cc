#include <gtest/gtest.h>

#include <cmath>

#include "kge/grad.h"
#include "kge/tensor.h"
#include "util/rng.h"

namespace kgfd {
namespace {

TEST(TensorTest, ShapeAndZeroInit) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, RowAccess) {
  Tensor t(2, 3);
  t.At(1, 2) = 7.0f;
  EXPECT_EQ(t.Row(1)[2], 7.0f);
  EXPECT_EQ(t.At(1, 2), 7.0f);
  EXPECT_EQ(t.At(0, 0), 0.0f);
}

TEST(TensorTest, FillSetsAll) {
  Tensor t(2, 2);
  t.Fill(3.5f);
  for (float v : t.data()) EXPECT_EQ(v, 3.5f);
}

TEST(TensorTest, InitUniformRespectsRange) {
  Tensor t(10, 10);
  Rng rng(1);
  t.InitUniform(&rng, -0.5f, 0.5f);
  bool any_nonzero = false;
  for (float v : t.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
    if (v != 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(TensorTest, InitXavierBound) {
  Tensor t(8, 16);
  Rng rng(2);
  t.InitXavierUniform(&rng, 16, 16);
  const float bound = std::sqrt(6.0f / 32.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorTest, InitNormalMoments) {
  Tensor t(100, 100);
  Rng rng(3);
  t.InitNormal(&rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (float v : t.data()) sum += v;
  EXPECT_NEAR(sum / t.size(), 1.0, 0.05);
}

TEST(GradientBatchTest, RowGradZeroInitialized) {
  Tensor t(4, 3);
  GradientBatch batch;
  const float* g = batch.RowGrad(&t, 2);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(g[i], 0.0f);
}

TEST(GradientBatchTest, AccumulateRowAddsScaled) {
  Tensor t(4, 3);
  GradientBatch batch;
  const float values[3] = {1.0f, 2.0f, 3.0f};
  batch.AccumulateRow(&t, 1, values, 3, 2.0f);
  batch.AccumulateRow(&t, 1, values, 3, -1.0f);
  const float* g = batch.RowGrad(&t, 1);
  EXPECT_EQ(g[0], 1.0f);
  EXPECT_EQ(g[1], 2.0f);
  EXPECT_EQ(g[2], 3.0f);
}

TEST(GradientBatchTest, RowsForTracksTouchedRows) {
  Tensor t(4, 2);
  GradientBatch batch;
  EXPECT_EQ(batch.RowsFor(&t), nullptr);
  batch.RowGrad(&t, 0);
  batch.RowGrad(&t, 3);
  const auto* rows = batch.RowsFor(&t);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_TRUE(rows->count(0));
  EXPECT_TRUE(rows->count(3));
}

TEST(GradientBatchTest, TouchedTensors) {
  Tensor a(2, 2), b(2, 2);
  GradientBatch batch;
  EXPECT_TRUE(batch.TouchedTensors().empty());
  batch.RowGrad(&a, 0);
  batch.RowGrad(&b, 1);
  EXPECT_EQ(batch.TouchedTensors().size(), 2u);
}

TEST(GradientBatchTest, ClearResets) {
  Tensor t(2, 2);
  GradientBatch batch;
  batch.RowGrad(&t, 0)[0] = 5.0f;
  batch.Clear();
  EXPECT_EQ(batch.RowsFor(&t), nullptr);
  EXPECT_EQ(batch.RowGrad(&t, 0)[0], 0.0f);
}

TEST(GradientBatchTest, RepeatedRowGradReturnsSameBuffer) {
  Tensor t(2, 2);
  GradientBatch batch;
  float* g1 = batch.RowGrad(&t, 1);
  g1[0] = 9.0f;
  float* g2 = batch.RowGrad(&t, 1);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g2[0], 9.0f);
}

}  // namespace
}  // namespace kgfd
