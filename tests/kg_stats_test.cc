#include "kg/kg_stats.h"

#include <gtest/gtest.h>

namespace kgfd {
namespace {

TripleStore MakeToyStore() {
  // 0 -r0-> 1, 0 -r0-> 2, 1 -r1-> 2, 2 -r1-> 0
  TripleStore store(4, 2);
  store.AddAll({{0, 0, 1}, {0, 0, 2}, {1, 1, 2}, {2, 1, 0}})
      .AbortIfNotOk("toy store");
  return store;
}

TEST(SideCountsTest, SubjectCountsMatch) {
  const SideCounts c = ComputeSideCounts(MakeToyStore());
  EXPECT_EQ(c.subject_count[0], 2u);
  EXPECT_EQ(c.subject_count[1], 1u);
  EXPECT_EQ(c.subject_count[2], 1u);
  EXPECT_EQ(c.subject_count[3], 0u);
}

TEST(SideCountsTest, ObjectCountsMatch) {
  const SideCounts c = ComputeSideCounts(MakeToyStore());
  EXPECT_EQ(c.object_count[0], 1u);
  EXPECT_EQ(c.object_count[1], 1u);
  EXPECT_EQ(c.object_count[2], 2u);
  EXPECT_EQ(c.object_count[3], 0u);
}

TEST(SideCountsTest, UniquePoolsExcludeAbsentEntities) {
  const SideCounts c = ComputeSideCounts(MakeToyStore());
  EXPECT_EQ(c.unique_subjects, (std::vector<EntityId>{0, 1, 2}));
  EXPECT_EQ(c.unique_objects, (std::vector<EntityId>{0, 1, 2}));
}

TEST(SideCountsTest, SideAccessorsDispatch) {
  const SideCounts c = ComputeSideCounts(MakeToyStore());
  EXPECT_EQ(c.count(0, TripleSide::kSubject), 2u);
  EXPECT_EQ(c.count(0, TripleSide::kObject), 1u);
  EXPECT_EQ(&c.unique(TripleSide::kSubject), &c.unique_subjects);
  EXPECT_EQ(&c.unique(TripleSide::kObject), &c.unique_objects);
}

TEST(SideCountsTest, EmptyStore) {
  TripleStore store(3, 1);
  const SideCounts c = ComputeSideCounts(store);
  EXPECT_TRUE(c.unique_subjects.empty());
  EXPECT_TRUE(c.unique_objects.empty());
}

TEST(KgShapeTest, CountsAndDerivedMetrics) {
  const KgShape shape = ComputeShape(MakeToyStore());
  EXPECT_EQ(shape.num_entities, 4u);
  EXPECT_EQ(shape.num_relations, 2u);
  EXPECT_EQ(shape.num_triples, 4u);
  // 2 * 4 / 4 = 2 triple slots per entity (the paper's WN18RR measure).
  EXPECT_DOUBLE_EQ(shape.avg_relations_per_entity, 2.0);
  // 4 / (16 * 2)
  EXPECT_DOUBLE_EQ(shape.density, 4.0 / 32.0);
}

TEST(KgShapeTest, EmptyStoreHasZeroDensity) {
  TripleStore store(5, 2);
  const KgShape shape = ComputeShape(store);
  EXPECT_EQ(shape.num_triples, 0u);
  EXPECT_DOUBLE_EQ(shape.density, 0.0);
}

}  // namespace
}  // namespace kgfd
