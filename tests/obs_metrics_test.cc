#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
  g.Set(3.0);
  g.Set(7.0);
  g.Set(2.0);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 7.0);
}

TEST(GaugeTest, NegativeFirstValueIsTheMax) {
  Gauge g;
  g.Set(-5.0);
  EXPECT_EQ(g.value(), -5.0);
  EXPECT_EQ(g.max(), -5.0);
}

TEST(HistogramTest, InclusiveUpperBoundsAndOverflow) {
  HistogramMetric h({1.0, 10.0});
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (inclusive)
  h.Observe(5.0);   // <= 10
  h.Observe(11.0);  // overflow
  ASSERT_EQ(h.num_buckets(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 11.0);
}

TEST(HistogramTest, EmptyHistogramIsZeroed) {
  HistogramMetric h({1.0});
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, BoundsAreSortedAndDeduplicated) {
  HistogramMetric h({10.0, 1.0, 10.0});
  ASSERT_EQ(h.upper_bounds().size(), 2u);
  EXPECT_EQ(h.upper_bounds()[0], 1.0);
  EXPECT_EQ(h.upper_bounds()[1], 10.0);
}

TEST(BucketHelpersTest, LinearAndExponential) {
  EXPECT_EQ(LinearBuckets(1.0, 2.0, 3), (std::vector<double>{1, 3, 5}));
  EXPECT_EQ(ExponentialBuckets(1.0, 10.0, 3),
            (std::vector<double>{1, 10, 100}));
  // Default latency buckets are strictly increasing.
  const std::vector<double>& lat = DefaultLatencyBuckets();
  ASSERT_GE(lat.size(), 2u);
  for (size_t i = 1; i < lat.size(); ++i) EXPECT_LT(lat[i - 1], lat[i]);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("y"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  // First registration fixes histogram buckets.
  HistogramMetric* h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(registry.GetHistogram("h", {99.0}), h);
  EXPECT_EQ(h->upper_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotCoversEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h", {1.0})->Observe(0.25);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("c"), 1u);
  EXPECT_EQ(snapshot.counters.at("c"), 3u);
  ASSERT_EQ(snapshot.gauges.count("g"), 1u);
  EXPECT_EQ(snapshot.gauges.at("g").value, 1.5);
  ASSERT_EQ(snapshot.histograms.count("h"), 1u);
  EXPECT_EQ(snapshot.histograms.at("h").total, 1u);
  EXPECT_EQ(snapshot.histograms.at("h").counts.size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent.counter");
  HistogramMetric* hist = registry.GetHistogram("concurrent.hist", {0.5});
  ThreadPool pool(4);
  pool.AttachMetrics(&registry);
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 1000;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([counter, hist] {
      for (int i = 0; i < kIncrementsPerTask; ++i) {
        counter->Increment();
        hist->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kTasks) * kIncrementsPerTask);
  EXPECT_EQ(hist->total_count(),
            static_cast<uint64_t>(kTasks) * kIncrementsPerTask);
  EXPECT_EQ(hist->bucket_count(0) + hist->bucket_count(1),
            hist->total_count());
  // Pool self-instrumentation: every submitted task completed, and the
  // queue ends drained.
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at(kThreadPoolTasksSubmitted),
            static_cast<uint64_t>(kTasks));
  EXPECT_EQ(snapshot.counters.at(kThreadPoolTasksCompleted),
            static_cast<uint64_t>(kTasks));
  EXPECT_EQ(snapshot.gauges.at(kThreadPoolQueueDepth).value, 0.0);
  EXPECT_GE(snapshot.gauges.at(kThreadPoolQueueDepth).max, 0.0);
}

TEST(ScopedSpanTest, RecordsOneObservation) {
  MetricsRegistry registry;
  double elapsed = -1.0;
  {
    ScopedSpan span(&registry, "span.test.seconds");
    elapsed = span.Stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(span.Stop(), elapsed);  // idempotent
  }
  HistogramMetric* hist = registry.GetHistogram("span.test.seconds");
  EXPECT_EQ(hist->total_count(), 1u);
  EXPECT_DOUBLE_EQ(hist->sum(), elapsed);
}

TEST(ScopedSpanTest, RecordsOnDestruction) {
  MetricsRegistry registry;
  { ScopedSpan span(&registry, "span.dtor.seconds"); }
  EXPECT_EQ(registry.GetHistogram("span.dtor.seconds")->total_count(), 1u);
}

TEST(ScopedSpanTest, NullRegistryStillMeasures) {
  ScopedSpan span(nullptr, "nowhere");
  EXPECT_GE(span.Stop(), 0.0);
}

TEST(ExportTest, TextContainsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("my.counter")->Increment(7);
  registry.GetGauge("my.gauge")->Set(4.0);
  registry.GetHistogram("my.hist", {1.0})->Observe(2.0);
  const std::string text = MetricsToText(registry.Snapshot());
  EXPECT_NE(text.find("counter my.counter 7"), std::string::npos);
  EXPECT_NE(text.find("gauge my.gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram my.hist"), std::string::npos);
  EXPECT_NE(text.find("+Inf"), std::string::npos);
}

TEST(ExportTest, JsonRoundTripsExactly) {
  MetricsRegistry registry;
  registry.GetCounter("rt.counter")->Increment(1234567890123ULL);
  registry.GetGauge("rt.gauge")->Set(0.125);
  registry.GetGauge("rt.gauge")->Set(-3.5);
  HistogramMetric* hist =
      registry.GetHistogram("rt.hist", {0.001, 0.1, 10.0});
  hist->Observe(0.0005);
  hist->Observe(0.05);
  hist->Observe(1e9);  // overflow bucket
  const MetricsSnapshot original = registry.Snapshot();

  const std::string json = MetricsToJson(original);
  auto parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MetricsSnapshot& back = parsed.value();

  EXPECT_EQ(back.counters, original.counters);
  ASSERT_EQ(back.gauges.size(), original.gauges.size());
  EXPECT_EQ(back.gauges.at("rt.gauge").value, -3.5);
  EXPECT_EQ(back.gauges.at("rt.gauge").max, 0.125);
  ASSERT_EQ(back.histograms.count("rt.hist"), 1u);
  const MetricsSnapshot::HistogramValue& h = back.histograms.at("rt.hist");
  const MetricsSnapshot::HistogramValue& o = original.histograms.at("rt.hist");
  EXPECT_EQ(h.upper_bounds, o.upper_bounds);
  EXPECT_EQ(h.counts, o.counts);
  EXPECT_EQ(h.total, o.total);
  EXPECT_EQ(h.sum, o.sum);  // %.17g is round-trip exact
  EXPECT_EQ(h.min, o.min);
  EXPECT_EQ(h.max, o.max);
}

TEST(ExportTest, EmptyRegistryRoundTrips) {
  MetricsRegistry registry;
  auto parsed = ParseMetricsJson(MetricsToJson(registry.Snapshot()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().counters.empty());
  EXPECT_TRUE(parsed.value().gauges.empty());
  EXPECT_TRUE(parsed.value().histograms.empty());
}

TEST(ExportTest, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(ParseMetricsJson("").ok());
  EXPECT_FALSE(ParseMetricsJson("{").ok());
  EXPECT_FALSE(ParseMetricsJson("[]").ok());
  EXPECT_FALSE(ParseMetricsJson("{\"counters\": {}}").ok());
  EXPECT_FALSE(
      ParseMetricsJson(
          "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}} junk")
          .ok());
}

TEST(ExportTest, EscapedNamesSurviveTheRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("weird \"name\"\\with\nescapes")->Increment(2);
  auto parsed = ParseMetricsJson(MetricsToJson(registry.Snapshot()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("weird \"name\"\\with\nescapes"), 2u);
}

TEST(ExportTest, WriteMetricsJsonFileWritesParseableJson) {
  MetricsRegistry registry;
  registry.GetCounter("file.counter")->Increment(5);
  const std::string path =
      ::testing::TempDir() + "/obs_metrics_test_export.json";
  ASSERT_TRUE(WriteMetricsJsonFile(registry, path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto parsed = ParseMetricsJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().counters.at("file.counter"), 5u);
}

}  // namespace
}  // namespace kgfd
