#include <gtest/gtest.h>

#include <memory>

#include "kge/evaluator.h"
#include "kge/grid_search.h"
#include "kge/negative_sampling.h"
#include "kge/trainer.h"
#include "kg/synthetic.h"
#include "util/rng.h"

namespace kgfd {
namespace {

Dataset SmallDataset(uint64_t seed = 5) {
  SyntheticConfig c;
  c.name = "small";
  c.num_entities = 50;
  c.num_relations = 3;
  c.num_train = 400;
  c.num_valid = 25;
  c.num_test = 25;
  c.seed = seed;
  return std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset");
}

TEST(BernoulliSamplingTest, UniformSchemeIsHalfHalf) {
  const Dataset d = SmallDataset();
  NegativeSampler sampler(&d.train(), false, CorruptionScheme::kUniform);
  for (RelationId r = 0; r < d.num_relations(); ++r) {
    EXPECT_DOUBLE_EQ(sampler.SubjectCorruptionProbability(r), 0.5);
  }
}

TEST(BernoulliSamplingTest, OneToManyRelationCorruptsSubjectMore) {
  // Relation 0: one head, many tails (tph = 4, hpt = 1): p(subject) = 0.8.
  TripleStore store(8, 1);
  ASSERT_TRUE(
      store.AddAll({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}}).ok());
  NegativeSampler sampler(&store, false, CorruptionScheme::kBernoulli);
  EXPECT_NEAR(sampler.SubjectCorruptionProbability(0), 0.8, 1e-12);
}

TEST(BernoulliSamplingTest, ManyToOneRelationCorruptsObjectMore) {
  // Many heads, one tail (tph = 1, hpt = 4): p(subject) = 0.2.
  TripleStore store(8, 1);
  ASSERT_TRUE(
      store.AddAll({{1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {4, 0, 0}}).ok());
  NegativeSampler sampler(&store, false, CorruptionScheme::kBernoulli);
  EXPECT_NEAR(sampler.SubjectCorruptionProbability(0), 0.2, 1e-12);
}

TEST(BernoulliSamplingTest, EmpiricalSideRatioMatches) {
  TripleStore store(10, 1);
  ASSERT_TRUE(
      store.AddAll({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}}).ok());
  NegativeSampler sampler(&store, false, CorruptionScheme::kBernoulli);
  Rng rng(9);
  int subject_corruptions = 0;
  constexpr int kDraws = 20000;
  const Triple pos{0, 0, 1};
  for (int i = 0; i < kDraws; ++i) {
    const Triple neg = sampler.Corrupt(pos, &rng);
    if (neg.subject != pos.subject) ++subject_corruptions;
  }
  EXPECT_NEAR(static_cast<double>(subject_corruptions) / kDraws, 0.8, 0.02);
}

TEST(BernoulliSamplingTest, TrainerAcceptsBernoulliScheme) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  TrainerConfig tc;
  tc.epochs = 3;
  tc.corruption_scheme = CorruptionScheme::kBernoulli;
  auto model = TrainModel(ModelKind::kDistMult, mc, d.train(), tc);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
}

TEST(OneVsAllTest, LossDecreasesAndTrains) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(21);
  auto model = std::move(CreateModel(ModelKind::kComplEx, mc, &rng))
                   .ValueOrDie("model");
  TrainerConfig tc;
  tc.epochs = 8;
  tc.training_mode = TrainingMode::k1vsAll;
  tc.optimizer.learning_rate = 0.05;
  Trainer trainer(model.get(), &d.train(), tc);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LT(stats.value().back().mean_loss,
            stats.value().front().mean_loss);
}

TEST(OneVsAllTest, MemorizesLikeNegativeSampling) {
  const Dataset d = SmallDataset();
  TripleStore probe(d.num_entities(), d.num_relations());
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(probe.Add(d.train().triples()[i]).ok());
  }
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 16;
  TrainerConfig tc;
  tc.epochs = 50;
  tc.training_mode = TrainingMode::k1vsAll;
  tc.optimizer.learning_rate = 0.05;
  auto model = TrainModel(ModelKind::kDistMult, mc, d.train(), tc);
  ASSERT_TRUE(model.ok());
  EvalConfig raw;
  raw.filtered = false;
  auto metrics = EvaluateLinkPrediction(*model.value(), d, probe, raw);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics.value().mrr, 0.3);
}

TEST(OneVsAllTest, IgnoresZeroNegativesSetting) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  TrainerConfig tc;
  tc.epochs = 1;
  tc.training_mode = TrainingMode::k1vsAll;
  tc.negatives_per_positive = 0;  // invalid for sampling, fine for 1vsAll
  auto model = TrainModel(ModelKind::kDistMult, mc, d.train(), tc);
  EXPECT_TRUE(model.ok());
}

TEST(EarlyStoppingTest, EvaluatesOnSchedule) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(1);
  auto model = std::move(CreateModel(ModelKind::kDistMult, mc, &rng))
                   .ValueOrDie("model");
  TrainerConfig tc;
  tc.epochs = 10;
  tc.loss = LossKind::kSoftplus;
  tc.early_stopping_dataset = &d;
  tc.eval_every_epochs = 3;
  tc.patience = 100;  // never stop; just check the evaluation cadence
  Trainer trainer(model.get(), &d.train(), tc);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().size(), 10u);
  for (const EpochStats& es : stats.value()) {
    if ((es.epoch + 1) % 3 == 0) {
      EXPECT_GE(es.valid_mrr, 0.0) << "epoch " << es.epoch;
    } else {
      EXPECT_LT(es.valid_mrr, 0.0) << "epoch " << es.epoch;
    }
  }
}

TEST(EarlyStoppingTest, PatienceStopsTraining) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(2);
  auto model = std::move(CreateModel(ModelKind::kDistMult, mc, &rng))
                   .ValueOrDie("model");
  TrainerConfig tc;
  tc.epochs = 200;
  tc.loss = LossKind::kSoftplus;
  tc.optimizer.learning_rate = 0.0;  // frozen model: MRR can never improve
  tc.early_stopping_dataset = &d;
  tc.eval_every_epochs = 1;
  tc.patience = 2;
  Trainer trainer(model.get(), &d.train(), tc);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  // First eval sets the best; two non-improving evals stop at epoch 3.
  EXPECT_EQ(stats.value().size(), 3u);
}

TEST(EarlyStoppingTest, RestoresBestParameters) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(3);
  auto model = std::move(CreateModel(ModelKind::kComplEx, mc, &rng))
                   .ValueOrDie("model");
  TrainerConfig tc;
  tc.epochs = 30;
  tc.loss = LossKind::kSoftplus;
  tc.optimizer.learning_rate = 0.05;
  tc.early_stopping_dataset = &d;
  tc.eval_every_epochs = 2;
  tc.patience = 1000;
  Trainer trainer(model.get(), &d.train(), tc);
  auto stats = trainer.Train();
  ASSERT_TRUE(stats.ok());
  // Final parameters must score exactly the best recorded valid MRR.
  double best = -1.0;
  for (const EpochStats& es : stats.value()) {
    best = std::max(best, es.valid_mrr);
  }
  auto final_metrics = EvaluateLinkPrediction(*model, d, d.valid());
  ASSERT_TRUE(final_metrics.ok());
  EXPECT_NEAR(final_metrics.value().mrr, best, 1e-9);
}

TEST(GridSearchTest, RejectsEmptyValidation) {
  Dataset d("empty-valid", 10, 1);
  for (EntityId e = 0; e + 1 < 10; ++e) {
    ASSERT_TRUE(d.train().Add({e, 0, e + 1u}).ok());
  }
  ModelConfig mc;
  mc.num_entities = 10;
  mc.num_relations = 1;
  mc.embedding_dim = 4;
  TrainerConfig tc;
  tc.epochs = 1;
  EXPECT_FALSE(
      RunGridSearch(ModelKind::kDistMult, d, mc, tc, GridSearchSpace())
          .ok());
}

TEST(GridSearchTest, EnumeratesFullGrid) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  TrainerConfig tc;
  tc.epochs = 2;
  GridSearchSpace space;
  space.embedding_dims = {4, 8};
  space.learning_rates = {0.01, 0.1};
  space.losses = {LossKind::kSoftplus};
  auto result = RunGridSearch(ModelKind::kDistMult, d, mc, tc, space);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().trials.size(), 4u);
  ASSERT_NE(result.value().best_model, nullptr);
  // The best index really is the argmax.
  for (const GridTrial& trial : result.value().trials) {
    EXPECT_LE(trial.valid_mrr, result.value().best().valid_mrr);
  }
  // The returned model matches the best trial's dimension.
  EXPECT_EQ(result.value().best_model->embedding_dim(),
            result.value().best().model_config.embedding_dim);
}

TEST(GridSearchTest, EmptyDimensionsFallBackToBase) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 6;
  TrainerConfig tc;
  tc.epochs = 1;
  auto result =
      RunGridSearch(ModelKind::kDistMult, d, mc, tc, GridSearchSpace());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().trials.size(), 1u);
  EXPECT_EQ(result.value().best().model_config.embedding_dim, 6u);
}

TEST(StratifiedEvalTest, RejectsZeroBuckets) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(4);
  auto model = std::move(CreateModel(ModelKind::kDistMult, mc, &rng))
                   .ValueOrDie("model");
  EXPECT_FALSE(EvaluateByPopularity(*model, d, d.test(), 0).ok());
}

TEST(StratifiedEvalTest, BucketsPartitionAllRanks) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(5);
  auto model = std::move(CreateModel(ModelKind::kDistMult, mc, &rng))
                   .ValueOrDie("model");
  auto stratified = EvaluateByPopularity(*model, d, d.test(), 3);
  ASSERT_TRUE(stratified.ok()) << stratified.status().ToString();
  size_t total = 0;
  for (const LinkPredictionMetrics& m : stratified.value().buckets) {
    total += m.num_ranks;
  }
  EXPECT_EQ(total, d.test().size() * 2);
  // Bucket edges are nondecreasing.
  const auto& edges = stratified.value().bucket_max_degree;
  for (size_t b = 1; b < edges.size(); ++b) {
    EXPECT_GE(edges[b], edges[b - 1]);
  }
}

TEST(StratifiedEvalTest, SingleBucketMatchesAggregate) {
  const Dataset d = SmallDataset();
  ModelConfig mc;
  mc.num_entities = d.num_entities();
  mc.num_relations = d.num_relations();
  mc.embedding_dim = 8;
  Rng rng(6);
  auto model = std::move(CreateModel(ModelKind::kDistMult, mc, &rng))
                   .ValueOrDie("model");
  auto stratified = EvaluateByPopularity(*model, d, d.test(), 1);
  auto aggregate = EvaluateLinkPrediction(*model, d, d.test());
  ASSERT_TRUE(stratified.ok() && aggregate.ok());
  ASSERT_EQ(stratified.value().buckets.size(), 1u);
  EXPECT_NEAR(stratified.value().buckets[0].mrr, aggregate.value().mrr,
              1e-12);
  EXPECT_EQ(stratified.value().buckets[0].num_ranks,
            aggregate.value().num_ranks);
}

}  // namespace
}  // namespace kgfd
