#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/resume.h"
#include "kg/synthetic.h"
#include "kge/trainer.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

/// End-to-end checkpoint/resume: a discovery run is killed mid-sweep by an
/// injected fault, restarted from its resume manifest, and must produce a
/// fact set bit-identical to an uninterrupted run.
class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Reset();
    // Process-unique: ctest runs each TEST as its own process in parallel,
    // and a shared directory would let one test's remove_all race another.
    dir_ = ::testing::TempDir() + "/kgfd_resume_test_" +
           std::to_string(::getpid());
    std::filesystem::create_directories(dir_);
    manifest_ = dir_ + "/resume.manifest";
  }
  void TearDown() override {
    FailPoints::Instance().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string manifest_;
};

struct Fixture {
  Dataset dataset;
  std::unique_ptr<Model> model;
};

const Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    SyntheticConfig c;
    c.name = "resume";
    c.num_entities = 50;
    c.num_relations = 6;  // several relations so a mid-sweep kill is real
    c.num_train = 500;
    c.num_valid = 20;
    c.num_test = 20;
    c.seed = 21;
    auto dataset =
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset");
    ModelConfig mc;
    mc.num_entities = dataset.num_entities();
    mc.num_relations = dataset.num_relations();
    mc.embedding_dim = 10;
    TrainerConfig tc;
    tc.epochs = 4;
    tc.batch_size = 64;
    tc.loss = LossKind::kSoftplus;
    tc.seed = 3;
    auto model =
        std::move(TrainModel(ModelKind::kDistMult, mc, dataset.train(), tc))
            .ValueOrDie("model");
    return new Fixture{std::move(dataset), std::move(model)};
  }();
  return *fixture;
}

DiscoveryOptions SmallOptions() {
  DiscoveryOptions o;
  o.top_n = 25;
  o.max_candidates = 60;
  o.seed = 99;
  return o;
}

bool SameFacts(const std::vector<DiscoveredFact>& a,
               const std::vector<DiscoveredFact>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise comparison — memcmp, not ==, so the test cannot pass through
    // FP tolerance or miss a -0.0/0.0 flip.
    if (std::memcmp(&a[i].triple, &b[i].triple, sizeof(Triple)) != 0 ||
        std::memcmp(&a[i].rank, &b[i].rank, sizeof(double)) != 0 ||
        std::memcmp(&a[i].subject_rank, &b[i].subject_rank,
                    sizeof(double)) != 0 ||
        std::memcmp(&a[i].object_rank, &b[i].object_rank,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------ manifest basics

TEST_F(ResumeTest, ManifestRoundTripsExactly) {
  ResumeManifest m;
  m.model_name = "DistMult";
  m.model_param_hash = 0xDEADBEEFCAFEF00DULL;
  m.num_entities = 50;
  m.num_relations = 6;
  m.num_triples = 500;
  m.seed = 99;
  m.strategy = "ENTITY_FREQUENCY";
  m.top_n = 25;
  m.max_candidates = 60;
  m.max_iterations = 5;
  m.filtered_ranking = 1;
  m.rank_aggregation = 2;
  m.relations = {0, 3, 1};
  RelationCheckpointEntry entry;
  entry.relation = 3;
  entry.num_candidates = 60;
  DiscoveredFact fact;
  fact.triple = Triple{4, 3, 7};
  fact.rank = 12.5;
  fact.subject_rank = 10.0;
  fact.object_rank = 15.0;
  entry.facts.push_back(fact);
  m.done.push_back(entry);

  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  auto loaded = LoadResumeManifest(manifest_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(CheckManifestCompatible(loaded.value(), m).ok());
  ASSERT_EQ(loaded.value().done.size(), 1u);
  ASSERT_EQ(loaded.value().done[0].facts.size(), 1u);
  EXPECT_TRUE(SameFacts(loaded.value().done[0].facts, entry.facts));
  EXPECT_EQ(loaded.value().relations, m.relations);
}

TEST_F(ResumeTest, SaveIsAtomicNoTmpFileLeftBehind) {
  ResumeManifest m;
  m.model_name = "TransE";
  m.relations = {0};
  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  EXPECT_TRUE(std::filesystem::exists(manifest_));
  EXPECT_FALSE(std::filesystem::exists(manifest_ + ".tmp"));
  // Overwrite with more progress: still atomic, still loadable.
  m.done.emplace_back();
  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  auto loaded = LoadResumeManifest(manifest_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().done.size(), 1u);
}

TEST_F(ResumeTest, LoadRejectsGarbageAndTruncation) {
  EXPECT_FALSE(LoadResumeManifest(dir_ + "/nope").ok());

  std::ofstream(manifest_) << "this is not a manifest";
  EXPECT_FALSE(LoadResumeManifest(manifest_).ok());

  // A valid manifest truncated at every prefix length must error, never
  // crash or return partial data.
  ResumeManifest m;
  m.model_name = "DistMult";
  m.relations = {0, 1, 2};
  m.done.emplace_back();
  m.done.back().relation = 1;
  m.done.back().facts.resize(2);
  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  std::ifstream in(manifest_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (size_t len = 0; len < bytes.size(); len += 7) {
    const std::string trunc_path = dir_ + "/trunc.manifest";
    std::ofstream(trunc_path, std::ios::binary)
        << bytes.substr(0, len);
    EXPECT_FALSE(LoadResumeManifest(trunc_path).ok()) << "len=" << len;
  }
}

TEST_F(ResumeTest, EverySingleBitFlipInManifestRejected) {
  ResumeManifest m;
  m.model_name = "DistMult";
  m.model_param_hash = 0x1234ABCDu;
  m.relations = {0, 1, 2};
  m.done.emplace_back();
  m.done.back().relation = 1;
  m.done.back().facts.resize(3);
  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  std::ifstream in(manifest_, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_TRUE(LoadResumeManifest(manifest_).ok());  // pristine loads

  // Fuzz every bit position: the CRC-32 trailer must reject each flip —
  // a flipped fact rank would otherwise resume into silently wrong output.
  const std::string flip_path = dir_ + "/flip.manifest";
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      std::ofstream(flip_path, std::ios::binary) << corrupt;
      EXPECT_FALSE(LoadResumeManifest(flip_path).ok())
          << "byte=" << i << " bit=" << bit;
    }
  }
}

TEST_F(ResumeTest, ManifestChecksumErrorIsDescriptive) {
  ResumeManifest m;
  m.model_name = "TransE";
  m.relations = {0};
  ASSERT_TRUE(SaveResumeManifest(m, manifest_).ok());
  std::ifstream in(manifest_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x55);
  std::ofstream(manifest_, std::ios::binary) << bytes;
  auto result = LoadResumeManifest(manifest_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().ToString().find("checksum"), std::string::npos);
}

TEST_F(ResumeTest, CompatibilityCheckNamesTheMismatch) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  Model* model = f.model.get();
  const std::vector<RelationId> relations =
      f.dataset.train().UsedRelations();
  const ResumeManifest a =
      MakeManifestHeader(model, f.dataset.train(), options, relations);

  ResumeManifest b = a;
  b.seed = a.seed + 1;
  const Status seed_status = CheckManifestCompatible(b, a);
  EXPECT_EQ(seed_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(seed_status.ToString().find("seed"), std::string::npos);

  b = a;
  b.model_param_hash ^= 1;
  EXPECT_NE(CheckManifestCompatible(b, a).ToString().find(
                "model parameters"),
            std::string::npos);

  b = a;
  b.relations.pop_back();
  EXPECT_FALSE(CheckManifestCompatible(b, a).ok());

  EXPECT_TRUE(CheckManifestCompatible(a, a).ok());
}

TEST_F(ResumeTest, ModelParameterHashTracksWeights) {
  const Fixture& f = SharedFixture();
  const uint64_t h1 = HashModelParameters(f.model.get());
  EXPECT_EQ(h1, HashModelParameters(f.model.get()));  // stable
  // Any weight perturbation must change the fingerprint.
  Tensor* tensor = f.model->Parameters()[0].tensor;
  const float saved = tensor->data()[0];
  tensor->data()[0] = saved + 1.0f;
  EXPECT_NE(HashModelParameters(f.model.get()), h1);
  tensor->data()[0] = saved;
  EXPECT_EQ(HashModelParameters(f.model.get()), h1);
}

// --------------------------------------------------- resumable discovery

TEST_F(ResumeTest, UninterruptedResumableMatchesPlainDiscovery) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto plain = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(plain.ok());

  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto resumable =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(resumable.ok()) << resumable.status().ToString();
  EXPECT_TRUE(SameFacts(resumable.value().facts, plain.value().facts));
  EXPECT_EQ(resumable.value().stats.num_candidates,
            plain.value().stats.num_candidates);
  EXPECT_EQ(resumable.value().stats.num_relations_processed,
            plain.value().stats.num_relations_processed);
}

TEST_F(ResumeTest, InjectedFaultMidSweepThenResumeIsBitIdentical) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // First run: the fail point lets two relations finish, then kills the
  // sweep — the "crash". Serial path so the kill lands mid-sweep
  // deterministically.
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(
      fp.Enable(kFailPointDiscoveryRelation, "2+return(IoError)").ok());
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto crashed =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_FALSE(crashed.ok());
  EXPECT_GE(fp.TriggerCount(kFailPointDiscoveryRelation), 1u);

  // The manifest survived the crash with exactly the completed prefix.
  auto mid = LoadResumeManifest(manifest_);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value().done.size(), 2u);
  ASSERT_GT(f.dataset.train().UsedRelations().size(), 2u);

  // Second run: fault cleared, resumed from the manifest. Use the "off"
  // mode to count how many relations the live run actually processed.
  fp.Reset();
  ASSERT_TRUE(fp.Enable(kFailPointDiscoveryRelation, "off").ok());
  auto resumed =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  // Bit-identical to the uninterrupted run...
  EXPECT_TRUE(SameFacts(resumed.value().facts, reference.value().facts));
  EXPECT_EQ(resumed.value().stats.num_candidates,
            reference.value().stats.num_candidates);
  // ...and the two finished relations were genuinely skipped, not redone.
  EXPECT_EQ(fp.HitCount(kFailPointDiscoveryRelation),
            f.dataset.train().UsedRelations().size() - 2);
}

TEST_F(ResumeTest, FinishedJobRerunIsANoOpWithSameFacts) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto first =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(first.ok());

  // Second call finds every relation done: nothing runs, same facts.
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable(kFailPointDiscoveryRelation, "off").ok());
  auto second =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(SameFacts(second.value().facts, first.value().facts));
  EXPECT_EQ(fp.HitCount(kFailPointDiscoveryRelation), 0u);
}

TEST_F(ResumeTest, InvalidOptionsRejectedEvenWithNoLiveWork) {
  // Regression: options are validated before the manifest short-circuit.
  // A fully-done manifest used to let invalid options (which DiscoverFacts
  // itself would reject) read as a successful no-op resume.
  DiscoveryOptions options = SmallOptions();
  options.max_candidates = 0;
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  const Fixture& f = SharedFixture();
  const auto result =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResumeTest, ResumeUnderThreadPoolMatchesSerialReference) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // Crash the sweep under a pool (completion order is nondeterministic,
  // with several relations already persisted), then resume under the pool.
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(
      fp.Enable(kFailPointDiscoveryRelation, "3+return(IoError)").ok());
  ThreadPool pool(4);
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto crashed = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume, &pool);
  ASSERT_FALSE(crashed.ok());

  fp.Reset();
  auto resumed = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume, &pool);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(SameFacts(resumed.value().facts, reference.value().facts));
}

TEST_F(ResumeTest, RejectsManifestFromDifferentRun) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  ASSERT_TRUE(
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume)
          .ok());

  // Same manifest, different options: refused, not silently mixed.
  options.top_n = options.top_n + 5;
  auto clash =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(clash.status().ToString().find("top_n"), std::string::npos);
}

TEST_F(ResumeTest, RejectsDuplicateRelationList) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  const RelationId r = f.dataset.train().UsedRelations().front();
  options.relations = {r, r};
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto result =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResumeTest, RequiresManifestPath) {
  const Fixture& f = SharedFixture();
  auto result = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                       SmallOptions(), ResumeOptions{});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResumeTest, SaveRetryPolicyAbsorbsTransientManifestFaults) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // Every third manifest save fails once; the save retry rides through.
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable(kFailPointResumeSave, "33%return(IoError)").ok());
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  resume.save_retry.max_attempts = 10;
  resume.save_retry.initial_backoff_ms = 0.1;
  auto result =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SameFacts(result.value().facts, reference.value().facts));
}

TEST_F(ResumeTest, ChainsUserCallbackAfterPersisting) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  std::vector<RelationId> seen;
  options.on_relation_complete = [&seen](RelationCompletion&& c) {
    seen.push_back(c.relation);
  };
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto result =
      DiscoverFactsResumable(*f.model, f.dataset.train(), options, resume);
  ASSERT_TRUE(result.ok());
  // Serial path: the user's callback saw every relation, in order.
  EXPECT_EQ(seen, f.dataset.train().UsedRelations());
}

}  // namespace
}  // namespace kgfd
