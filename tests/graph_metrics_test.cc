#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/adjacency.h"
#include "util/rng.h"

namespace kgfd {
namespace {

using Edge = std::pair<EntityId, EntityId>;

Adjacency Triangle() {
  return Adjacency::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
}

Adjacency Square() {
  return Adjacency::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
}

/// Star with center 0 and 4 leaves — the paper's example of a popular node
/// with clustering coefficient zero.
Adjacency Star() {
  return Adjacency::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
}

Adjacency Complete(size_t n) {
  std::vector<Edge> edges;
  for (EntityId u = 0; u < n; ++u) {
    for (EntityId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Adjacency::FromEdges(n, edges);
}

Adjacency RandomGraph(size_t n, size_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> e;
  for (size_t i = 0; i < edges; ++i) {
    e.push_back({static_cast<EntityId>(rng.UniformInt(n)),
                 static_cast<EntityId>(rng.UniformInt(n))});
  }
  return Adjacency::FromEdges(n, e);
}

TEST(TriangleTest, SingleTriangle) {
  EXPECT_EQ(LocalTriangleCounts(Triangle()),
            (std::vector<uint64_t>{1, 1, 1}));
}

TEST(TriangleTest, SquareHasNoTriangles) {
  EXPECT_EQ(LocalTriangleCounts(Square()),
            (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(TriangleTest, StarHasNoTriangles) {
  for (uint64_t t : LocalTriangleCounts(Star())) EXPECT_EQ(t, 0u);
}

TEST(TriangleTest, CompleteGraphK5) {
  // In K5 each node participates in C(4,2) = 6 triangles.
  for (uint64_t t : LocalTriangleCounts(Complete(5))) EXPECT_EQ(t, 6u);
}

TEST(TriangleTest, EmptyGraph) {
  const Adjacency adj = Adjacency::FromEdges(4, {});
  EXPECT_EQ(LocalTriangleCounts(adj), (std::vector<uint64_t>(4, 0)));
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  for (double c : LocalClusteringCoefficients(Triangle())) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  }
}

TEST(ClusteringTest, StarCenterIsZero) {
  const std::vector<double> c = LocalClusteringCoefficients(Star());
  EXPECT_DOUBLE_EQ(c[0], 0.0);  // popular but unclustered (paper §4.2.2)
  for (size_t i = 1; i < c.size(); ++i) EXPECT_DOUBLE_EQ(c[i], 0.0);
}

TEST(ClusteringTest, DegreeOneNodesAreZero) {
  const Adjacency adj = Adjacency::FromEdges(2, {{0, 1}});
  EXPECT_EQ(LocalClusteringCoefficients(adj),
            (std::vector<double>{0.0, 0.0}));
}

TEST(ClusteringTest, KnownPartialValue) {
  // Triangle 0-1-2 plus pendant edge 2-3: c(2) = 2*1/(3*2) = 1/3.
  const Adjacency adj =
      Adjacency::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  const std::vector<double> c = LocalClusteringCoefficients(adj);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_NEAR(c[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(ClusteringTest, AverageMatchesManualMean) {
  const Adjacency adj =
      Adjacency::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_NEAR(AverageClusteringCoefficient(adj), (1.0 + 1.0 + 1.0 / 3.0) / 4.0,
              1e-12);
}

TEST(SquaresTest, PlainSquareGraph) {
  // Every node of a 4-cycle: one square closed, and per NetworkX
  // square_clustering the value is 1.0 (no unclosed potential).
  for (double c : SquareClusteringCoefficients(Square())) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  }
}

TEST(SquaresTest, TriangleHasNoSquares) {
  for (double c : SquareClusteringCoefficients(Triangle())) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST(SquaresTest, StarHasNoSquares) {
  for (double c : SquareClusteringCoefficients(Star())) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST(DegreesTest, MatchesAdjacency) {
  const Adjacency adj = Star();
  EXPECT_EQ(Degrees(adj), (std::vector<uint64_t>{4, 1, 1, 1, 1}));
}

/// Property sweep: the optimized implementations agree with the literal
/// brute-force definitions on random graphs of varying density.
struct RandomGraphParam {
  size_t nodes;
  size_t edges;
  uint64_t seed;
};

class GraphMetricsPropertyTest
    : public ::testing::TestWithParam<RandomGraphParam> {};

TEST_P(GraphMetricsPropertyTest, TrianglesMatchBruteForce) {
  const RandomGraphParam& p = GetParam();
  const Adjacency adj = RandomGraph(p.nodes, p.edges, p.seed);
  EXPECT_EQ(LocalTriangleCounts(adj),
            reference::LocalTriangleCountsBruteForce(adj));
}

TEST_P(GraphMetricsPropertyTest, SquaresMatchBruteForce) {
  const RandomGraphParam& p = GetParam();
  const Adjacency adj = RandomGraph(p.nodes, p.edges, p.seed);
  const std::vector<double> fast = SquareClusteringCoefficients(adj);
  const std::vector<double> slow =
      reference::SquareClusteringCoefficientsBruteForce(adj);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-9) << "node " << i;
  }
}

TEST_P(GraphMetricsPropertyTest, ClusteringCoefficientInUnitInterval) {
  const RandomGraphParam& p = GetParam();
  const Adjacency adj = RandomGraph(p.nodes, p.edges, p.seed);
  for (double c : LocalClusteringCoefficients(adj)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  for (double c : SquareClusteringCoefficients(adj)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(GraphMetricsPropertyTest, TriangleSumIsThreeTimesTriangleCount) {
  const RandomGraphParam& p = GetParam();
  const Adjacency adj = RandomGraph(p.nodes, p.edges, p.seed);
  uint64_t sum = 0;
  for (uint64_t t : LocalTriangleCounts(adj)) sum += t;
  EXPECT_EQ(sum % 3, 0u);  // every triangle counted at its three corners
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GraphMetricsPropertyTest,
    ::testing::Values(RandomGraphParam{10, 15, 1},
                      RandomGraphParam{20, 60, 2},
                      RandomGraphParam{30, 40, 3},
                      RandomGraphParam{30, 200, 4},
                      RandomGraphParam{50, 100, 5},
                      RandomGraphParam{50, 400, 6},
                      RandomGraphParam{80, 160, 7},
                      RandomGraphParam{15, 105, 8}),  // near-complete
    [](const ::testing::TestParamInfo<RandomGraphParam>& info) {
      return "n" + std::to_string(info.param.nodes) + "_e" +
             std::to_string(info.param.edges) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace kgfd
