#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "kge/checkpoint.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace kgfd {
namespace {

// The mmap backend maps attacker-sized files into the address space, so a
// malformed checkpoint that slips past validation is not a parse error —
// it is a SIGBUS (or silent garbage weights). This battery forges
// truncated, bit-flipped, and directory-patched v3 checkpoints and
// demands a descriptive IoError for every one. A crash anywhere in here
// is the bug the validation layer exists to prevent.

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Re-stamps the v3 header CRC (at 20 + header_size) and the whole-file
/// trailer after a directory patch, so only semantic validation — not an
/// integrity check — can reject the forged file.
void RestampCrcs(std::string* bytes) {
  uint64_t header_size = 0;
  std::memcpy(&header_size, bytes->data() + 12, sizeof(header_size));
  const uint32_t header_crc =
      Crc32(bytes->data(), 20 + static_cast<size_t>(header_size));
  std::memcpy(bytes->data() + 20 + header_size, &header_crc,
              sizeof(header_crc));
  const uint32_t trailer =
      Crc32(bytes->data(), bytes->size() - sizeof(uint32_t));
  std::memcpy(bytes->data() + bytes->size() - sizeof(uint32_t), &trailer,
              sizeof(trailer));
}

void PatchU64(std::string* bytes, uint64_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

CheckpointLoadOptions MmapOptions(bool verify = false) {
  CheckpointLoadOptions o;
  o.backend = EmbeddingBackend::kMmap;
  o.verify_mapped_payload = verify;
  return o;
}

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_entities = 11;
  c.num_relations = 3;
  c.embedding_dim = 8;
  c.transe_norm = 1;
  c.conve_reshape_height = 2;
  c.conve_num_filters = 3;
  return c;
}

std::unique_ptr<Model> MakeModel(ModelKind kind, uint64_t seed) {
  Rng rng(seed);
  return std::move(CreateModel(kind, SmallConfig(), &rng))
      .ValueOrDie("create");
}

void ExpectScoresIdentical(Model* a, Model* b, const char* what) {
  for (EntityId s = 0; s < a->num_entities(); ++s) {
    for (RelationId r = 0; r < a->num_relations(); ++r) {
      const Triple t{s, r, (s + 3u) % static_cast<EntityId>(
                                          a->num_entities())};
      ASSERT_EQ(a->Score(t), b->Score(t)) << what << " s=" << s
                                          << " r=" << r;
    }
  }
}

class MmapBackendTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kgfd_mmap_" +
            ModelKindName(GetParam()) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(MmapBackendTest, MmapLoadIsBitIdenticalToRamLoad) {
  auto model = MakeModel(GetParam(), 81);
  ASSERT_TRUE(SaveModel(model.get(), SmallConfig(), path_).ok());

  auto ram = LoadModel(path_, CheckpointLoadOptions());
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();
  auto mmap = LoadModel(path_, MmapOptions());
  ASSERT_TRUE(mmap.ok()) << mmap.status().ToString();

  auto ram_params = ram.value()->Parameters();
  auto mmap_params = mmap.value()->Parameters();
  ASSERT_EQ(ram_params.size(), mmap_params.size());
  for (size_t i = 0; i < ram_params.size(); ++i) {
    EXPECT_EQ(ram_params[i].name, mmap_params[i].name);
    const Tensor* a = ram_params[i].tensor;
    const Tensor* b = mmap_params[i].tensor;
    ASSERT_EQ(a->rows(), b->rows());
    ASSERT_EQ(a->cols(), b->cols());
    EXPECT_EQ(std::memcmp(a->flat(), b->flat(), a->size() * sizeof(float)),
              0)
        << ram_params[i].name;
  }
  ExpectScoresIdentical(ram.value().get(), mmap.value().get(), "mmap");

  // Full-verify mode must accept a pristine file too.
  auto verified = LoadModel(path_, MmapOptions(/*verify=*/true));
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ExpectScoresIdentical(ram.value().get(), verified.value().get(),
                        "mmap+verify");
}

TEST_P(MmapBackendTest, V2CheckpointFallsBackToRamUnderMmapBackend) {
  auto model = MakeModel(GetParam(), 82);
  ASSERT_TRUE(internal::SaveModelV2(model.get(), SmallConfig(), path_).ok());
  auto info = InspectCheckpoint(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 2u);

  auto mmap = LoadModel(path_, MmapOptions(/*verify=*/true));
  ASSERT_TRUE(mmap.ok()) << mmap.status().ToString();
  ExpectScoresIdentical(model.get(), mmap.value().get(), "v2 fallback");
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, MmapBackendTest,
    ::testing::Values(ModelKind::kTransE, ModelKind::kDistMult,
                      ModelKind::kComplEx, ModelKind::kRescal,
                      ModelKind::kHolE, ModelKind::kConvE),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return ModelKindName(info.param);
    });

class QuantizedCheckpointTest
    : public ::testing::TestWithParam<std::tuple<ModelKind, EmbeddingDtype>> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    path_ = ::testing::TempDir() + "/kgfd_quant_" +
            ModelKindName(std::get<0>(p)) + "_" +
            EmbeddingDtypeName(std::get<1>(p)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(QuantizedCheckpointTest, RoundTripsOnBothBackends) {
  const ModelKind kind = std::get<0>(GetParam());
  const EmbeddingDtype dtype = std::get<1>(GetParam());
  auto model = MakeModel(kind, 83);
  ASSERT_TRUE(
      SaveQuantizedModel(model.get(), SmallConfig(), dtype, path_).ok());

  auto info = InspectCheckpoint(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  bool saw_quant_entities = false;
  for (const CheckpointTensorInfo& t : info.value().tensors) {
    if (t.name == "entities") {
      saw_quant_entities = t.dtype == dtype && t.quant_size != 0;
    } else {
      EXPECT_EQ(t.dtype, EmbeddingDtype::kFloat32) << t.name;
    }
  }
  EXPECT_TRUE(saw_quant_entities);

  auto ram = LoadModel(path_, CheckpointLoadOptions());
  ASSERT_TRUE(ram.ok()) << ram.status().ToString();
  auto mmap = LoadModel(path_, MmapOptions(/*verify=*/true));
  ASSERT_TRUE(mmap.ok()) << mmap.status().ToString();
  ASSERT_NE(ram.value()->quantized_entities(), nullptr);
  ASSERT_NE(mmap.value()->quantized_entities(), nullptr);
  EXPECT_EQ(ram.value()->quantized_entities()->dtype(), dtype);
  // Identical storage on both backends: same fingerprint, same scores.
  EXPECT_EQ(ram.value()->StorageFingerprint(),
            mmap.value()->StorageFingerprint());
  ExpectScoresIdentical(ram.value().get(), mmap.value().get(),
                        "quantized ram vs mmap");
}

INSTANTIATE_TEST_SUITE_P(
    QuantModels, QuantizedCheckpointTest,
    ::testing::Combine(::testing::Values(ModelKind::kTransE,
                                         ModelKind::kDistMult,
                                         ModelKind::kComplEx),
                       ::testing::Values(EmbeddingDtype::kInt8,
                                         EmbeddingDtype::kInt16)),
    [](const ::testing::TestParamInfo<std::tuple<ModelKind, EmbeddingDtype>>&
           info) {
      return std::string(ModelKindName(std::get<0>(info.param))) + "_" +
             EmbeddingDtypeName(std::get<1>(info.param));
    });

TEST(QuantizedSaveTest, RejectsFloatDtypeAndUnsupportedModels) {
  const std::string path = ::testing::TempDir() + "/kgfd_quant_reject.bin";
  auto transe = MakeModel(ModelKind::kTransE, 84);
  EXPECT_EQ(SaveQuantizedModel(transe.get(), SmallConfig(),
                               EmbeddingDtype::kFloat32, path)
                .code(),
            StatusCode::kInvalidArgument);
  for (ModelKind kind :
       {ModelKind::kRescal, ModelKind::kHolE, ModelKind::kConvE}) {
    auto model = MakeModel(kind, 85);
    const Status s = SaveQuantizedModel(model.get(), SmallConfig(),
                                        EmbeddingDtype::kInt8, path);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << ModelKindName(kind);
    EXPECT_NE(s.ToString().find("TransE/DistMult/ComplEx"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

/// Fixture holding one pristine v3 checkpoint (float + quantized copies)
/// that the fuzz tests corrupt in every way they can think of.
class MmapFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest registers every fuzz test as its own process and runs them
    // concurrently under -j; the scratch files must be keyed by test name
    // (plus pid for repeat runs) or parallel entries clobber each other.
    const std::string tag =
        std::string(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()) +
        "_" + std::to_string(::getpid());
    path_ = ::testing::TempDir() + "/kgfd_fuzz_" + tag + ".bin";
    victim_ = ::testing::TempDir() + "/kgfd_fuzz_victim_" + tag + ".bin";
    auto model = MakeModel(ModelKind::kTransE, 86);
    ASSERT_TRUE(SaveModel(model.get(), SmallConfig(), path_).ok());
    pristine_ = ReadFile(path_);
    ASSERT_FALSE(pristine_.empty());
    auto info = InspectCheckpoint(path_);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    info_ = info.value();
    ASSERT_FALSE(info_.tensors.empty());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(victim_.c_str());
  }

  const CheckpointTensorInfo& Section(const std::string& name) const {
    for (const CheckpointTensorInfo& t : info_.tensors) {
      if (t.name == name) return t;
    }
    ADD_FAILURE() << "no tensor " << name;
    return info_.tensors[0];
  }

  /// Loads `bytes` through the mmap backend and asserts a clean IoError
  /// whose message mentions `expect` (nullptr: any error). Surviving the
  /// call at all is the SIGBUS half of the assertion.
  void ExpectMmapRejects(const std::string& bytes, const char* expect,
                         bool verify = false) {
    WriteFile(victim_, bytes);
    auto result = LoadModel(victim_, MmapOptions(verify));
    ASSERT_FALSE(result.ok()) << "forged checkpoint loaded";
    EXPECT_EQ(result.status().code(), StatusCode::kIoError)
        << result.status().ToString();
    if (expect != nullptr) {
      EXPECT_NE(result.status().ToString().find(expect), std::string::npos)
          << result.status().ToString();
    }
  }

  std::string path_, victim_, pristine_;
  CheckpointInfo info_;
};

TEST_F(MmapFuzzTest, EveryTruncationPrefixIsAnIoErrorNotASigbus) {
  // Even without KGFD_MMAP_VERIFY the directory bounds check is computed
  // against the real file size, so a partial download/copy can never map:
  // any strict prefix loses payload or trailer bytes some section claims.
  for (size_t len = 1; len < pristine_.size(); len += 7) {
    ExpectMmapRejects(pristine_.substr(0, len), nullptr);
  }
  ExpectMmapRejects(pristine_.substr(0, pristine_.size() - 1), nullptr);
}

TEST_F(MmapFuzzTest, HeaderBitFlipsAreRejectedByDefaultMmapLoad) {
  // The default (lazy) mmap load checksums only the header — but that is
  // enough to catch every flip in the magic, version, directory, or the
  // header CRC itself.
  const size_t header_end = 20 + info_.header_size + sizeof(uint32_t);
  ASSERT_LT(header_end, pristine_.size());
  for (size_t i = 0; i < header_end; ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string corrupt = pristine_;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      WriteFile(victim_, corrupt);
      auto result = LoadModel(victim_, MmapOptions());
      EXPECT_FALSE(result.ok()) << "byte=" << i << " bit=" << bit;
    }
  }
}

TEST_F(MmapFuzzTest, PayloadBitFlipsAreRejectedWithVerifyMappedPayload) {
  // Payload flips are invisible to the lazy load by design; the full
  // verify mode (KGFD_MMAP_VERIFY=1, the CI mmap matrix leg) must catch
  // every one via the section CRCs / whole-file trailer.
  const size_t payload_start = 20 + info_.header_size + sizeof(uint32_t);
  for (size_t i = payload_start; i < pristine_.size(); i += 13) {
    std::string corrupt = pristine_;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    ExpectMmapRejects(corrupt, "mismatch", /*verify=*/true);
  }
}

TEST_F(MmapFuzzTest, ZeroRowTensorSectionRejected) {
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 1 * 8, 0);  // rows := 0
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "zero-row tensor section");
}

TEST_F(MmapFuzzTest, MisalignedPayloadOffsetRejected) {
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 3 * 8, t.payload_offset + 4);
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "misaligned tensor section");
}

TEST_F(MmapFuzzTest, NonPageAlignedEntitySectionRejected) {
  // 64-byte aligned (passes the generic check) but off the 4096 boundary
  // the zero-copy entity mapping requires.
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 3 * 8, t.payload_offset + 64);
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "not page-aligned");
}

TEST_F(MmapFuzzTest, OutOfBoundsPayloadOffsetRejected) {
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  // Far past EOF but still page-aligned: only the bounds check can object,
  // and under mmap an unchecked read here is a guaranteed SIGBUS.
  PatchU64(&forged, t.fields_offset + 3 * 8, uint64_t{1} << 40);
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "out of bounds");
}

TEST_F(MmapFuzzTest, OverflowingSectionShapeRejected) {
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 1 * 8, uint64_t{1} << 62);  // rows
  PatchU64(&forged, t.fields_offset + 2 * 8, uint64_t{1} << 32);  // cols
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, nullptr);
}

TEST_F(MmapFuzzTest, UnknownDtypeRejected) {
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset, 7);  // dtype tag nobody defined
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "unknown tensor dtype");
}

TEST_F(MmapFuzzTest, RamBackendRejectsTheSameForgeries) {
  // The directory validation is shared, not mmap-only: the ram backend
  // must fail closed on the same patched headers (its trailer CRC was
  // re-stamped, so only validation stands between it and a bad memcpy).
  const CheckpointTensorInfo& t = Section("entities");
  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 3 * 8, uint64_t{1} << 40);
  RestampCrcs(&forged);
  WriteFile(victim_, forged);
  auto result = LoadModel(victim_, CheckpointLoadOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(MmapFuzzTest, QuantizedParameterBlockValidation) {
  // Rebuild the fixture around a quantized checkpoint: the quant param
  // block gets the same bounds discipline as the payloads.
  auto model = MakeModel(ModelKind::kDistMult, 87);
  ASSERT_TRUE(SaveQuantizedModel(model.get(), SmallConfig(),
                                 EmbeddingDtype::kInt8, path_)
                  .ok());
  pristine_ = ReadFile(path_);
  auto info = InspectCheckpoint(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  info_ = info.value();
  const CheckpointTensorInfo& t = Section("entities");
  ASSERT_NE(t.quant_size, 0u);

  std::string forged = pristine_;
  PatchU64(&forged, t.fields_offset + 5 * 8, uint64_t{1} << 40);  // quant off
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "out of bounds");

  forged = pristine_;
  PatchU64(&forged, t.fields_offset + 6 * 8, t.quant_size + 8);  // quant size
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "wrong size");

  // A float section claiming quantization parameters is structurally
  // inconsistent, not just odd — reject it.
  const CheckpointTensorInfo& rel = Section("relations");
  forged = pristine_;
  PatchU64(&forged, rel.fields_offset + 6 * 8, 8);
  RestampCrcs(&forged);
  ExpectMmapRejects(forged, "carries quantization parameters");
}

TEST_F(MmapFuzzTest, QuantizedCheckpointForUnsupportedModelRejected) {
  // Forge "a quantized RESCAL checkpoint" by renaming the model inside a
  // valid quantized TransE file ("TransE" and "RESCAL" are the same
  // length, so no directory re-layout). The loader's model whitelist —
  // not the save-side one — must refuse it.
  auto model = MakeModel(ModelKind::kTransE, 88);
  ASSERT_TRUE(SaveQuantizedModel(model.get(), SmallConfig(),
                                 EmbeddingDtype::kInt8, path_)
                  .ok());
  std::string forged = ReadFile(path_);
  const size_t name_offset = 20 + 8;  // fixed head, then the name's u64 len
  ASSERT_EQ(forged.substr(name_offset, 6), "TransE");
  forged.replace(name_offset, 6, "RESCAL");
  RestampCrcs(&forged);
  WriteFile(victim_, forged);
  auto result = LoadModel(victim_, MmapOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("TransE/DistMult/ComplEx"),
            std::string::npos)
      << result.status().ToString();

  // And an int8 section on a tensor other than "entities" is refused even
  // for a supported model.
  auto info = InspectCheckpoint(path_);
  ASSERT_TRUE(info.ok());
  info_ = info.value();
  pristine_ = ReadFile(path_);
  const CheckpointTensorInfo& rel = Section("relations");
  forged = pristine_;
  PatchU64(&forged, rel.fields_offset, 1);  // relations dtype := int8
  RestampCrcs(&forged);
  WriteFile(victim_, forged);
  EXPECT_FALSE(LoadModel(victim_, MmapOptions()).ok());
}

}  // namespace
}  // namespace kgfd
