#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "kg/dataset.h"
#include "kg/io.h"

namespace kgfd {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Process-unique: ctest runs each TEST as its own process in parallel,
    // and a shared directory would let one test's remove_all race another.
    dir_ = ::testing::TempDir() + "/kgfd_io_test_" +
           std::to_string(::getpid());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ + "/" + name);
    out << content;
  }

  std::string dir_;
};

TEST_F(DatasetIoTest, ReadTriplesParsesTsv) {
  WriteFile("t.txt", "alice\tknows\tbob\nbob\tknows\tcarol\n");
  Vocabulary entities, relations;
  auto result = ReadTriplesTsv(dir_ + "/t.txt", &entities, &relations);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(entities.size(), 3u);
  EXPECT_EQ(relations.size(), 1u);
  EXPECT_EQ(result.value()[0],
            (Triple{entities.Lookup("alice").value(),
                    relations.Lookup("knows").value(),
                    entities.Lookup("bob").value()}));
}

TEST_F(DatasetIoTest, ReadSkipsEmptyLines) {
  WriteFile("t.txt", "a\tr\tb\n\n\nc\tr\td\n");
  Vocabulary entities, relations;
  auto result = ReadTriplesTsv(dir_ + "/t.txt", &entities, &relations);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST_F(DatasetIoTest, ReadTrimsWhitespace) {
  WriteFile("t.txt", " a \tr\t b \n");
  Vocabulary entities, relations;
  auto result = ReadTriplesTsv(dir_ + "/t.txt", &entities, &relations);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(entities.Contains("a"));
  EXPECT_TRUE(entities.Contains("b"));
}

TEST_F(DatasetIoTest, ReadRejectsWrongArity) {
  WriteFile("t.txt", "a\tb\n");
  Vocabulary entities, relations;
  auto result = ReadTriplesTsv(dir_ + "/t.txt", &entities, &relations);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":1:"), std::string::npos);
}

TEST_F(DatasetIoTest, ReadMissingFileIsIoError) {
  Vocabulary entities, relations;
  auto result = ReadTriplesTsv(dir_ + "/nope.txt", &entities, &relations);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetIoTest, WriteThenReadRoundTrips) {
  Vocabulary entities, relations;
  const std::vector<Triple> triples = {
      {entities.AddOrGet("a"), relations.AddOrGet("r1"),
       entities.AddOrGet("b")},
      {entities.AddOrGet("c"), relations.AddOrGet("r2"),
       entities.AddOrGet("a")}};
  ASSERT_TRUE(
      WriteTriplesTsv(dir_ + "/out.txt", triples, entities, relations).ok());
  Vocabulary e2, r2;
  auto read = ReadTriplesTsv(dir_ + "/out.txt", &e2, &r2);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_EQ(e2.Name(read.value()[0].subject).value(), "a");
  EXPECT_EQ(r2.Name(read.value()[1].relation).value(), "r2");
}

TEST_F(DatasetIoTest, LoadDatasetDirBuildsValidDataset) {
  WriteFile("train.txt", "a\tr\tb\nb\tr\tc\nc\tr\ta\na\tr\tc\n");
  WriteFile("valid.txt", "b\tr\ta\n");
  WriteFile("test.txt", "c\tr\tb\n");
  auto result = LoadDatasetDir(dir_, "toy");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.num_entities(), 3u);
  EXPECT_EQ(d.num_relations(), 1u);
  EXPECT_EQ(d.train().size(), 4u);
  EXPECT_EQ(d.valid().size(), 1u);
  EXPECT_EQ(d.test().size(), 1u);
}

TEST_F(DatasetIoTest, LoadRejectsOverlappingSplits) {
  WriteFile("train.txt", "a\tr\tb\nb\tr\tc\n");
  WriteFile("valid.txt", "a\tr\tb\n");  // duplicate of a train triple
  WriteFile("test.txt", "c\tr\tb\n");
  EXPECT_FALSE(LoadDatasetDir(dir_, "bad").ok());
}

TEST_F(DatasetIoTest, LoadRejectsUnseenTestEntity) {
  WriteFile("train.txt", "a\tr\tb\n");
  WriteFile("valid.txt", "");
  WriteFile("test.txt", "zz\tr\tb\n");  // zz unseen in train
  EXPECT_FALSE(LoadDatasetDir(dir_, "bad").ok());
}

TEST_F(DatasetIoTest, SaveDatasetDirWritesAllSplits) {
  WriteFile("train.txt", "a\tr\tb\nb\tr\tc\nc\tr\ta\n");
  WriteFile("valid.txt", "b\tr\ta\n");
  WriteFile("test.txt", "c\tr\tb\n");
  auto loaded = LoadDatasetDir(dir_, "toy");
  ASSERT_TRUE(loaded.ok());
  const std::string out_dir = dir_ + "/saved";
  std::filesystem::create_directories(out_dir);
  ASSERT_TRUE(SaveDatasetDir(loaded.value(), out_dir).ok());
  auto reloaded = LoadDatasetDir(out_dir, "toy2");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().train().size(), 3u);
  EXPECT_EQ(reloaded.value().valid().size(), 1u);
  EXPECT_EQ(reloaded.value().test().size(), 1u);
}

TEST(DatasetTest, KnownAnywhereChecksAllSplits) {
  Dataset d("x", 5, 1);
  ASSERT_TRUE(d.train().Add({0, 0, 1}).ok());
  ASSERT_TRUE(d.valid().Add({1, 0, 2}).ok());
  ASSERT_TRUE(d.test().Add({2, 0, 3}).ok());
  EXPECT_TRUE(d.KnownAnywhere({0, 0, 1}));
  EXPECT_TRUE(d.KnownAnywhere({1, 0, 2}));
  EXPECT_TRUE(d.KnownAnywhere({2, 0, 3}));
  EXPECT_FALSE(d.KnownAnywhere({3, 0, 4}));
}

TEST(DatasetTest, ValidateCatchesValidTestOverlap) {
  Dataset d("x", 5, 1);
  ASSERT_TRUE(d.train().AddAll({{0, 0, 1}, {1, 0, 2}, {2, 0, 0}}).ok());
  ASSERT_TRUE(d.valid().Add({1, 0, 0}).ok());
  ASSERT_TRUE(d.test().Add({1, 0, 0}).ok());
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidatePassesOnCleanDataset) {
  Dataset d("x", 3, 1);
  ASSERT_TRUE(d.train().AddAll({{0, 0, 1}, {1, 0, 2}, {2, 0, 0}}).ok());
  ASSERT_TRUE(d.valid().Add({1, 0, 0}).ok());
  ASSERT_TRUE(d.test().Add({2, 0, 1}).ok());
  EXPECT_TRUE(d.Validate().ok());
}

}  // namespace
}  // namespace kgfd
