#include "graph/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/strategy.h"
#include "kg/triple_store.h"
#include "util/rng.h"

namespace kgfd {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(PageRank(Adjacency::FromEdges(0, {})).empty());
}

TEST(PageRankTest, SumsToOne) {
  const Adjacency adj =
      Adjacency::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 0}});
  EXPECT_NEAR(Sum(PageRank(adj)), 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricGraphIsUniform) {
  // A cycle is vertex-transitive: every node gets 1/n.
  const Adjacency adj =
      Adjacency::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  for (double r : PageRank(adj)) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(PageRankTest, HubOutranksLeaves) {
  const Adjacency adj =
      Adjacency::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const std::vector<double> r = PageRank(adj);
  for (size_t leaf = 1; leaf < 5; ++leaf) {
    EXPECT_GT(r[0], r[leaf]);
    EXPECT_NEAR(r[leaf], r[1], 1e-12);  // leaves symmetric
  }
}

TEST(PageRankTest, IsolatedNodesGetTeleportMassOnly) {
  const Adjacency adj = Adjacency::FromEdges(4, {{0, 1}});
  const std::vector<double> r = PageRank(adj);
  EXPECT_NEAR(Sum(r), 1.0, 1e-9);
  EXPECT_LT(r[2], r[0]);
  EXPECT_NEAR(r[2], r[3], 1e-12);
}

TEST(PageRankTest, StarExactValues) {
  // Star with hub 0 and k = 4 leaves, damping d: by symmetry
  //   hub = (1-d)/n + d * 4 * leaf   (leaves send everything to the hub)
  //   leaf = (1-d)/n + d * hub / 4
  // Solving: hub = ((1-d)/n)(1 + 4d) / (1 - d^2).
  const Adjacency adj =
      Adjacency::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const double d = 0.85;
  const double hub_expected =
      ((1.0 - d) / 5.0) * (1.0 + 4.0 * d) / (1.0 - d * d);
  PageRankOptions tight;
  tight.max_iterations = 1000;
  tight.tolerance = 1e-14;
  const std::vector<double> r = PageRank(adj, tight);
  EXPECT_NEAR(r[0], hub_expected, 1e-10);
}

TEST(PageRankTest, DampingZeroIsUniform) {
  const Adjacency adj = Adjacency::FromEdges(5, {{0, 1}, {0, 2}, {1, 2}});
  PageRankOptions options;
  options.damping = 0.0;
  for (double r : PageRank(adj, options)) EXPECT_NEAR(r, 0.2, 1e-12);
}

TEST(PageRankTest, ConvergesOnRandomGraph) {
  Rng rng(17);
  std::vector<std::pair<EntityId, EntityId>> edges;
  for (int i = 0; i < 300; ++i) {
    edges.push_back({static_cast<EntityId>(rng.UniformInt(60)),
                     static_cast<EntityId>(rng.UniformInt(60))});
  }
  const Adjacency adj = Adjacency::FromEdges(60, edges);
  PageRankOptions tight;
  tight.max_iterations = 500;
  tight.tolerance = 1e-14;
  PageRankOptions loose;
  loose.max_iterations = 60;
  loose.tolerance = 1e-10;
  const std::vector<double> a = PageRank(adj, tight);
  const std::vector<double> b = PageRank(adj, loose);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(PageRankStrategyTest, NameRoundTripAndWeights) {
  auto back = SamplingStrategyFromName("PAGERANK");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), SamplingStrategy::kPageRank);
  EXPECT_STREQ(SamplingStrategyAbbrev(SamplingStrategy::kPageRank), "PR");

  TripleStore store(5, 1);
  ASSERT_TRUE(
      store.AddAll({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}}).ok());
  auto w = ComputeStrategyWeights(SamplingStrategy::kPageRank, store);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(Sum(w.value().subject_weights), 1.0, 1e-9);
  // Hub gets the largest sampling weight — popularity-aligned.
  const auto& weights = w.value().subject_weights;
  for (size_t leaf = 1; leaf < 5; ++leaf) {
    EXPECT_GT(weights[0], weights[leaf]);
  }
}

}  // namespace
}  // namespace kgfd
