#include "kge/embedding_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "kge/tensor.h"
#include "util/rng.h"

namespace kgfd {
namespace {

Tensor RandomTable(size_t rows, size_t cols, uint64_t seed, float lo,
                   float hi) {
  Tensor t(rows, cols);
  Rng rng(seed);
  t.InitUniform(&rng, lo, hi);
  return t;
}

/// The quantization property the drift tests build on: per-element
/// round-trip error is bounded by half a quantization step.
void ExpectRoundTripWithinHalfScale(const Tensor& table,
                                    EmbeddingDtype dtype) {
  const QuantizedTable q = QuantizedTable::Quantize(table, dtype);
  ASSERT_EQ(q.rows(), table.rows());
  ASSERT_EQ(q.cols(), table.cols());
  std::vector<float> row(table.cols());
  for (size_t r = 0; r < table.rows(); ++r) {
    q.DequantizeRow(r, row.data());
    const float scale = q.scales()[r];
    for (size_t i = 0; i < table.cols(); ++i) {
      const double err = std::fabs(static_cast<double>(row[i]) -
                                   table.Row(r)[i]);
      // Half a step, plus a sliver for the float rounding of the affine
      // transform itself.
      EXPECT_LE(err, 0.5 * scale + 1e-6 * std::fabs(table.Row(r)[i]))
          << EmbeddingDtypeName(dtype) << " row " << r << " col " << i;
    }
  }
}

TEST(QuantizedTableTest, Int8RoundTripErrorWithinHalfScale) {
  ExpectRoundTripWithinHalfScale(RandomTable(64, 24, 11, -0.6f, 0.6f),
                                 EmbeddingDtype::kInt8);
}

TEST(QuantizedTableTest, Int16RoundTripErrorWithinHalfScale) {
  ExpectRoundTripWithinHalfScale(RandomTable(64, 24, 12, -0.6f, 0.6f),
                                 EmbeddingDtype::kInt16);
}

TEST(QuantizedTableTest, NegativeOnlyRowsRoundTrip) {
  ExpectRoundTripWithinHalfScale(RandomTable(32, 16, 13, -5.0f, -1.0f),
                                 EmbeddingDtype::kInt8);
}

TEST(QuantizedTableTest, ConstantRowsRoundTripExactly) {
  Tensor t(4, 8);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 8; ++c) t.At(r, c) = 1.5f * static_cast<float>(r);
  }
  for (EmbeddingDtype dtype :
       {EmbeddingDtype::kInt8, EmbeddingDtype::kInt16}) {
    const QuantizedTable q = QuantizedTable::Quantize(t, dtype);
    std::vector<float> row(8);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(q.scales()[r], 1.0f);  // degenerate range -> unit scale
      q.DequantizeRow(r, row.data());
      for (size_t c = 0; c < 8; ++c) {
        EXPECT_EQ(row[c], t.At(r, c)) << "constant rows must be exact";
      }
    }
  }
}

TEST(QuantizedTableTest, ExtremesOfEachRowAreRepresentable) {
  // Row minimum maps to the code-range minimum and row maximum to the
  // maximum, so the dequantized extremes stay within half a step of the
  // originals (no clamping loss at the range ends).
  const Tensor t = RandomTable(16, 12, 14, -2.0f, 2.0f);
  const QuantizedTable q = QuantizedTable::Quantize(t, EmbeddingDtype::kInt8);
  std::vector<float> row(12);
  for (size_t r = 0; r < 16; ++r) {
    float lo = t.Row(r)[0], hi = t.Row(r)[0];
    for (size_t i = 1; i < 12; ++i) {
      lo = std::min(lo, t.Row(r)[i]);
      hi = std::max(hi, t.Row(r)[i]);
    }
    q.DequantizeRow(r, row.data());
    float qlo = row[0], qhi = row[0];
    for (size_t i = 1; i < 12; ++i) {
      qlo = std::min(qlo, row[i]);
      qhi = std::max(qhi, row[i]);
    }
    EXPECT_NEAR(qlo, lo, 0.5 * q.scales()[r]);
    EXPECT_NEAR(qhi, hi, 0.5 * q.scales()[r]);
  }
}

TEST(QuantizedTableTest, DequantizeRowAppliesStoredAffineParameters) {
  const Tensor t = RandomTable(8, 6, 15, -1.0f, 1.0f);
  const QuantizedTable q = QuantizedTable::Quantize(t, EmbeddingDtype::kInt8);
  const auto* codes = static_cast<const int8_t*>(q.data());
  std::vector<float> row(6);
  for (size_t r = 0; r < 8; ++r) {
    q.DequantizeRow(r, row.data());
    for (size_t i = 0; i < 6; ++i) {
      const float expected =
          q.scales()[r] *
          (static_cast<float>(codes[r * 6 + i]) - q.zero_points()[r]);
      EXPECT_EQ(row[i], expected);  // bit-identical, not just close
    }
  }
}

TEST(QuantizedTableTest, Int16IsStrictlyMorePreciseThanInt8) {
  const Tensor t = RandomTable(32, 16, 16, -0.8f, 0.8f);
  const QuantizedTable q8 = QuantizedTable::Quantize(t, EmbeddingDtype::kInt8);
  const QuantizedTable q16 =
      QuantizedTable::Quantize(t, EmbeddingDtype::kInt16);
  double err8 = 0.0, err16 = 0.0;
  std::vector<float> row(16);
  for (size_t r = 0; r < 32; ++r) {
    q8.DequantizeRow(r, row.data());
    for (size_t i = 0; i < 16; ++i) {
      err8 += std::fabs(static_cast<double>(row[i]) - t.Row(r)[i]);
    }
    q16.DequantizeRow(r, row.data());
    for (size_t i = 0; i < 16; ++i) {
      err16 += std::fabs(static_cast<double>(row[i]) - t.Row(r)[i]);
    }
  }
  EXPECT_LT(err16, err8 / 16.0)
      << "int16 has 256x the code range; total error must drop sharply";
}

TEST(QuantizedTableTest, FingerprintSensitivity) {
  const Tensor t = RandomTable(16, 8, 17, -1.0f, 1.0f);
  const QuantizedTable a = QuantizedTable::Quantize(t, EmbeddingDtype::kInt8);
  const QuantizedTable b = QuantizedTable::Quantize(t, EmbeddingDtype::kInt8);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << "deterministic";

  const QuantizedTable wider =
      QuantizedTable::Quantize(t, EmbeddingDtype::kInt16);
  EXPECT_NE(a.Fingerprint(), wider.Fingerprint()) << "dtype is identity";

  Tensor nudged = RandomTable(16, 8, 17, -1.0f, 1.0f);
  nudged.At(3, 4) += 0.25f;
  const QuantizedTable c =
      QuantizedTable::Quantize(nudged, EmbeddingDtype::kInt8);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint()) << "codes are identity";
}

TEST(QuantizedTableTest, ViewSharesStorageWithoutCopying) {
  const Tensor t = RandomTable(8, 4, 18, -1.0f, 1.0f);
  const QuantizedTable owned =
      QuantizedTable::Quantize(t, EmbeddingDtype::kInt16);
  const QuantizedTable view = QuantizedTable::View(
      owned.dtype(), owned.data(), owned.scales(), owned.zero_points(),
      owned.rows(), owned.cols(), nullptr);
  EXPECT_EQ(view.data(), owned.data());
  EXPECT_EQ(view.Fingerprint(), owned.Fingerprint());
  std::vector<float> a(4), b(4);
  for (size_t r = 0; r < 8; ++r) {
    owned.DequantizeRow(r, a.data());
    view.DequantizeRow(r, b.data());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), 4 * sizeof(float)), 0);
  }
}

TEST(EmbeddingBackendTest, NamesRoundTrip) {
  for (EmbeddingBackend b :
       {EmbeddingBackend::kRam, EmbeddingBackend::kMmap}) {
    auto parsed = EmbeddingBackendFromName(EmbeddingBackendName(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), b);
  }
  EXPECT_FALSE(EmbeddingBackendFromName("hugepages").ok());
}

TEST(EmbeddingBackendTest, EnvResolution) {
  const char* saved = std::getenv("KGFD_EMBEDDING_BACKEND");
  const std::string restore = saved != nullptr ? saved : "";
  unsetenv("KGFD_EMBEDDING_BACKEND");
  EXPECT_EQ(EmbeddingBackendFromEnv().value(), EmbeddingBackend::kRam);
  EXPECT_TRUE(ValidateEmbeddingBackendEnv().ok());
  setenv("KGFD_EMBEDDING_BACKEND", "mmap", 1);
  EXPECT_EQ(EmbeddingBackendFromEnv().value(), EmbeddingBackend::kMmap);
  setenv("KGFD_EMBEDDING_BACKEND", "bogus", 1);
  EXPECT_FALSE(EmbeddingBackendFromEnv().ok());
  EXPECT_FALSE(ValidateEmbeddingBackendEnv().ok());
  if (saved != nullptr) {
    setenv("KGFD_EMBEDDING_BACKEND", restore.c_str(), 1);
  } else {
    unsetenv("KGFD_EMBEDDING_BACKEND");
  }
}

TEST(MmapFileTest, MissingAndEmptyFilesAreIoErrors) {
  EXPECT_EQ(MmapFile::Open("/nonexistent/kgfd.bin").status().code(),
            StatusCode::kIoError);
  const std::string path = ::testing::TempDir() + "/kgfd_empty_mmap.bin";
  { std::ofstream out(path, std::ios::binary); }
  auto result = MmapFile::Open(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().ToString().find("empty"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgfd
