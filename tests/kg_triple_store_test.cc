#include "kg/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "kg/types.h"

namespace kgfd {
namespace {

TEST(TripleTypesTest, PackUnpackRoundTrips) {
  const Triple t{123456, 4000, 654321};
  EXPECT_EQ(UnpackTriple(PackTriple(t)), t);
}

TEST(TripleTypesTest, PackIsInjectiveOnDistinctTriples) {
  const Triple a{1, 2, 3};
  const Triple b{3, 2, 1};
  const Triple c{1, 3, 2};
  EXPECT_NE(PackTriple(a), PackTriple(b));
  EXPECT_NE(PackTriple(a), PackTriple(c));
}

TEST(TripleTypesTest, PackBoundaryValues) {
  const Triple t{static_cast<EntityId>(kMaxPackableEntities - 1),
                 static_cast<RelationId>(kMaxPackableRelations - 1),
                 static_cast<EntityId>(kMaxPackableEntities - 1)};
  EXPECT_EQ(UnpackTriple(PackTriple(t)), t);
}

TEST(TripleStoreTest, AddAndContains) {
  TripleStore store(10, 3);
  ASSERT_TRUE(store.Add({1, 0, 2}).ok());
  EXPECT_TRUE(store.Contains({1, 0, 2}));
  EXPECT_FALSE(store.Contains({2, 0, 1}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, DuplicateAddReturnsFalse) {
  TripleStore store(10, 3);
  auto first = store.Add({1, 0, 2});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value());
  auto second = store.Add({1, 0, 2});
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, RejectsOutOfRangeIds) {
  TripleStore store(5, 2);
  EXPECT_FALSE(store.Add({5, 0, 1}).ok());   // subject out of range
  EXPECT_FALSE(store.Add({0, 2, 1}).ok());   // relation out of range
  EXPECT_FALSE(store.Add({0, 0, 99}).ok());  // object out of range
  EXPECT_EQ(store.size(), 0u);
}

TEST(TripleStoreTest, ByRelationBuckets) {
  TripleStore store(10, 3);
  ASSERT_TRUE(store.AddAll({{0, 0, 1}, {1, 0, 2}, {2, 1, 3}}).ok());
  EXPECT_EQ(store.ByRelation(0).size(), 2u);
  EXPECT_EQ(store.ByRelation(1).size(), 1u);
  EXPECT_TRUE(store.ByRelation(2).empty());
}

TEST(TripleStoreTest, ByRelationOutOfRangeIsEmpty) {
  TripleStore store(10, 3);
  EXPECT_TRUE(store.ByRelation(99).empty());
}

TEST(TripleStoreTest, UsedRelationsSkipsEmpty) {
  TripleStore store(10, 5);
  ASSERT_TRUE(store.AddAll({{0, 1, 1}, {0, 3, 1}}).ok());
  EXPECT_EQ(store.UsedRelations(), (std::vector<RelationId>{1, 3}));
}

TEST(TripleStoreTest, ObjectsOfIndex) {
  TripleStore store(10, 2);
  ASSERT_TRUE(store.AddAll({{1, 0, 2}, {1, 0, 3}, {1, 1, 4}, {2, 0, 5}})
                  .ok());
  std::vector<EntityId> objects = store.ObjectsOf(1, 0);
  std::sort(objects.begin(), objects.end());
  EXPECT_EQ(objects, (std::vector<EntityId>{2, 3}));
  EXPECT_TRUE(store.ObjectsOf(9, 0).empty());
}

TEST(TripleStoreTest, SubjectsOfIndex) {
  TripleStore store(10, 2);
  ASSERT_TRUE(store.AddAll({{1, 0, 5}, {2, 0, 5}, {3, 1, 5}}).ok());
  std::vector<EntityId> subjects = store.SubjectsOf(0, 5);
  std::sort(subjects.begin(), subjects.end());
  EXPECT_EQ(subjects, (std::vector<EntityId>{1, 2}));
  EXPECT_TRUE(store.SubjectsOf(1, 9).empty());
}

TEST(TripleStoreTest, AddAllFailsFastOnInvalid) {
  TripleStore store(3, 1);
  const Status s = store.AddAll({{0, 0, 1}, {99, 0, 1}, {1, 0, 2}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(store.size(), 1u);  // first triple landed before the failure
}

TEST(TripleStoreTest, SelfLoopsAreAllowed) {
  TripleStore store(4, 1);
  ASSERT_TRUE(store.Add({2, 0, 2}).ok());
  EXPECT_TRUE(store.Contains({2, 0, 2}));
}

TEST(TripleStoreTest, TriplesPreservesInsertionOrder) {
  TripleStore store(10, 2);
  ASSERT_TRUE(store.AddAll({{3, 1, 4}, {0, 0, 1}}).ok());
  EXPECT_EQ(store.triples()[0], (Triple{3, 1, 4}));
  EXPECT_EQ(store.triples()[1], (Triple{0, 0, 1}));
}

}  // namespace
}  // namespace kgfd
