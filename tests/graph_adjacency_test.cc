#include "graph/adjacency.h"

#include <gtest/gtest.h>

#include <vector>

namespace kgfd {
namespace {

using Edge = std::pair<EntityId, EntityId>;

TEST(AdjacencyTest, FromEdgesBasic) {
  const Adjacency adj = Adjacency::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(adj.num_nodes(), 4u);
  EXPECT_EQ(adj.num_edges(), 3u);
  EXPECT_EQ(adj.Degree(0), 1u);
  EXPECT_EQ(adj.Degree(1), 2u);
  EXPECT_TRUE(adj.HasEdge(0, 1));
  EXPECT_TRUE(adj.HasEdge(1, 0));  // symmetric
  EXPECT_FALSE(adj.HasEdge(0, 2));
}

TEST(AdjacencyTest, DropsSelfLoops) {
  const Adjacency adj = Adjacency::FromEdges(3, {{0, 0}, {0, 1}});
  EXPECT_EQ(adj.num_edges(), 1u);
  EXPECT_FALSE(adj.HasEdge(0, 0));
}

TEST(AdjacencyTest, CollapsesParallelAndReverseEdges) {
  const Adjacency adj =
      Adjacency::FromEdges(3, {{0, 1}, {0, 1}, {1, 0}, {1, 2}});
  EXPECT_EQ(adj.num_edges(), 2u);
  EXPECT_EQ(adj.Degree(0), 1u);
  EXPECT_EQ(adj.Degree(1), 2u);
}

TEST(AdjacencyTest, NeighborListsAreSortedAndUnique) {
  const Adjacency adj =
      Adjacency::FromEdges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 0}});
  std::vector<EntityId> neighbors(adj.NeighborsBegin(2),
                                  adj.NeighborsEnd(2));
  EXPECT_EQ(neighbors, (std::vector<EntityId>{0, 3, 4}));
}

TEST(AdjacencyTest, IgnoresOutOfRangeEdges) {
  const Adjacency adj = Adjacency::FromEdges(2, {{0, 1}, {0, 7}});
  EXPECT_EQ(adj.num_edges(), 1u);
}

TEST(AdjacencyTest, IsolatedNodesHaveZeroDegree) {
  const Adjacency adj = Adjacency::FromEdges(5, {{0, 1}});
  EXPECT_EQ(adj.Degree(2), 0u);
  EXPECT_EQ(adj.NeighborsBegin(2), adj.NeighborsEnd(2));
}

TEST(AdjacencyTest, HasEdgeOutOfRangeIsFalse) {
  const Adjacency adj = Adjacency::FromEdges(2, {{0, 1}});
  EXPECT_FALSE(adj.HasEdge(9, 0));
}

TEST(AdjacencyTest, FromTripleStoreProjectsHomogeneously) {
  // Two relations between the same pair collapse into one undirected edge;
  // a self-loop triple is dropped.
  TripleStore store(4, 3);
  ASSERT_TRUE(
      store.AddAll({{0, 0, 1}, {1, 1, 0}, {0, 2, 1}, {2, 0, 2}, {2, 1, 3}})
          .ok());
  const Adjacency adj = Adjacency::FromTripleStore(store);
  EXPECT_EQ(adj.num_edges(), 2u);  // {0,1} and {2,3}
  EXPECT_TRUE(adj.HasEdge(0, 1));
  EXPECT_TRUE(adj.HasEdge(2, 3));
  EXPECT_FALSE(adj.HasEdge(2, 2));
}

TEST(AdjacencyTest, EmptyGraph) {
  const Adjacency adj = Adjacency::FromEdges(3, {});
  EXPECT_EQ(adj.num_nodes(), 3u);
  EXPECT_EQ(adj.num_edges(), 0u);
}

}  // namespace
}  // namespace kgfd
