#include "kg/synthetic.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/adjacency.h"
#include "graph/metrics.h"
#include "kg/kg_stats.h"

namespace kgfd {
namespace {

TEST(SyntheticTest, RejectsDegenerateConfigs) {
  SyntheticConfig c;
  c.num_entities = 1;
  EXPECT_FALSE(GenerateSyntheticDataset(c).ok());
  c = SyntheticConfig();
  c.closure_probability = 1.5;
  EXPECT_FALSE(GenerateSyntheticDataset(c).ok());
}

TEST(SyntheticTest, RejectsOverSaturatedRequest) {
  SyntheticConfig c;
  c.num_entities = 4;
  c.num_relations = 1;
  c.num_train = 100;  // way over 0.5 * 4*3*1 = 6 triples
  c.num_valid = 0;
  c.num_test = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(c).ok());
}

TEST(SyntheticTest, ExactSplitSizes) {
  SyntheticConfig c;
  c.num_entities = 300;
  c.num_relations = 5;
  c.num_train = 2000;
  c.num_valid = 100;
  c.num_test = 120;
  auto result = GenerateSyntheticDataset(c);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().train().size(), 2000u);
  EXPECT_EQ(result.value().valid().size(), 100u);
  EXPECT_EQ(result.value().test().size(), 120u);
}

TEST(SyntheticTest, DeterministicUnderSeed) {
  SyntheticConfig c;
  c.num_entities = 200;
  c.num_relations = 4;
  c.num_train = 1000;
  c.num_valid = 50;
  c.num_test = 50;
  c.seed = 99;
  auto a = GenerateSyntheticDataset(c);
  auto b = GenerateSyntheticDataset(c);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().train().triples(), b.value().train().triples());
  EXPECT_EQ(a.value().test().triples(), b.value().test().triples());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig c;
  c.num_entities = 200;
  c.num_relations = 4;
  c.num_train = 1000;
  c.num_valid = 50;
  c.num_test = 50;
  c.seed = 1;
  auto a = GenerateSyntheticDataset(c);
  c.seed = 2;
  auto b = GenerateSyntheticDataset(c);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().train().triples(), b.value().train().triples());
}

TEST(SyntheticTest, NoSelfLoops) {
  SyntheticConfig c;
  c.num_entities = 150;
  c.num_relations = 3;
  c.num_train = 800;
  c.num_valid = 40;
  c.num_test = 40;
  auto result = GenerateSyntheticDataset(c);
  ASSERT_TRUE(result.ok());
  for (const TripleStore* split :
       {&result.value().train(), &result.value().valid(),
        &result.value().test()}) {
    for (const Triple& t : split->triples()) {
      EXPECT_NE(t.subject, t.object);
    }
  }
}

TEST(SyntheticTest, ClosureKnobRaisesClustering) {
  SyntheticConfig base;
  base.num_entities = 400;
  base.num_relations = 6;
  base.num_train = 4000;
  base.num_valid = 100;
  base.num_test = 100;
  // Low skew so the popular-entity core doesn't cluster by itself and the
  // closure knob's effect is isolated.
  base.entity_zipf_exponent = 0.3;
  base.closure_probability = 0.0;
  auto sparse = GenerateSyntheticDataset(base);
  base.closure_probability = 0.45;
  auto dense = GenerateSyntheticDataset(base);
  ASSERT_TRUE(sparse.ok() && dense.ok());
  const double cc_sparse = AverageClusteringCoefficient(
      Adjacency::FromTripleStore(sparse.value().train()));
  const double cc_dense = AverageClusteringCoefficient(
      Adjacency::FromTripleStore(dense.value().train()));
  EXPECT_GT(cc_dense, 2.0 * cc_sparse);
}

TEST(SyntheticTest, ZipfExponentSkewsFrequencies) {
  SyntheticConfig base;
  base.num_entities = 500;
  base.num_relations = 4;
  base.num_train = 3000;
  base.num_valid = 50;
  base.num_test = 50;
  base.entity_zipf_exponent = 1.2;
  auto skewed = GenerateSyntheticDataset(base);
  ASSERT_TRUE(skewed.ok());
  const SideCounts counts = ComputeSideCounts(skewed.value().train());
  // The head entity (id 0, highest Zipf weight) should dwarf the median.
  uint32_t head = counts.subject_count[0] + counts.object_count[0];
  uint32_t mid = counts.subject_count[250] + counts.object_count[250];
  EXPECT_GT(head, 5 * std::max(1u, mid));
}

/// Preset property sweep over all four paper datasets.
class PresetTest : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(PresetTest, GeneratesValidDataset) {
  auto result = GenerateSyntheticDataset(GetParam());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().Validate().ok());
}

TEST_P(PresetTest, MatchesConfiguredCounts) {
  const SyntheticConfig& c = GetParam();
  auto result = GenerateSyntheticDataset(c);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_entities(), c.num_entities);
  EXPECT_EQ(result.value().num_relations(), c.num_relations);
  EXPECT_EQ(result.value().train().size(), c.num_train);
  EXPECT_EQ(result.value().valid().size(), c.num_valid);
  EXPECT_EQ(result.value().test().size(), c.num_test);
}

TEST_P(PresetTest, AllTriplesUnique) {
  auto result = GenerateSyntheticDataset(GetParam());
  ASSERT_TRUE(result.ok());
  std::unordered_set<uint64_t> seen;
  for (const TripleStore* split :
       {&result.value().train(), &result.value().valid(),
        &result.value().test()}) {
    for (const Triple& t : split->triples()) {
      EXPECT_TRUE(seen.insert(PackTriple(t)).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPresets, PresetTest,
    ::testing::Values(Fb15k237Config(200.0), Wn18rrConfig(200.0),
                      Yago310Config(200.0), CodexLConfig(200.0)),
    [](const ::testing::TestParamInfo<SyntheticConfig>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(PresetOrderingTest, RelationCountsMatchPaperTable1) {
  EXPECT_EQ(Fb15k237Config(100.0).num_relations, 237u);
  EXPECT_EQ(Wn18rrConfig(100.0).num_relations, 11u);
  EXPECT_EQ(Yago310Config(100.0).num_relations, 37u);
  EXPECT_EQ(CodexLConfig(100.0).num_relations, 69u);
}

TEST(PresetOrderingTest, ScaleOneMatchesPaperSizes) {
  const SyntheticConfig c = Fb15k237Config(1.0);
  EXPECT_EQ(c.num_entities, 14541u);
  EXPECT_EQ(c.num_train, 272115u);
  EXPECT_EQ(c.num_valid, 17535u);
  EXPECT_EQ(c.num_test, 20429u);
}

TEST(PresetOrderingTest, Wn18rrIsSparsest) {
  // The paper's Fig. 3: WN18RR has by far the lowest average clustering
  // coefficient; FB15K-237 the highest.
  double cc[4];
  int i = 0;
  for (const SyntheticConfig& c : AllDatasetConfigs(150.0)) {
    auto d = GenerateSyntheticDataset(c);
    ASSERT_TRUE(d.ok()) << c.name << ": " << d.status().ToString();
    cc[i++] = AverageClusteringCoefficient(
        Adjacency::FromTripleStore(d.value().train()));
  }
  const double fb = cc[0], wn = cc[1], yago = cc[2], codex = cc[3];
  EXPECT_LT(wn, fb);
  EXPECT_LT(wn, yago);
  EXPECT_LT(wn, codex);
  EXPECT_GT(fb, yago);
}

}  // namespace
}  // namespace kgfd
