#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/job.h"
#include "core/resume.h"
#include "kg/synthetic.h"
#include "kge/evaluator.h"
#include "kge/trainer.h"
#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

/// Graceful-shutdown integration: cancellation (token, deadline, SIGINT or
/// the discovery.cancel failpoint) must stop a sweep at a checkpoint,
/// keep every completed relation's facts bit-identical to an uninterrupted
/// run, persist a loadable resume manifest, and let a later resume finish
/// the job byte-for-byte.
class CancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Reset();
    // Process-unique: ctest runs each TEST as its own process in parallel,
    // and a shared directory would let one test's remove_all race another.
    dir_ = ::testing::TempDir() + "/kgfd_cancel_test_" +
           std::to_string(::getpid());
    std::filesystem::create_directories(dir_);
    manifest_ = dir_ + "/resume.manifest";
    std::filesystem::remove(manifest_);
  }
  void TearDown() override {
    FailPoints::Instance().Reset();
    InstallSignalCancellation(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string manifest_;
};

struct Fixture {
  Dataset dataset;
  std::unique_ptr<Model> model;
};

const Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    SyntheticConfig c;
    c.name = "cancel";
    c.num_entities = 50;
    c.num_relations = 6;  // several relations so a mid-sweep stop is real
    c.num_train = 500;
    c.num_valid = 20;
    c.num_test = 20;
    c.seed = 31;
    auto dataset =
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset");
    ModelConfig mc;
    mc.num_entities = dataset.num_entities();
    mc.num_relations = dataset.num_relations();
    mc.embedding_dim = 10;
    TrainerConfig tc;
    tc.epochs = 4;
    tc.batch_size = 64;
    tc.loss = LossKind::kSoftplus;
    tc.seed = 5;
    auto model =
        std::move(TrainModel(ModelKind::kDistMult, mc, dataset.train(), tc))
            .ValueOrDie("model");
    return new Fixture{std::move(dataset), std::move(model)};
  }();
  return *fixture;
}

DiscoveryOptions SmallOptions() {
  DiscoveryOptions o;
  o.top_n = 25;
  o.max_candidates = 60;
  o.seed = 77;
  return o;
}

bool SameFacts(const std::vector<DiscoveredFact>& a,
               const std::vector<DiscoveredFact>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // memcmp, not ==: bit-identical or bust.
    if (std::memcmp(&a[i].triple, &b[i].triple, sizeof(Triple)) != 0 ||
        std::memcmp(&a[i].rank, &b[i].rank, sizeof(double)) != 0 ||
        std::memcmp(&a[i].subject_rank, &b[i].subject_rank,
                    sizeof(double)) != 0 ||
        std::memcmp(&a[i].object_rank, &b[i].object_rank,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Reference facts restricted to the given relations, in sweep order.
std::vector<DiscoveredFact> FactsOfRelations(
    const std::vector<DiscoveredFact>& facts,
    const std::vector<RelationId>& relations) {
  std::vector<DiscoveredFact> out;
  for (const DiscoveredFact& f : facts) {
    for (RelationId r : relations) {
      if (f.triple.relation == r) {
        out.push_back(f);
        break;
      }
    }
  }
  return out;
}

// ------------------------------------------------- plain discovery stops

TEST_F(CancellationTest, PreCancelledTokenYieldsEmptyGracefulResult) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  CancellationToken token;
  token.RequestCancel();
  options.cancel = CancelContext(&token);
  MetricsRegistry registry;
  options.metrics = &registry;

  auto result = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stopped_reason, StoppedReason::kCancelled);
  EXPECT_TRUE(result.value().facts.empty());
  EXPECT_EQ(result.value().stats.num_relations_processed, 0u);
  EXPECT_EQ(result.value().stats.num_relations_skipped,
            f.dataset.train().UsedRelations().size());
  // The stop was observed exactly once and its latency recorded.
  EXPECT_EQ(registry.GetCounter(kCancelRequestedCounter)->value(), 1u);
  EXPECT_EQ(registry.GetHistogram(kCancelObservedSecondsHist)->total_count(),
            1u);
}

TEST_F(CancellationTest, ExpiredDeadlineYieldsGracefulDeadlineResult) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  options.cancel = CancelContext(Deadline::After(0.0));

  auto result = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stopped_reason, StoppedReason::kDeadline);
  EXPECT_TRUE(result.value().facts.empty());
  EXPECT_EQ(result.value().stats.num_relations_skipped,
            f.dataset.train().UsedRelations().size());
}

TEST_F(CancellationTest, GenerousDeadlineChangesNothing) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  options.cancel = CancelContext(Deadline::After(3600.0));
  auto timed = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(timed.value().stopped_reason, StoppedReason::kNone);
  EXPECT_TRUE(SameFacts(timed.value().facts, reference.value().facts));
}

TEST_F(CancellationTest, MidSweepCancelKeepsCompletedRelationsBitIdentical) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions reference_options = SmallOptions();
  auto reference =
      DiscoverFacts(*f.model, f.dataset.train(), reference_options);
  ASSERT_TRUE(reference.ok());
  const std::vector<RelationId> relations =
      f.dataset.train().UsedRelations();
  ASSERT_GT(relations.size(), 2u);

  // Each completed relation consumes 4 discovery.cancel checkpoint
  // evaluations; skipping 8 lets exactly two relations finish on the
  // serial path, then the injected stop lands at the third's boundary.
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryCancel, "8+return(Cancelled)")
                  .ok());
  auto stopped = DiscoverFacts(*f.model, f.dataset.train(),
                               reference_options);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kCancelled);
  EXPECT_EQ(stopped.value().stats.num_relations_processed, 2u);
  EXPECT_EQ(stopped.value().stats.num_relations_skipped,
            relations.size() - 2);

  // The partial result is exactly the reference facts of the two
  // completed relations — graceful degradation never rescores anything.
  const std::vector<RelationId> done(relations.begin(),
                                     relations.begin() + 2);
  EXPECT_TRUE(SameFacts(stopped.value().facts,
                        FactsOfRelations(reference.value().facts, done)));
}

TEST_F(CancellationTest, CallbackDrivenTokenCancelStopsNextRelation) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  CancellationToken token;
  options.cancel = CancelContext(&token);
  // Request cancellation from inside the sweep, right after the first
  // relation completes — the Ctrl-C-mid-run shape, made deterministic.
  options.on_relation_complete = [&token](RelationCompletion&&) {
    token.RequestCancel();
  };
  auto reference = DiscoverFacts(*f.model, f.dataset.train(),
                                 SmallOptions());
  ASSERT_TRUE(reference.ok());

  auto stopped = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kCancelled);
  ASSERT_EQ(stopped.value().stats.num_relations_processed, 1u);
  const std::vector<RelationId> done = {
      f.dataset.train().UsedRelations().front()};
  EXPECT_TRUE(SameFacts(stopped.value().facts,
                        FactsOfRelations(reference.value().facts, done)));
}

TEST_F(CancellationTest, SigintDuringSweepStopsGracefully) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  CancellationToken token;
  InstallSignalCancellation(&token);
  options.cancel = CancelContext(&token);
  // Deliver a real SIGINT mid-sweep (from the completion callback, so the
  // timing is deterministic); the installed handler flips the token.
  options.on_relation_complete = [](RelationCompletion&&) {
    std::raise(SIGINT);
  };
  auto stopped = DiscoverFacts(*f.model, f.dataset.train(), options);
  InstallSignalCancellation(nullptr);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kCancelled);
  EXPECT_EQ(stopped.value().stats.num_relations_processed, 1u);
}

// ------------------------------------------- resumable sweeps + manifests

TEST_F(CancellationTest, CancelMidSweepManifestResumesBitIdentical) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // Run 1: injected stop after two relations. Graceful: OK status, partial
  // facts, manifest already flushed with the completed prefix.
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryCancel, "8+return(Cancelled)")
                  .ok());
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto stopped = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kCancelled);
  EXPECT_LT(stopped.value().facts.size(), reference.value().facts.size());

  // The manifest on disk is valid and holds exactly the completed work.
  auto mid = LoadResumeManifest(manifest_);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(mid.value().done.size(), 2u);

  // Run 2: stop cleared; the resumed sweep must match the uninterrupted
  // reference byte for byte.
  FailPoints::Instance().Reset();
  auto resumed = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().stopped_reason, StoppedReason::kNone);
  EXPECT_TRUE(SameFacts(resumed.value().facts, reference.value().facts));
  EXPECT_EQ(resumed.value().stats.num_candidates,
            reference.value().stats.num_candidates);
}

TEST_F(CancellationTest, CancelMidSweepResumeUnderThreadPool) {
  const Fixture& f = SharedFixture();
  const DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // Pooled sweep: the injected stop lands nondeterministically, abandoned
  // relations are all-or-nothing, completed ones are already persisted.
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryCancel, "8+return(Cancelled)")
                  .ok());
  ThreadPool pool(4);
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto stopped = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume, &pool);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kCancelled);
  ASSERT_TRUE(LoadResumeManifest(manifest_).ok());

  FailPoints::Instance().Reset();
  auto resumed = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume, &pool);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(SameFacts(resumed.value().facts, reference.value().facts));
}

TEST_F(CancellationTest, DeadlineStoppedResumableJobFinishesLater) {
  const Fixture& f = SharedFixture();
  DiscoveryOptions options = SmallOptions();
  auto reference = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(reference.ok());

  // Run 1 with an already-expired wall-clock budget: nothing runs, but the
  // job still persists a (header-only) manifest and reports the reason.
  options.cancel = CancelContext(Deadline::After(0.0));
  ResumeOptions resume;
  resume.manifest_path = manifest_;
  auto stopped = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped.value().stopped_reason, StoppedReason::kDeadline);
  EXPECT_TRUE(stopped.value().facts.empty());
  ASSERT_TRUE(LoadResumeManifest(manifest_).ok());

  // Run 2 with the budget lifted completes the whole sweep bit-identically.
  options.cancel = CancelContext();
  auto resumed = DiscoverFactsResumable(*f.model, f.dataset.train(),
                                        options, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().stopped_reason, StoppedReason::kNone);
  EXPECT_TRUE(SameFacts(resumed.value().facts, reference.value().facts));
}

// ------------------------------------------------------- trainer + eval

TEST_F(CancellationTest, TrainerStopsGracefullyWithPartialStats) {
  const Fixture& f = SharedFixture();
  ModelConfig mc;
  mc.num_entities = f.dataset.num_entities();
  mc.num_relations = f.dataset.num_relations();
  mc.embedding_dim = 8;
  Rng rng(13);
  auto model = CreateModel(ModelKind::kDistMult, mc, &rng);
  ASSERT_TRUE(model.ok());

  TrainerConfig tc;
  tc.epochs = 50;
  tc.batch_size = 64;
  tc.loss = LossKind::kSoftplus;
  tc.seed = 9;
  CancellationToken token;
  token.RequestCancel();
  tc.cancel = CancelContext(&token);

  Trainer trainer(model.value().get(), &f.dataset.train(), tc);
  auto stats = trainer.Train();
  // Graceful: OK with the epochs that finished (none — the stop predates
  // the first batch), and the model is still usable for scoring.
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().empty());
  EXPECT_GT(model.value()->NumParameters(), 0u);
  (void)model.value()->Score(Triple{0, 0, 1});
}

TEST_F(CancellationTest, EvaluatorsReturnCancelledError) {
  const Fixture& f = SharedFixture();
  EvalConfig config;
  CancellationToken token;
  token.RequestCancel();
  config.cancel = CancelContext(&token);

  // Serial and pooled link prediction both error out — partial metrics
  // over a prefix of the split would be silently wrong.
  auto serial = EvaluateLinkPrediction(*f.model, f.dataset,
                                       f.dataset.test(), config);
  EXPECT_EQ(serial.status().code(), StatusCode::kCancelled);
  ThreadPool pool(2);
  auto pooled = EvaluateLinkPrediction(*f.model, f.dataset,
                                       f.dataset.test(), config, &pool);
  EXPECT_EQ(pooled.status().code(), StatusCode::kCancelled);

  auto stratified = EvaluateByPopularity(*f.model, f.dataset,
                                         f.dataset.test(), 2, config);
  EXPECT_EQ(stratified.status().code(), StatusCode::kCancelled);
}

TEST_F(CancellationTest, EvaluatorDeadlineMapsToDeadlineExceeded) {
  const Fixture& f = SharedFixture();
  EvalConfig config;
  config.cancel = CancelContext(Deadline::After(0.0));
  auto result = EvaluateLinkPrediction(*f.model, f.dataset,
                                       f.dataset.test(), config);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(CancellationTest, RunJobStopsBetweenPhases) {
  JobSpec spec;
  spec.dataset_dir = "";
  spec.dataset_scale = 400.0;  // tiny synthetic graph
  spec.trainer.epochs = 1;
  CancellationToken token;
  token.RequestCancel();
  spec.cancel = CancelContext(&token);
  auto result = RunJob(spec);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace kgfd
