#include "core/strategy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/adjacency.h"
#include "graph/metrics.h"

namespace kgfd {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// KG used across the formula tests:
///   0 -r0-> 1, 0 -r0-> 2, 1 -r0-> 2, 2 -r1-> 3, 0 -r1-> 3
/// Undirected projection: edges 0-1, 0-2, 1-2, 2-3, 0-3, i.e. the two
/// triangles {0,1,2} and {0,2,3} sharing edge 0-2. Node 4 is isolated.
TripleStore FormulaStore() {
  TripleStore store(5, 2);
  store
      .AddAll({{0, 0, 1}, {0, 0, 2}, {1, 0, 2}, {2, 1, 3}, {0, 1, 3}})
      .AbortIfNotOk("formula store");
  return store;
}

TEST(StrategyNamesTest, RoundTripCanonicalAndAbbrev) {
  for (SamplingStrategy s :
       {SamplingStrategy::kUniformRandom, SamplingStrategy::kEntityFrequency,
        SamplingStrategy::kGraphDegree,
        SamplingStrategy::kClusteringCoefficient,
        SamplingStrategy::kClusteringTriangles,
        SamplingStrategy::kClusteringSquares}) {
    auto canonical = SamplingStrategyFromName(SamplingStrategyName(s));
    ASSERT_TRUE(canonical.ok());
    EXPECT_EQ(canonical.value(), s);
    auto abbrev = SamplingStrategyFromName(SamplingStrategyAbbrev(s));
    ASSERT_TRUE(abbrev.ok());
    EXPECT_EQ(abbrev.value(), s);
  }
  EXPECT_FALSE(SamplingStrategyFromName("NOPE").ok());
}

TEST(StrategyNamesTest, AdaptiveAndModelScoreRoundTrip) {
  for (SamplingStrategy s :
       {SamplingStrategy::kModelScore, SamplingStrategy::kAdaptive}) {
    auto canonical = SamplingStrategyFromName(SamplingStrategyName(s));
    ASSERT_TRUE(canonical.ok());
    EXPECT_EQ(canonical.value(), s);
    auto abbrev = SamplingStrategyFromName(SamplingStrategyAbbrev(s));
    ASSERT_TRUE(abbrev.ok());
    EXPECT_EQ(abbrev.value(), s);
  }
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kModelScore),
               "MODEL_SCORE");
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kAdaptive),
               "ADAPTIVE");
}

TEST(StrategyNamesTest, AllStrategiesEnumeratedOnce) {
  const auto all = AllSamplingStrategies();
  EXPECT_EQ(all.size(), 11u);
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  // Every enumerated strategy round-trips through its name.
  for (SamplingStrategy s : all) {
    auto parsed = SamplingStrategyFromName(SamplingStrategyName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), s);
  }
}

TEST(StrategyNamesTest, UnknownNameErrorListsEveryValidName) {
  const auto result = SamplingStrategyFromName("CLAIRVOYANT");
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().message();
  EXPECT_NE(message.find("CLAIRVOYANT"), std::string::npos);
  // The actionable part: every valid spelling appears in the message.
  for (SamplingStrategy s : AllSamplingStrategies()) {
    EXPECT_NE(message.find(SamplingStrategyName(s)), std::string::npos)
        << "missing " << SamplingStrategyName(s) << " in: " << message;
  }
}

TEST(StrategyWeightsTest, RejectsModelScoreAndAdaptiveWithGuidance) {
  // These two are not topology formulas: MODEL_SCORE needs the model
  // (adaptive/score_sketch.h) and ADAPTIVE is a meta-strategy. The error
  // must say where to go instead of a generic "unsupported".
  const TripleStore store = FormulaStore();
  auto ms = ComputeStrategyWeights(SamplingStrategy::kModelScore, store);
  ASSERT_FALSE(ms.ok());
  EXPECT_EQ(ms.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ms.status().message().find("score_sketch"), std::string::npos);
  auto ad = ComputeStrategyWeights(SamplingStrategy::kAdaptive, store);
  ASSERT_FALSE(ad.ok());
  EXPECT_EQ(ad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyNamesTest, ComparativeSetExcludesSquares) {
  const auto strategies = ComparativeStrategies();
  EXPECT_EQ(strategies.size(), 5u);
  for (SamplingStrategy s : strategies) {
    EXPECT_NE(s, SamplingStrategy::kClusteringSquares);
  }
}

TEST(StrategyWeightsTest, RejectsEmptyKg) {
  TripleStore empty(3, 1);
  EXPECT_FALSE(
      ComputeStrategyWeights(SamplingStrategy::kUniformRandom, empty).ok());
}

TEST(StrategyWeightsTest, UniformRandomMatchesEq1) {
  const TripleStore store = FormulaStore();
  auto w = ComputeStrategyWeights(SamplingStrategy::kUniformRandom, store);
  ASSERT_TRUE(w.ok());
  // Unique subjects: {0, 1, 2}; unique objects: {1, 2, 3}.
  EXPECT_EQ(w.value().subject_pool, (std::vector<EntityId>{0, 1, 2}));
  EXPECT_EQ(w.value().object_pool, (std::vector<EntityId>{1, 2, 3}));
  for (double v : w.value().subject_weights) {
    EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
  }
  for (double v : w.value().object_weights) {
    EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
  }
}

TEST(StrategyWeightsTest, EntityFrequencyMatchesEq2) {
  const TripleStore store = FormulaStore();
  auto w = ComputeStrategyWeights(SamplingStrategy::kEntityFrequency, store);
  ASSERT_TRUE(w.ok());
  // count(0, subject) = 3, count(1, subject) = 1, count(2, subject) = 1;
  // len(side) = 5 triples on each side (Eq. 2 divides by the side's triple
  // count, not the unique-entity pool size).
  EXPECT_EQ(w.value().subject_pool, (std::vector<EntityId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(w.value().subject_weights[0], 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[1], 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[2], 1.0 / 5.0);
  // Objects: 1 once, 2 twice, 3 twice.
  EXPECT_DOUBLE_EQ(w.value().object_weights[0], 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.value().object_weights[1], 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.value().object_weights[2], 2.0 / 5.0);
}

TEST(StrategyWeightsTest, EntityFrequencySidesDifferAsInPaper) {
  // The paper notes an entity on both sides may get different weights.
  const TripleStore store = FormulaStore();
  auto w = ComputeStrategyWeights(SamplingStrategy::kEntityFrequency, store);
  ASSERT_TRUE(w.ok());
  // Entity 2: subject weight 1/5, object weight 2/5.
  EXPECT_NE(w.value().subject_weights[2], w.value().object_weights[1]);
}

TEST(StrategyWeightsTest, GraphDegreeMatchesEq3) {
  const TripleStore store = FormulaStore();
  auto w = ComputeStrategyWeights(SamplingStrategy::kGraphDegree, store);
  ASSERT_TRUE(w.ok());
  // Degrees: 0:3, 1:2, 2:3, 3:2, 4:0; sum 10.
  ASSERT_EQ(w.value().subject_pool.size(), 5u);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[0], 0.3);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[1], 0.2);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[2], 0.3);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[3], 0.2);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[4], 0.0);
  // Side-agnostic: both sides identical (paper Eq. 3 remark).
  EXPECT_EQ(w.value().subject_weights, w.value().object_weights);
}

TEST(StrategyWeightsTest, ClusteringTrianglesMatchesEq4) {
  const TripleStore store = FormulaStore();
  auto w =
      ComputeStrategyWeights(SamplingStrategy::kClusteringTriangles, store);
  ASSERT_TRUE(w.ok());
  // T = [2, 1, 2, 1, 0] (nodes 0 and 2 corner both triangles); sum 6.
  EXPECT_DOUBLE_EQ(w.value().subject_weights[0], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[1], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[2], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[3], 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[4], 0.0);
}

TEST(StrategyWeightsTest, ClusteringCoefficientMatchesEq5) {
  const TripleStore store = FormulaStore();
  auto w = ComputeStrategyWeights(SamplingStrategy::kClusteringCoefficient,
                                  store);
  ASSERT_TRUE(w.ok());
  // c(0) = 2*1/(3*2) = 1/3, c(1) = 1, c(2) = 1/3, c(3) = 0, c(4) = 0.
  const Adjacency adj = Adjacency::FromTripleStore(store);
  const std::vector<double> c = LocalClusteringCoefficients(adj);
  const double total = Sum(c);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(w.value().subject_weights[i], c[i] / total, 1e-12);
  }
}

TEST(StrategyWeightsTest, ClusteringSquaresMatchesEq6) {
  // Add a square so c4 is not identically zero:
  // edges 0-1, 1-2, 2-3, 3-0 via relation 0.
  TripleStore store(4, 1);
  ASSERT_TRUE(
      store.AddAll({{0, 0, 1}, {1, 0, 2}, {2, 0, 3}, {3, 0, 0}}).ok());
  auto w =
      ComputeStrategyWeights(SamplingStrategy::kClusteringSquares, store);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w.value().fell_back_to_uniform);
  for (double v : w.value().subject_weights) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(StrategyWeightsTest, AllStrategiesNormalizeToOne) {
  // Regression for the ENTITY_FREQUENCY fix: Eq. 2 divides count(x, side)
  // by the number of triples on that side, so — like every other strategy —
  // each side's weights form a probability distribution.
  const TripleStore store = FormulaStore();
  for (SamplingStrategy s :
       {SamplingStrategy::kUniformRandom, SamplingStrategy::kEntityFrequency,
        SamplingStrategy::kGraphDegree,
        SamplingStrategy::kClusteringCoefficient,
        SamplingStrategy::kClusteringTriangles,
        SamplingStrategy::kClusteringSquares}) {
    auto w = ComputeStrategyWeights(s, store);
    ASSERT_TRUE(w.ok()) << SamplingStrategyName(s);
    EXPECT_NEAR(Sum(w.value().subject_weights), 1.0, 1e-9)
        << SamplingStrategyName(s);
    EXPECT_NEAR(Sum(w.value().object_weights), 1.0, 1e-9)
        << SamplingStrategyName(s);
  }
}

TEST(StrategyWeightsTest, TriangleFreeGraphFallsBackToUniform) {
  // A path graph has no triangles: CLUSTERING_TRIANGLES weights would be
  // all-zero, so the implementation falls back to uniform.
  TripleStore store(4, 1);
  ASSERT_TRUE(store.AddAll({{0, 0, 1}, {1, 0, 2}, {2, 0, 3}}).ok());
  auto w =
      ComputeStrategyWeights(SamplingStrategy::kClusteringTriangles, store);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.value().fell_back_to_uniform);
  for (double v : w.value().subject_weights) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(StrategyWeightsTest, PopularityCorrelationHoldsOnSkewedGraph) {
  // The paper's central observation: frequency/degree/triangle weights
  // correlate with entity frequency; clustering-coefficient weights do not
  // reward the most popular (star-center) node.
  TripleStore store(8, 1);
  // Star around 0 (popular), plus a triangle 5-6-7 (clustered).
  ASSERT_TRUE(store
                  .AddAll({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4},
                           {5, 0, 6}, {6, 0, 7}, {7, 0, 5}})
                  .ok());
  auto degree = ComputeStrategyWeights(SamplingStrategy::kGraphDegree, store);
  auto coeff = ComputeStrategyWeights(
      SamplingStrategy::kClusteringCoefficient, store);
  ASSERT_TRUE(degree.ok() && coeff.ok());
  // Degree strategy: node 0 has max weight.
  const auto& dw = degree.value().subject_weights;
  EXPECT_EQ(std::max_element(dw.begin(), dw.end()) - dw.begin(), 0);
  // Clustering coefficient: node 0 has zero weight despite popularity.
  EXPECT_DOUBLE_EQ(coeff.value().subject_weights[0], 0.0);
  EXPECT_GT(coeff.value().subject_weights[5], 0.0);
}

}  // namespace
}  // namespace kgfd
