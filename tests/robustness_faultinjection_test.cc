#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery.h"
#include "core/job.h"
#include "core/resume.h"
#include "kg/io.h"
#include "kg/synthetic.h"
#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

/// The fail-point registry is process-global; every test starts and ends
/// from a clean slate so armed sites cannot leak across tests.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().Reset(); }
  void TearDown() override { FailPoints::Instance().Reset(); }
};

// ------------------------------------------------------------ spec parsing

TEST_F(FailPointTest, ParsesPlainActions) {
  auto off = FailPointSpec::Parse("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value().action, FailPointSpec::Action::kOff);

  auto ret = FailPointSpec::Parse("return");
  ASSERT_TRUE(ret.ok());
  EXPECT_EQ(ret.value().action, FailPointSpec::Action::kReturnError);
  EXPECT_EQ(ret.value().code, StatusCode::kIoError);

  auto delay = FailPointSpec::Parse("delay(25)");
  ASSERT_TRUE(delay.ok());
  EXPECT_EQ(delay.value().action, FailPointSpec::Action::kDelay);
  EXPECT_EQ(delay.value().delay_ms, 25u);
}

TEST_F(FailPointTest, ParsesReturnArguments) {
  auto coded = FailPointSpec::Parse("return(Internal)");
  ASSERT_TRUE(coded.ok());
  EXPECT_EQ(coded.value().code, StatusCode::kInternal);

  auto with_message = FailPointSpec::Parse("return(IoError,disk on fire)");
  ASSERT_TRUE(with_message.ok());
  EXPECT_EQ(with_message.value().code, StatusCode::kIoError);
  EXPECT_EQ(with_message.value().message, "disk on fire");
}

TEST_F(FailPointTest, ParsesModifiers) {
  auto spec = FailPointSpec::Parse("1+25%2*return(Internal)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().skip, 1u);
  EXPECT_DOUBLE_EQ(spec.value().probability, 0.25);
  EXPECT_EQ(spec.value().max_triggers, 2u);
  EXPECT_EQ(spec.value().action, FailPointSpec::Action::kReturnError);
  EXPECT_EQ(spec.value().code, StatusCode::kInternal);
}

TEST_F(FailPointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FailPointSpec::Parse("").ok());
  EXPECT_FALSE(FailPointSpec::Parse("explode").ok());
  EXPECT_FALSE(FailPointSpec::Parse("return(NotACode)").ok());
  EXPECT_FALSE(FailPointSpec::Parse("delay").ok());
  EXPECT_FALSE(FailPointSpec::Parse("delay()").ok());
  EXPECT_FALSE(FailPointSpec::Parse("delay(xyz)").ok());
  EXPECT_FALSE(FailPointSpec::Parse("%return").ok());
  EXPECT_FALSE(FailPointSpec::Parse("101%return").ok());
  EXPECT_FALSE(FailPointSpec::Parse("return(IoError").ok());
}

// --------------------------------------------------------------- registry

TEST_F(FailPointTest, UnarmedRegistryIsTransparent) {
  FailPoints& fp = FailPoints::Instance();
  EXPECT_FALSE(fp.AnyArmed());
  EXPECT_TRUE(fp.Evaluate("some.site").ok());
  // Fast path: nothing is recorded while the registry is fully disarmed.
  EXPECT_EQ(fp.HitCount("some.site"), 0u);
}

TEST_F(FailPointTest, ReturnModeInjectsConfiguredStatus) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "return(Internal,boom)").ok());
  EXPECT_TRUE(fp.AnyArmed());
  const Status status = fp.Evaluate("test.site");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
  EXPECT_EQ(fp.HitCount("test.site"), 1u);
  EXPECT_EQ(fp.TriggerCount("test.site"), 1u);
}

TEST_F(FailPointTest, DefaultMessageNamesTheSite) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "return").ok());
  const Status status = fp.Evaluate("test.site");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.ToString().find("injected fault at test.site"),
            std::string::npos);
}

TEST_F(FailPointTest, SkipModifierDelaysTriggering) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "2+return").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_FALSE(fp.Evaluate("test.site").ok());
  EXPECT_EQ(fp.HitCount("test.site"), 3u);
  EXPECT_EQ(fp.TriggerCount("test.site"), 1u);
}

TEST_F(FailPointTest, MaxTriggersCapsInjection) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "2*return").ok());
  EXPECT_FALSE(fp.Evaluate("test.site").ok());
  EXPECT_FALSE(fp.Evaluate("test.site").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_EQ(fp.TriggerCount("test.site"), 2u);
}

TEST_F(FailPointTest, ProbabilisticModeIsNeitherAlwaysNorNever) {
  FailPoints& fp = FailPoints::Instance();
  fp.SetSeed(42);
  ASSERT_TRUE(fp.Enable("test.site", "50%return").ok());
  size_t failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!fp.Evaluate("test.site").ok()) ++failures;
  }
  // p=0.5 over 200 draws: anything outside [50, 150] is < 1e-12 likely.
  EXPECT_GT(failures, 50u);
  EXPECT_LT(failures, 150u);
  EXPECT_EQ(fp.TriggerCount("test.site"), failures);
}

TEST_F(FailPointTest, ProbabilisticModeIsDeterministicInSeed) {
  FailPoints& fp = FailPoints::Instance();
  auto run = [&fp]() {
    fp.Reset();
    fp.SetSeed(7);
    EXPECT_TRUE(fp.Enable("test.site", "50%return").ok());
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(fp.Evaluate("test.site").ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(FailPointTest, OffModeCountsHitsWithoutInjecting) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "off").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  EXPECT_EQ(fp.HitCount("test.site"), 2u);
  EXPECT_EQ(fp.TriggerCount("test.site"), 0u);
}

TEST_F(FailPointTest, DelayModeSleepsThenSucceeds) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "delay(30)").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(fp.Evaluate("test.site").ok());
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 25.0);
  EXPECT_EQ(fp.TriggerCount("test.site"), 1u);
}

TEST_F(FailPointTest, EvaluateDelayCannotInjectErrors) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("test.site", "return").ok());
  fp.EvaluateDelay("test.site");  // must not crash or inject
  EXPECT_EQ(fp.HitCount("test.site"), 1u);
  EXPECT_EQ(fp.TriggerCount("test.site"), 0u);
}

TEST_F(FailPointTest, EnableFromSpecArmsMultipleSites) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.EnableFromSpec("b.site=return;a.site=off;;").ok());
  EXPECT_EQ(fp.ArmedSites(),
            (std::vector<std::string>{"a.site", "b.site"}));
  EXPECT_FALSE(fp.EnableFromSpec("x.site=bogus").ok());
  EXPECT_FALSE(fp.EnableFromSpec("missing-equals").ok());
}

TEST_F(FailPointTest, DisableAndResetSemantics) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable("a.site", "return").ok());
  ASSERT_TRUE(fp.Enable("b.site", "return").ok());
  EXPECT_FALSE(fp.Evaluate("a.site").ok());
  fp.Disable("a.site");
  EXPECT_TRUE(fp.Evaluate("a.site").ok());
  // Counters survive Disable...
  EXPECT_EQ(fp.TriggerCount("a.site"), 1u);
  fp.DisableAll();
  EXPECT_FALSE(fp.AnyArmed());
  // ...but not Reset.
  fp.Reset();
  EXPECT_EQ(fp.TriggerCount("a.site"), 0u);
  EXPECT_EQ(fp.HitCount("a.site"), 0u);
}

TEST_F(FailPointTest, ExportsCountersThroughMetricsRegistry) {
  FailPoints& fp = FailPoints::Instance();
  MetricsRegistry registry;
  fp.AttachMetrics(&registry);
  ASSERT_TRUE(fp.Enable("test.site", "2*return").ok());
  for (int i = 0; i < 3; ++i) (void)fp.Evaluate("test.site");
  EXPECT_EQ(registry.GetCounter("failpoint.test.site.hits")->value(), 3u);
  EXPECT_EQ(registry.GetCounter("failpoint.test.site.triggers")->value(),
            2u);
  fp.AttachMetrics(nullptr);
}

// ------------------------------------------- instrumented library seams

/// One tiny dataset + trained model shared by the seam-coverage tests.
struct SeamFixture {
  Dataset dataset;
  std::unique_ptr<Model> model;
  ModelConfig model_config;
};

const SeamFixture& SharedSeamFixture() {
  static SeamFixture* fixture = [] {
    SyntheticConfig c;
    c.name = "robust";
    c.num_entities = 40;
    c.num_relations = 4;
    c.num_train = 300;
    c.num_valid = 15;
    c.num_test = 15;
    c.seed = 11;
    auto dataset =
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset");
    ModelConfig mc;
    mc.num_entities = dataset.num_entities();
    mc.num_relations = dataset.num_relations();
    mc.embedding_dim = 8;
    TrainerConfig tc;
    tc.epochs = 2;
    tc.batch_size = 64;
    tc.loss = LossKind::kSoftplus;
    tc.seed = 3;
    auto model =
        std::move(TrainModel(ModelKind::kDistMult, mc, dataset.train(), tc))
            .ValueOrDie("model");
    return new SeamFixture{std::move(dataset), std::move(model), mc};
  }();
  return *fixture;
}

std::string WriteTinyTsv(const std::string& stem) {
  const std::string path = ::testing::TempDir() + "/" + stem + ".tsv";
  std::ofstream out(path);
  out << "a\tr\tb\nb\tr\tc\n";
  return path;
}

TEST_F(FailPointTest, KgIoReadSiteTriggers) {
  FailPoints& fp = FailPoints::Instance();
  const std::string path = WriteTinyTsv("fp_read");
  Vocabulary entities, relations;
  ASSERT_TRUE(
      ReadTriplesTsv(path, &entities, &relations).ok());
  ASSERT_TRUE(fp.Enable(kFailPointKgIoRead, "return").ok());
  const auto result = ReadTriplesTsv(path, &entities, &relations);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_GE(fp.TriggerCount(kFailPointKgIoRead), 1u);
}

TEST_F(FailPointTest, KgIoWriteSiteTriggers) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable(kFailPointKgIoWrite, "return").ok());
  Vocabulary entities, relations;
  const Status status = WriteTriplesTsv(
      ::testing::TempDir() + "/fp_write.tsv", {}, entities, relations);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_GE(fp.TriggerCount(kFailPointKgIoWrite), 1u);
}

TEST_F(FailPointTest, CheckpointSaveAndLoadSitesTrigger) {
  FailPoints& fp = FailPoints::Instance();
  const SeamFixture& f = SharedSeamFixture();
  const std::string path = ::testing::TempDir() + "/fp_ckpt.bin";

  ASSERT_TRUE(fp.Enable(kFailPointCheckpointSave, "return").ok());
  EXPECT_FALSE(SaveModel(f.model.get(), f.model_config, path).ok());
  EXPECT_GE(fp.TriggerCount(kFailPointCheckpointSave), 1u);
  fp.Disable(kFailPointCheckpointSave);

  ASSERT_TRUE(SaveModel(f.model.get(), f.model_config, path).ok());
  ASSERT_TRUE(fp.Enable(kFailPointCheckpointLoad, "return").ok());
  EXPECT_FALSE(LoadModel(path).ok());
  EXPECT_GE(fp.TriggerCount(kFailPointCheckpointLoad), 1u);
}

TEST_F(FailPointTest, JobPhaseSitesAbortTheJob) {
  FailPoints& fp = FailPoints::Instance();
  JobSpec spec;
  spec.dataset_preset = "WN18RR";
  spec.dataset_scale = 250;
  spec.embedding_dim = 8;
  spec.trainer.epochs = 1;
  spec.trainer.loss = LossKind::kSoftplus;
  spec.discovery.top_n = 20;
  spec.discovery.max_candidates = 30;
  for (const char* site :
       {kFailPointJobDataset, kFailPointJobTrain, kFailPointJobEval,
        kFailPointJobDiscovery}) {
    fp.Reset();
    ASSERT_TRUE(fp.Enable(site, "return(Internal)").ok());
    const auto result = RunJob(spec);
    EXPECT_FALSE(result.ok()) << "site " << site << " did not abort";
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_GE(fp.TriggerCount(site), 1u) << site;
  }
}

TEST_F(FailPointTest, DiscoveryRelationSiteFailsTheRun) {
  FailPoints& fp = FailPoints::Instance();
  const SeamFixture& f = SharedSeamFixture();
  DiscoveryOptions options;
  options.top_n = 20;
  options.max_candidates = 30;
  options.seed = 5;
  ASSERT_TRUE(fp.Enable(kFailPointDiscoveryRelation, "return").ok());
  EXPECT_FALSE(DiscoverFacts(*f.model, f.dataset.train(), options).ok());
  EXPECT_GE(fp.TriggerCount(kFailPointDiscoveryRelation), 1u);
}

TEST_F(FailPointTest, DiscoveryCancelSiteStopsGracefully) {
  // Unlike discovery.relation (a hard per-relation failure), the
  // discovery.cancel site simulates a stop *request*: the sweep winds
  // down at its next checkpoint and returns OK with partial results.
  FailPoints& fp = FailPoints::Instance();
  const SeamFixture& f = SharedSeamFixture();
  DiscoveryOptions options;
  options.top_n = 20;
  options.max_candidates = 30;
  options.seed = 5;
  ASSERT_TRUE(fp.Enable(kFailPointDiscoveryCancel, "return(Cancelled)").ok());
  auto cancelled = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ(cancelled.value().stopped_reason, StoppedReason::kCancelled);
  EXPECT_TRUE(cancelled.value().facts.empty());
  EXPECT_GE(fp.TriggerCount(kFailPointDiscoveryCancel), 1u);

  // A DeadlineExceeded spec maps onto the deadline reason.
  fp.Reset();
  ASSERT_TRUE(
      fp.Enable(kFailPointDiscoveryCancel, "return(DeadlineExceeded)").ok());
  auto timed_out = DiscoverFacts(*f.model, f.dataset.train(), options);
  ASSERT_TRUE(timed_out.ok()) << timed_out.status().ToString();
  EXPECT_EQ(timed_out.value().stopped_reason, StoppedReason::kDeadline);
}

TEST_F(FailPointTest, ResumeSaveAndLoadSitesTrigger) {
  FailPoints& fp = FailPoints::Instance();
  const std::string path = ::testing::TempDir() + "/fp_manifest.bin";
  ResumeManifest manifest;
  manifest.model_name = "TransE";

  ASSERT_TRUE(fp.Enable(kFailPointResumeSave, "return").ok());
  EXPECT_FALSE(SaveResumeManifest(manifest, path).ok());
  EXPECT_GE(fp.TriggerCount(kFailPointResumeSave), 1u);
  fp.Disable(kFailPointResumeSave);

  ASSERT_TRUE(SaveResumeManifest(manifest, path).ok());
  ASSERT_TRUE(fp.Enable(kFailPointResumeLoad, "return").ok());
  EXPECT_FALSE(LoadResumeManifest(path).ok());
  EXPECT_GE(fp.TriggerCount(kFailPointResumeLoad), 1u);
}

TEST_F(FailPointTest, ThreadPoolDispatchSiteDelaysTasks) {
  FailPoints& fp = FailPoints::Instance();
  ASSERT_TRUE(fp.Enable(kFailPointThreadPoolDispatch, "delay(1)").ok());
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  ParallelFor(&pool, 16,
              [&sum](size_t begin, size_t end) { sum += end - begin; });
  EXPECT_EQ(sum.load(), 16u);
  EXPECT_GE(fp.TriggerCount(kFailPointThreadPoolDispatch), 1u);
}

/// Acceptance guard: every registered site appears in kAllFailPointSites
/// (the coverage tests above go through the real library seams; this one
/// proves the documented list and the constants stay in sync).
TEST_F(FailPointTest, EveryDocumentedSiteIsArmable) {
  FailPoints& fp = FailPoints::Instance();
  for (const char* site : kAllFailPointSites) {
    ASSERT_TRUE(fp.Enable(site, "off").ok()) << site;
    EXPECT_TRUE(fp.Evaluate(site).ok()) << site;
    EXPECT_EQ(fp.HitCount(site), 1u) << site;
  }
  EXPECT_EQ(fp.ArmedSites().size(),
            sizeof(kAllFailPointSites) / sizeof(kAllFailPointSites[0]));
}

// ------------------------------------------------------------------ retry

TEST_F(FailPointTest, RetrySucceedsFirstTry) {
  MetricsRegistry registry;
  RetryPolicy policy;
  policy.metrics = &registry;
  size_t calls = 0;
  auto result = Retry<int>(policy, "op", [&calls]() -> Result<int> {
    ++calls;
    return 7;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(registry.GetCounter(kRetryAttemptsCounter)->value(), 1u);
  EXPECT_EQ(registry.GetCounter(kRetryBackoffsCounter)->value(), 0u);
}

TEST_F(FailPointTest, RetryRecoversFromTransientFailures) {
  MetricsRegistry registry;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 0.1;
  policy.metrics = &registry;
  size_t calls = 0;
  auto result = Retry<int>(policy, "op", [&calls]() -> Result<int> {
    if (++calls < 3) return Status::IoError("flaky");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(registry.GetCounter(kRetryAttemptsCounter)->value(), 3u);
  EXPECT_EQ(registry.GetCounter(kRetryBackoffsCounter)->value(), 2u);
  EXPECT_EQ(registry.GetCounter(kRetryExhaustedCounter)->value(), 0u);
}

TEST_F(FailPointTest, RetryDoesNotRetryNonTransientErrors) {
  RetryPolicy policy;
  size_t calls = 0;
  auto result = Retry<int>(policy, "op", [&calls]() -> Result<int> {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1u);
  // Non-retryable errors keep their original message, no attempt prefix.
  EXPECT_EQ(result.status().ToString().find("attempts"),
            std::string::npos);
}

TEST_F(FailPointTest, RetryExhaustionDecoratesTheError) {
  MetricsRegistry registry;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0.1;
  policy.metrics = &registry;
  size_t calls = 0;
  const Status status = RetryStatus(policy, "SaveThing", [&calls]() {
    ++calls;
    return Status::IoError("disk gone");
  });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 3u);
  EXPECT_NE(status.ToString().find("SaveThing failed after 3 attempts"),
            std::string::npos);
  EXPECT_NE(status.ToString().find("disk gone"), std::string::npos);
  EXPECT_EQ(registry.GetCounter(kRetryExhaustedCounter)->value(), 1u);
}

TEST_F(FailPointTest, RetryBackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 5.0;
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 1), 1.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 2), 2.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 3), 4.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 4), 5.0);  // capped
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 10), 5.0);
}

TEST_F(FailPointTest, RetryAttemptTimeoutStopsSlowFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.attempt_timeout_ms = 5.0;
  size_t calls = 0;
  const Status status = RetryStatus(policy, "slow_op", [&calls]() {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::IoError("slow failure");
  });
  EXPECT_FALSE(status.ok());
  // The failed attempt overran the per-attempt budget: no retry.
  EXPECT_EQ(calls, 1u);
}

TEST_F(FailPointTest, RetryCustomPredicateWidensRetryableSet) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0.1;
  policy.retryable = [](StatusCode code) {
    return code == StatusCode::kInternal;
  };
  EXPECT_TRUE(RetryableCode(policy, StatusCode::kInternal));
  EXPECT_FALSE(RetryableCode(policy, StatusCode::kIoError));
  size_t calls = 0;
  const Status status = RetryStatus(policy, "op", [&calls]() {
    if (++calls < 2) return Status::Internal("transient");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2u);
}

TEST_F(FailPointTest, RetryAbsorbsInjectedTransientFaults) {
  // The fail point fails the first two reads; the dataset-load retry path
  // rides through them — the end-to-end contract the two features exist
  // to provide.
  FailPoints& fp = FailPoints::Instance();
  const std::string path = WriteTinyTsv("fp_retry");
  ASSERT_TRUE(fp.Enable(kFailPointKgIoRead, "2*return").ok());
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 0.1;
  Vocabulary entities, relations;
  auto result = Retry<std::vector<Triple>>(
      policy, "ReadTriplesTsv", [&]() {
        return ReadTriplesTsv(path, &entities, &relations);
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 2u);
  EXPECT_EQ(fp.TriggerCount(kFailPointKgIoRead), 2u);
  EXPECT_EQ(fp.HitCount(kFailPointKgIoRead), 3u);
}

TEST_F(FailPointTest, LoadDatasetDirRetriesInjectedFaults) {
  FailPoints& fp = FailPoints::Instance();
  const SeamFixture& f = SharedSeamFixture();
  const std::string dir = ::testing::TempDir() + "/fp_dataset";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDatasetDir(f.dataset, dir).ok());

  ASSERT_TRUE(fp.Enable(kFailPointKgIoRead, "1*return").ok());
  RetryPolicy policy;
  policy.initial_backoff_ms = 0.1;
  auto loaded = LoadDatasetDir(dir, "fp_dataset", policy);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().train().size(), f.dataset.train().size());

  // Without retries the same injection is fatal.
  fp.Reset();
  ASSERT_TRUE(fp.Enable(kFailPointKgIoRead, "1*return").ok());
  RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  EXPECT_FALSE(LoadDatasetDir(dir, "fp_dataset", no_retry).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kgfd
