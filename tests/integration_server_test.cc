#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery.h"
#include "core/report.h"
#include "kg/io.h"
#include "kg/synthetic.h"
#include "kge/checkpoint.h"
#include "kge/trainer.h"
#include "obs/metrics.h"
#include "server/discovery_service.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/job_manager.h"
#include "util/config_file.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace kgfd {
namespace {

/// On-disk fixture shared by every test in this binary: a synthetic
/// dataset directory plus a trained checkpoint — exactly what a client
/// would point a discover job at.
struct DiskFixture {
  std::string root;
  std::string data_dir;
  std::string checkpoint;
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<Model> model;
};

const DiskFixture& SharedDiskFixture() {
  static DiskFixture* fixture = [] {
    auto f = new DiskFixture();
    f->root = ::testing::TempDir() + "/kgfd_server_test_" +
              std::to_string(::getpid());
    f->data_dir = f->root + "/data";
    f->checkpoint = f->root + "/model.bin";
    std::filesystem::create_directories(f->data_dir);

    SyntheticConfig c;
    c.name = "serve";
    c.num_entities = 50;
    c.num_relations = 5;
    c.num_train = 500;
    c.num_valid = 20;
    c.num_test = 20;
    c.seed = 13;
    f->dataset = std::make_unique<Dataset>(
        std::move(GenerateSyntheticDataset(c)).ValueOrDie("dataset"));
    SaveDatasetDir(*f->dataset, f->data_dir).AbortIfNotOk("save dataset");

    ModelConfig mc;
    mc.num_entities = f->dataset->num_entities();
    mc.num_relations = f->dataset->num_relations();
    mc.embedding_dim = 10;
    TrainerConfig tc;
    tc.epochs = 4;
    tc.batch_size = 64;
    tc.loss = LossKind::kSoftplus;
    tc.seed = 3;
    f->model =
        std::move(TrainModel(ModelKind::kDistMult, mc, f->dataset->train(), tc))
            .ValueOrDie("model");
    SaveModel(f->model.get(), mc, f->checkpoint).AbortIfNotOk("save model");

    // Reload both artifacts from disk so the fixture sees exactly the
    // entity/relation IDs the server (and kgfd_cli) will see — the vocab
    // order of a loaded dataset is the file order, not generation order.
    f->dataset = std::make_unique<Dataset>(
        std::move(LoadDatasetDir(f->data_dir, f->data_dir))
            .ValueOrDie("reload dataset"));
    f->model = std::move(LoadModel(f->checkpoint)).ValueOrDie("reload model");
    return f;
  }();
  return *fixture;
}

constexpr char kHost[] = "127.0.0.1";

/// One live server stack on an ephemeral loopback port.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().Reset();
    work_dir_ = ::testing::TempDir() + "/kgfd_server_jobs_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(work_dir_);
  }

  void StartServer(size_t max_queued = 16) {
    pool_ = std::make_unique<ThreadPool>(4);
    metrics_ = std::make_unique<MetricsRegistry>();
    JobManager::Options job_options;
    job_options.work_dir = work_dir_;
    job_options.max_queued = max_queued;
    job_options.pool = pool_.get();
    job_options.metrics = metrics_.get();
    jobs_ = std::make_unique<JobManager>(std::move(job_options));
    service_ = std::make_unique<DiscoveryService>(jobs_.get(), metrics_.get());
    HttpServer::Options http_options;
    http_options.pool = pool_.get();
    http_options.metrics = metrics_.get();
    server_ = std::make_unique<HttpServer>(
        std::move(http_options),
        [this](const HttpRequest& r) { return service_->Handle(r); });
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (jobs_ != nullptr) jobs_->Shutdown();
    FailPoints::Instance().Reset();
    std::filesystem::remove_all(work_dir_);
  }

  /// Minimal discover-job config against the shared on-disk fixture.
  std::string JobConfig(const std::string& extra = "") const {
    const DiskFixture& f = SharedDiskFixture();
    return "data.dir = " + f.data_dir + "\n" +
           "model.checkpoint = " + f.checkpoint + "\n" +
           "discovery.top_n = 25\n" + "discovery.max_candidates = 60\n" +
           extra;
  }

  /// POSTs a job and returns its id (asserting 200).
  std::string SubmitJob(const std::string& config) {
    auto response = HttpFetch(kHost, port_, "POST", "/jobs", config);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status_code, 200) << response.value().body;
    std::string id = response.value().body;
    while (!id.empty() && id.back() == '\n') id.pop_back();
    return id;
  }

  /// Polls GET /jobs/<id> until the job reaches a terminal state.
  std::string AwaitTerminal(const std::string& id, double timeout_s = 30.0) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < give_up) {
      const std::string state = JobField(id, "state");
      if (state != "queued" && state != "running") return state;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return "timeout";
  }

  /// Reads one key from the status body (config-grammar text).
  std::string JobField(const std::string& id, const std::string& key) {
    auto response = HttpGet(kHost, port_, "/jobs/" + id);
    if (!response.ok() || response.value().status_code != 200) return "";
    auto config = ConfigFile::Parse(response.value().body);
    if (!config.ok()) return "";
    return config.value().GetString(key, "");
  }

  /// Reads one counter from the GET /metrics text export.
  uint64_t MetricsCounter(const std::string& name) {
    auto response = HttpGet(kHost, port_, "/metrics");
    EXPECT_TRUE(response.ok());
    const std::string needle = "counter " + name + " ";
    const size_t at = response.value().body.find(needle);
    if (at == std::string::npos) return 0;
    return std::stoull(response.value().body.substr(at + needle.size()));
  }

  std::string work_dir_;
  uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<JobManager> jobs_;
  std::unique_ptr<DiscoveryService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, SubmitStatusFactsRoundTripMatchesDirectDiscovery) {
  StartServer();
  const std::string id = SubmitJob(JobConfig());
  EXPECT_EQ(AwaitTerminal(id), "done");

  auto facts = HttpGet(kHost, port_, "/jobs/" + id + "/facts");
  ASSERT_TRUE(facts.ok());
  ASSERT_EQ(facts.value().status_code, 200);

  // The served bytes must equal a direct library run with the same options
  // — the same FormatFactsTsv bytes `kgfd_cli discover --out` writes
  // (tools/server_smoke.sh proves the real-binary equality in CI).
  const DiskFixture& f = SharedDiskFixture();
  DiscoveryOptions options;
  options.top_n = 25;
  options.max_candidates = 60;
  // The server resolves its default strategy from KGFD_DEFAULT_STRATEGY;
  // the direct run must do the same or the ADAPTIVE CI leg diverges here.
  options.strategy = DefaultSamplingStrategy();
  const auto direct = DiscoverFacts(*f.model, f.dataset->train(), options);
  ASSERT_TRUE(direct.ok());
  const std::string expected =
      FormatFactsTsv(direct.value().facts, f.dataset->entity_vocab(),
                     f.dataset->relation_vocab());
  EXPECT_EQ(facts.value().body, expected);
  EXPECT_FALSE(expected.empty());

  // Progress accounting reached the total.
  EXPECT_EQ(JobField(id, "relations_done"), JobField(id, "relations_total"));
}

TEST_F(ServerTest, SecondIdenticalJobIsServedFromSharedCaches) {
  StartServer();
  const std::string first = SubmitJob(JobConfig());
  ASSERT_EQ(AwaitTerminal(first), "done");
  const uint64_t misses_after_first =
      MetricsCounter("discovery.shared_scores.misses");
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(MetricsCounter("discovery.shared_scores.hits"), 0u);
  EXPECT_EQ(MetricsCounter("server.model_cache.misses"), 1u);

  const std::string second = SubmitJob(JobConfig());
  ASSERT_EQ(AwaitTerminal(second), "done");

  // Same model + KG + options: the rerun is fully cache-served — every
  // side-score lookup hits, no new misses, the model loads from memory.
  EXPECT_EQ(MetricsCounter("discovery.shared_scores.hits"),
            misses_after_first);
  EXPECT_EQ(MetricsCounter("discovery.shared_scores.misses"),
            misses_after_first);
  EXPECT_GE(MetricsCounter("discovery.shared_weights.hits"), 1u);
  EXPECT_EQ(MetricsCounter("server.model_cache.hits"), 1u);
  EXPECT_EQ(MetricsCounter("server.model_cache.misses"), 1u);

  // And byte-identical output.
  auto facts1 = HttpGet(kHost, port_, "/jobs/" + first + "/facts");
  auto facts2 = HttpGet(kHost, port_, "/jobs/" + second + "/facts");
  ASSERT_TRUE(facts1.ok() && facts2.ok());
  EXPECT_EQ(facts1.value().body, facts2.value().body);
}

TEST_F(ServerTest, ChangingEmbeddingBackendMissesTheModelCache) {
  // Regression: the model cache key must include the storage backend. It
  // used to be data_dir+checkpoint only, so a server whose
  // KGFD_EMBEDDING_BACKEND changed between requests would happily serve a
  // model loaded under the old backend.
  const char* saved = std::getenv("KGFD_EMBEDDING_BACKEND");
  const std::string restore = saved != nullptr ? saved : "";
  unsetenv("KGFD_EMBEDDING_BACKEND");

  StartServer();
  const std::string first = SubmitJob(JobConfig());
  ASSERT_EQ(AwaitTerminal(first), "done");
  EXPECT_EQ(MetricsCounter("server.model_cache.misses"), 1u);

  setenv("KGFD_EMBEDDING_BACKEND", "mmap", 1);
  const std::string second = SubmitJob(JobConfig());
  const std::string state = AwaitTerminal(second);
  if (saved != nullptr) {
    setenv("KGFD_EMBEDDING_BACKEND", restore.c_str(), 1);
  } else {
    unsetenv("KGFD_EMBEDDING_BACKEND");
  }
  ASSERT_EQ(state, "done");

  // Different backend: a fresh load (miss), not a cache hit...
  EXPECT_EQ(MetricsCounter("server.model_cache.misses"), 2u);
  EXPECT_EQ(MetricsCounter("server.model_cache.hits"), 0u);
  // ...serving byte-identical facts — the backend stores the same floats.
  auto facts1 = HttpGet(kHost, port_, "/jobs/" + first + "/facts");
  auto facts2 = HttpGet(kHost, port_, "/jobs/" + second + "/facts");
  ASSERT_TRUE(facts1.ok() && facts2.ok());
  EXPECT_EQ(facts1.value().body, facts2.value().body);
  EXPECT_FALSE(facts1.value().body.empty());
}

TEST_F(ServerTest, CancelMidJobKeepsPartialFactsAndManifest) {
  StartServer();
  // Slow the sweep so the cancel lands mid-job (PR4 invariant: completed
  // relations survive, the manifest on disk stays valid).
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryRelation, "delay(150)")
                  .ok());
  const std::string id = SubmitJob(JobConfig());

  // Wait for at least one relation to finish, then cancel.
  for (int i = 0; i < 500; ++i) {
    const std::string done = JobField(id, "relations_done");
    if (!done.empty() && done != "0") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto cancel = HttpFetch(kHost, port_, "DELETE", "/jobs/" + id);
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel.value().status_code, 200);

  EXPECT_EQ(AwaitTerminal(id), "cancelled");
  EXPECT_EQ(JobField(id, "stopped_reason"), "cancelled");

  // Partial facts are served, not an error.
  auto facts = HttpGet(kHost, port_, "/jobs/" + id + "/facts");
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts.value().status_code, 200);

  // The per-job resume manifest survived the cancellation.
  EXPECT_TRUE(
      std::filesystem::exists(work_dir_ + "/" + id + ".manifest"));
}

TEST_F(ServerTest, ShutdownDrainsInFlightJobAndRefusesNewWork) {
  StartServer();
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryRelation, "delay(100)")
                  .ok());
  const std::string running = SubmitJob(JobConfig());
  const std::string queued = SubmitJob(JobConfig());

  // Wait until the first job is actually running, then drain.
  for (int i = 0; i < 500 && JobField(running, "state") != "running"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  jobs_->Shutdown();  // what SIGTERM triggers in kgfd_server

  // The in-flight job terminated cooperatively with its manifest flushed;
  // the queued one never ran.
  const std::string state = JobField(running, "state");
  EXPECT_TRUE(state == "cancelled" || state == "done") << state;
  EXPECT_EQ(JobField(queued, "state"), "cancelled");
  EXPECT_TRUE(
      std::filesystem::exists(work_dir_ + "/" + running + ".manifest"));

  // The HTTP front end still answers, but sheds new work: 503 from both
  // the health probe and submissions.
  auto health = HttpGet(kHost, port_, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status_code, 503);
  auto submit = HttpFetch(kHost, port_, "POST", "/jobs", JobConfig());
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit.value().status_code, 503);
}

TEST_F(ServerTest, FullQueueShedsLoadWith429) {
  StartServer(/*max_queued=*/1);
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryRelation, "delay(200)")
                  .ok());
  // First job starts running (leaves the queue), second occupies the one
  // queue slot; the third must be rejected with 429.
  const std::string first = SubmitJob(JobConfig());
  for (int i = 0; i < 500 && JobField(first, "state") != "running"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  SubmitJob(JobConfig());
  auto overflow = HttpFetch(kHost, port_, "POST", "/jobs", JobConfig());
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow.value().status_code, 429);
  EXPECT_NE(overflow.value().body.find("queue full"), std::string::npos);
  EXPECT_GE(MetricsCounter("server.jobs.rejected"), 1u);
}

TEST_F(ServerTest, PerJobDeadlineStopsTheSweep) {
  StartServer();
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryRelation, "delay(300)")
                  .ok());
  const std::string id = SubmitJob(JobConfig("deadline_s = 0.2\n"));
  EXPECT_EQ(AwaitTerminal(id), "deadline");
  EXPECT_EQ(JobField(id, "stopped_reason"), "deadline");
  // Deadline is graceful degradation: partial facts are still served.
  auto facts = HttpGet(kHost, port_, "/jobs/" + id + "/facts");
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts.value().status_code, 200);
}

TEST_F(ServerTest, ApiErrorsUseTheRightStatusCodes) {
  StartServer();
  ASSERT_TRUE(FailPoints::Instance()
                  .Enable(kFailPointDiscoveryRelation, "delay(100)")
                  .ok());

  auto missing = HttpGet(kHost, port_, "/jobs/zzz");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status_code, 404);

  auto bad_submit = HttpFetch(kHost, port_, "POST", "/jobs", "nonsense");
  ASSERT_TRUE(bad_submit.ok());
  EXPECT_EQ(bad_submit.value().status_code, 400);

  auto bad_method = HttpFetch(kHost, port_, "PUT", "/jobs", "");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method.value().status_code, 405);
  EXPECT_EQ(bad_method.value().headers.at("allow"), "GET, POST");

  auto unknown_path = HttpGet(kHost, port_, "/nope");
  ASSERT_TRUE(unknown_path.ok());
  EXPECT_EQ(unknown_path.value().status_code, 404);

  // Facts of a non-terminal job: 409, try again later.
  const std::string id = SubmitJob(JobConfig());
  auto early = HttpGet(kHost, port_, "/jobs/" + id + "/facts");
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early.value().status_code, 409);

  // The job list names the job.
  auto list = HttpGet(kHost, port_, "/jobs");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list.value().body.find(id), std::string::npos);
}

/// Raw loopback client for the timeout tests below (HttpClient cannot
/// model a misbehaving peer). Optionally shrinks SO_RCVBUF before connect
/// so the server's send path back-pressures within a few KB.
int ConnectRawClient(uint16_t port, int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, kHost, &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(HttpTimeoutTest, StalledRequestBodyGetsA408) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  HttpServer::Options options;
  options.pool = &pool;
  options.metrics = &metrics;
  options.receive_timeout_s = 0.2;
  HttpServer server(std::move(options), [](const HttpRequest&) {
    return TextResponse(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());

  // Send the headers plus a fraction of the promised body, then go silent:
  // the server must not hold the worker forever — it answers a descriptive
  // 408 and closes.
  const int fd = ConnectRawClient(server.port());
  ASSERT_GE(fd, 0);
  const std::string partial =
      "POST /jobs HTTP/1.1\r\ncontent-length: 1000\r\n\r\nonly a few bytes";
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_NE(response.find("timed out"), std::string::npos) << response;
  EXPECT_EQ(metrics.GetCounter(kServerRecvTimeoutsCounter)->value(), 1u);
  server.Stop();
}

TEST(HttpTimeoutTest, SlowLorisReaderCannotPinAConnectionWorker) {
  ThreadPool pool(2);
  MetricsRegistry metrics;
  HttpServer::Options options;
  options.pool = &pool;
  options.metrics = &metrics;
  options.send_timeout_s = 0.3;
  options.send_buffer_bytes = 8 * 1024;  // back-pressure after a few KB
  const std::string big(4u << 20, 'x');
  HttpServer server(std::move(options), [&big](const HttpRequest&) {
    return TextResponse(200, big);
  });
  ASSERT_TRUE(server.Start().ok());

  // Ask for a multi-MB response and then never read a byte of it. With the
  // kernel buffers shrunk on both ends, SendAll jams long before the body
  // fits in flight; SO_SNDTIMEO must unblock the worker.
  const int fd = ConnectRawClient(server.port(), /*rcvbuf_bytes=*/4 * 1024);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /big HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (metrics.GetCounter(kServerSendTimeoutsCounter)->value() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(metrics.GetCounter(kServerSendTimeoutsCounter)->value(), 1u);
  // The worker was released, so a graceful Stop() cannot hang on us.
  server.Stop();
  ::close(fd);
}

TEST_F(ServerTest, RunKindJobExecutesFullPipeline) {
  StartServer();
  const std::string id = SubmitJob(
      "job.kind = run\n"
      "dataset.preset = FB15K-237\n"
      "dataset.scale = 250\n"
      "model.type = DistMult\n"
      "model.dim = 8\n"
      "train.epochs = 1\n"
      "eval.enabled = false\n"
      "discovery.top_n = 10\n"
      "discovery.max_candidates = 20\n");
  EXPECT_EQ(AwaitTerminal(id, 120.0), "done");
  auto facts = HttpGet(kHost, port_, "/jobs/" + id + "/facts");
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts.value().status_code, 200);
}

}  // namespace
}  // namespace kgfd
