#include "util/alias_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "core/strategy.h"
#include "kg/triple_store.h"
#include "util/rng.h"
#include "util/stats.h"

namespace kgfd {
namespace {

TEST(AliasSamplerTest, RejectsEmptyWeights) {
  EXPECT_FALSE(AliasSampler::Build({}).ok());
}

TEST(AliasSamplerTest, RejectsNegativeWeights) {
  EXPECT_FALSE(AliasSampler::Build({1.0, -0.5}).ok());
}

TEST(AliasSamplerTest, RejectsAllZeroWeights) {
  EXPECT_FALSE(AliasSampler::Build({0.0, 0.0}).ok());
}

TEST(AliasSamplerTest, SingleElementAlwaysSampled) {
  auto sampler = AliasSampler::Build({3.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.value().Sample(&rng), 0u);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  auto sampler = AliasSampler::Build({1.0, 0.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(sampler.value().Sample(&rng), 1u);
  }
}

TEST(AliasSamplerTest, NormalizedProbabilitiesSumToOne) {
  auto sampler = AliasSampler::Build({2.0, 3.0, 5.0});
  ASSERT_TRUE(sampler.ok());
  double sum = 0.0;
  for (size_t i = 0; i < sampler.value().size(); ++i) {
    sum += sampler.value().Probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(sampler.value().Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(sampler.value().Probability(2), 0.5, 1e-12);
}

TEST(AliasSamplerTest, SampleManyCountMatches) {
  auto sampler = AliasSampler::Build({1.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  EXPECT_EQ(sampler.value().SampleMany(57, &rng).size(), 57u);
}

TEST(AliasSamplerTest, DeterministicUnderSeed) {
  auto s1 = AliasSampler::Build({1.0, 2.0, 3.0});
  auto s2 = AliasSampler::Build({1.0, 2.0, 3.0});
  ASSERT_TRUE(s1.ok() && s2.ok());
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s1.value().Sample(&a), s2.value().Sample(&b));
  }
}

/// Property sweep: the empirical distribution of draws matches the weight
/// distribution (chi-square below a generous critical value).
class AliasSamplerDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasSamplerDistributionTest, EmpiricalDistributionMatchesWeights) {
  const std::vector<double>& weights = GetParam();
  auto sampler = AliasSampler::Build(weights);
  ASSERT_TRUE(sampler.ok());
  Rng rng(12345);
  constexpr size_t kDraws = 200000;
  std::vector<size_t> observed(weights.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) {
    ++observed[sampler.value().Sample(&rng)];
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> expected(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    expected[i] = weights[i] / total;
  }
  auto chi2 = ChiSquareStatistic(observed, expected);
  ASSERT_TRUE(chi2.ok()) << chi2.status().ToString();
  // p=0.999 critical value for up to 20 dof is < 46; use a wide margin so
  // the test is deterministic-by-seed yet meaningful.
  EXPECT_LT(chi2.value(), 60.0)
      << "chi2 too large for " << weights.size() << " buckets";
}

std::vector<double> ZipfLike(size_t n, double exponent) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return w;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasSamplerDistributionTest,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 3.0, 4.0},
                      std::vector<double>{0.5, 0.0, 0.5},
                      std::vector<double>{10.0, 1.0, 1.0, 1.0, 1.0},
                      ZipfLike(10, 1.0), ZipfLike(20, 0.5),
                      std::vector<double>{1e-6, 1e6},
                      std::vector<double>(16, 1.0)));

// ----------------------------- ENTITY_FREQUENCY property test (Eq. 2)

/// Chi-square acceptance threshold for `dof` degrees of freedom: the
/// distribution has mean dof and variance 2*dof, so mean + 5 sigma is a
/// deterministic-by-seed bound with vanishing false-alarm probability that
/// still catches any systematic skew.
double ChiSquareThreshold(size_t dof) {
  return static_cast<double>(dof) +
         5.0 * std::sqrt(2.0 * static_cast<double>(dof));
}

/// Samples `draws` times from an alias sampler built on `weights` and
/// chi-squares the empirical counts against the exact distribution.
void ExpectSamplesMatchWeights(const std::vector<double>& weights,
                               uint64_t seed, size_t draws = 200000) {
  auto sampler = AliasSampler::Build(weights);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(seed);
  std::vector<size_t> observed(weights.size(), 0);
  for (size_t i = 0; i < draws; ++i) {
    ++observed[sampler.value().Sample(&rng)];
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> expected(weights.size());
  size_t support = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    expected[i] = weights[i] / total;
    if (weights[i] > 0.0) ++support;
  }
  auto chi2 = ChiSquareStatistic(observed, expected);
  ASSERT_TRUE(chi2.ok()) << chi2.status().ToString();
  ASSERT_GE(support, 1u);
  if (support == 1) {
    // Degenerate distribution: chi-square has no dof; demand exactness.
    EXPECT_EQ(chi2.value(), 0.0);
  } else {
    EXPECT_LT(chi2.value(), ChiSquareThreshold(support - 1));
  }
}

/// End-to-end property: feed a KG through the paper's Eq. 2
/// (ENTITY_FREQUENCY) weights, verify the weights against hand-counted
/// frequencies, then verify the alias sampler reproduces that exact
/// distribution empirically.
TEST(EntityFrequencyPropertyTest, SamplerMatchesExactEq2Weights) {
  // Skewed subject usage: e0 x4, e1 x2, e2 x1, e3 x1; kg.size() == 8.
  TripleStore kg(6, 2);
  const std::vector<Triple> triples = {
      {0, 0, 4}, {0, 0, 5}, {0, 1, 4}, {0, 1, 5},
      {1, 0, 4}, {1, 1, 5}, {2, 0, 5}, {3, 1, 4},
  };
  for (const Triple& t : triples) {
    ASSERT_TRUE(kg.Add(t).ok());
  }
  auto weights = ComputeStrategyWeights(SamplingStrategy::kEntityFrequency,
                                        kg);
  ASSERT_TRUE(weights.ok());

  // Eq. 2 exactly: weight(x, subject) = count(x, subject) / kg.size().
  std::map<EntityId, double> expected_subject = {
      {0, 4.0 / 8.0}, {1, 2.0 / 8.0}, {2, 1.0 / 8.0}, {3, 1.0 / 8.0}};
  ASSERT_EQ(weights.value().subject_pool.size(), expected_subject.size());
  for (size_t i = 0; i < weights.value().subject_pool.size(); ++i) {
    const EntityId e = weights.value().subject_pool[i];
    ASSERT_TRUE(expected_subject.count(e)) << "entity " << e;
    EXPECT_DOUBLE_EQ(weights.value().subject_weights[i],
                     expected_subject[e]);
  }
  // Object side: e4 x4, e5 x4.
  for (size_t i = 0; i < weights.value().object_pool.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights.value().object_weights[i], 4.0 / 8.0);
  }

  ExpectSamplesMatchWeights(weights.value().subject_weights, 2024);
  ExpectSamplesMatchWeights(weights.value().object_weights, 2025);
}

TEST(EntityFrequencyPropertyTest, AllEqualFrequenciesSampleUniformly) {
  // Every entity appears exactly once per side: Eq. 2 degenerates to the
  // uniform distribution, and the sampler must too.
  TripleStore kg(8, 1);
  for (EntityId e = 0; e < 4; ++e) {
    ASSERT_TRUE(kg.Add(Triple{e, 0, static_cast<EntityId>(4 + e)}).ok());
  }
  auto weights =
      ComputeStrategyWeights(SamplingStrategy::kEntityFrequency, kg);
  ASSERT_TRUE(weights.ok());
  for (double w : weights.value().subject_weights) {
    EXPECT_DOUBLE_EQ(w, 1.0 / 4.0);
  }
  ExpectSamplesMatchWeights(weights.value().subject_weights, 31337);
}

TEST(EntityFrequencyPropertyTest, SingleNonZeroWeightIsDegenerate) {
  // One entity owns the whole subject side: the sampler must return it
  // every single time (chi-square with zero dof demands exactness).
  TripleStore kg(4, 1);
  ASSERT_TRUE(kg.Add(Triple{2, 0, 0}).ok());
  ASSERT_TRUE(kg.Add(Triple{2, 0, 1}).ok());
  ASSERT_TRUE(kg.Add(Triple{2, 0, 3}).ok());
  auto weights =
      ComputeStrategyWeights(SamplingStrategy::kEntityFrequency, kg);
  ASSERT_TRUE(weights.ok());
  ASSERT_EQ(weights.value().subject_pool.size(), 1u);
  EXPECT_EQ(weights.value().subject_pool[0], 2u);
  EXPECT_DOUBLE_EQ(weights.value().subject_weights[0], 1.0);
  ExpectSamplesMatchWeights(weights.value().subject_weights, 5,
                            /*draws=*/5000);
}

TEST(EntityFrequencyPropertyTest, RandomGraphsMatchEmpirically) {
  // Property sweep over random graph shapes: whatever Eq. 2 produces, the
  // sampler's empirical distribution agrees with it.
  Rng shape_rng(777);
  for (int round = 0; round < 5; ++round) {
    const size_t num_entities = 5 + shape_rng.UniformInt(20);
    TripleStore kg(num_entities, 3);
    const size_t num_triples = 20 + shape_rng.UniformInt(100);
    for (size_t i = 0; i < num_triples; ++i) {
      (void)kg.Add(Triple{
          static_cast<EntityId>(shape_rng.UniformInt(num_entities)),
          static_cast<RelationId>(shape_rng.UniformInt(3)),
          static_cast<EntityId>(shape_rng.UniformInt(num_entities))});
    }
    auto weights =
        ComputeStrategyWeights(SamplingStrategy::kEntityFrequency, kg);
    ASSERT_TRUE(weights.ok());
    // The exact Eq. 2 invariant: each side's weights sum to 1 because
    // every stored triple contributes one subject and one object.
    const auto& sw = weights.value().subject_weights;
    EXPECT_NEAR(std::accumulate(sw.begin(), sw.end(), 0.0), 1.0, 1e-12);
    ExpectSamplesMatchWeights(sw, 1000 + round, /*draws=*/100000);
  }
}

}  // namespace
}  // namespace kgfd
