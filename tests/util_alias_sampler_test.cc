#include "util/alias_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace kgfd {
namespace {

TEST(AliasSamplerTest, RejectsEmptyWeights) {
  EXPECT_FALSE(AliasSampler::Build({}).ok());
}

TEST(AliasSamplerTest, RejectsNegativeWeights) {
  EXPECT_FALSE(AliasSampler::Build({1.0, -0.5}).ok());
}

TEST(AliasSamplerTest, RejectsAllZeroWeights) {
  EXPECT_FALSE(AliasSampler::Build({0.0, 0.0}).ok());
}

TEST(AliasSamplerTest, SingleElementAlwaysSampled) {
  auto sampler = AliasSampler::Build({3.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.value().Sample(&rng), 0u);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  auto sampler = AliasSampler::Build({1.0, 0.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(sampler.value().Sample(&rng), 1u);
  }
}

TEST(AliasSamplerTest, NormalizedProbabilitiesSumToOne) {
  auto sampler = AliasSampler::Build({2.0, 3.0, 5.0});
  ASSERT_TRUE(sampler.ok());
  double sum = 0.0;
  for (size_t i = 0; i < sampler.value().size(); ++i) {
    sum += sampler.value().Probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(sampler.value().Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(sampler.value().Probability(2), 0.5, 1e-12);
}

TEST(AliasSamplerTest, SampleManyCountMatches) {
  auto sampler = AliasSampler::Build({1.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  EXPECT_EQ(sampler.value().SampleMany(57, &rng).size(), 57u);
}

TEST(AliasSamplerTest, DeterministicUnderSeed) {
  auto s1 = AliasSampler::Build({1.0, 2.0, 3.0});
  auto s2 = AliasSampler::Build({1.0, 2.0, 3.0});
  ASSERT_TRUE(s1.ok() && s2.ok());
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s1.value().Sample(&a), s2.value().Sample(&b));
  }
}

/// Property sweep: the empirical distribution of draws matches the weight
/// distribution (chi-square below a generous critical value).
class AliasSamplerDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasSamplerDistributionTest, EmpiricalDistributionMatchesWeights) {
  const std::vector<double>& weights = GetParam();
  auto sampler = AliasSampler::Build(weights);
  ASSERT_TRUE(sampler.ok());
  Rng rng(12345);
  constexpr size_t kDraws = 200000;
  std::vector<size_t> observed(weights.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) {
    ++observed[sampler.value().Sample(&rng)];
  }
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> expected(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    expected[i] = weights[i] / total;
  }
  auto chi2 = ChiSquareStatistic(observed, expected);
  ASSERT_TRUE(chi2.ok()) << chi2.status().ToString();
  // p=0.999 critical value for up to 20 dof is < 46; use a wide margin so
  // the test is deterministic-by-seed yet meaningful.
  EXPECT_LT(chi2.value(), 60.0)
      << "chi2 too large for " << weights.size() << " buckets";
}

std::vector<double> ZipfLike(size_t n, double exponent) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  return w;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AliasSamplerDistributionTest,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 3.0, 4.0},
                      std::vector<double>{0.5, 0.0, 0.5},
                      std::vector<double>{10.0, 1.0, 1.0, 1.0, 1.0},
                      ZipfLike(10, 1.0), ZipfLike(20, 0.5),
                      std::vector<double>{1e-6, 1e6},
                      std::vector<double>(16, 1.0)));

}  // namespace
}  // namespace kgfd
