#include "kg/leakage.h"

#include <gtest/gtest.h>

namespace kgfd {
namespace {

TEST(DetectInverseRelationsTest, PerfectInversePairFound) {
  // Relation 1 is exactly the inverse of relation 0.
  TripleStore store(6, 3);
  ASSERT_TRUE(store
                  .AddAll({{0, 0, 1}, {1, 1, 0},
                           {2, 0, 3}, {3, 1, 2},
                           {4, 0, 5}, {5, 1, 4}})
                  .ok());
  const auto pairs = DetectInverseRelations(store, 0.9);
  ASSERT_GE(pairs.size(), 2u);  // (0 -> 1) and (1 -> 0)
  bool found_forward = false;
  for (const InverseRelationPair& p : pairs) {
    if (p.relation == 0 && p.inverse == 1) {
      found_forward = true;
      EXPECT_DOUBLE_EQ(p.coverage, 1.0);
      EXPECT_EQ(p.support, 3u);
    }
  }
  EXPECT_TRUE(found_forward);
}

TEST(DetectInverseRelationsTest, SymmetricRelationIsSelfInverse) {
  TripleStore store(4, 1);
  ASSERT_TRUE(store.AddAll({{0, 0, 1}, {1, 0, 0}, {2, 0, 3}, {3, 0, 2}})
                  .ok());
  const auto pairs = DetectInverseRelations(store, 0.9);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].relation, 0u);
  EXPECT_EQ(pairs[0].inverse, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].coverage, 1.0);
}

TEST(DetectInverseRelationsTest, PartialCoverageRespectsThreshold) {
  // 2 of 4 triples of relation 0 have inverses under relation 1
  // (coverage 0.5), while both relation-1 triples invert under relation 0
  // (coverage 1.0).
  TripleStore store(8, 2);
  ASSERT_TRUE(store
                  .AddAll({{0, 0, 1}, {1, 1, 0},
                           {2, 0, 3}, {3, 1, 2},
                           {4, 0, 5}, {6, 0, 7}})
                  .ok());
  const auto strict = DetectInverseRelations(store, 0.6);
  ASSERT_EQ(strict.size(), 1u);  // only the fully-covered 1 -> 0 direction
  EXPECT_EQ(strict[0].relation, 1u);
  EXPECT_EQ(strict[0].inverse, 0u);
  EXPECT_DOUBLE_EQ(strict[0].coverage, 1.0);

  const auto loose = DetectInverseRelations(store, 0.5);
  ASSERT_EQ(loose.size(), 2u);  // sorted by coverage: (1->0) then (0->1)
  EXPECT_EQ(loose[0].relation, 1u);
  EXPECT_EQ(loose[1].relation, 0u);
  EXPECT_EQ(loose[1].inverse, 1u);
  EXPECT_DOUBLE_EQ(loose[1].coverage, 0.5);
}

TEST(DetectInverseRelationsTest, CleanGraphReportsNothing) {
  TripleStore store(6, 2);
  ASSERT_TRUE(store.AddAll({{0, 0, 1}, {1, 0, 2}, {3, 1, 4}}).ok());
  EXPECT_TRUE(DetectInverseRelations(store, 0.5).empty());
}

TEST(DetectInverseRelationsTest, SortedByCoverageDescending) {
  TripleStore store(10, 3);
  // r0 -> r1 fully inverse; r2 -> r1 half inverse.
  ASSERT_TRUE(store
                  .AddAll({{0, 0, 1}, {1, 1, 0},
                           {2, 2, 3}, {3, 1, 2},
                           {4, 2, 5}})
                  .ok());
  const auto pairs = DetectInverseRelations(store, 0.4);
  ASSERT_GE(pairs.size(), 2u);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].coverage, pairs[i].coverage);
  }
}

TEST(TestLeakageScoreTest, RejectsEmptyTest) {
  Dataset d("x", 4, 1);
  ASSERT_TRUE(d.train().Add({0, 0, 1}).ok());
  EXPECT_FALSE(TestLeakageScore(d).ok());
}

TEST(TestLeakageScoreTest, FullyLeakedDataset) {
  // Every test triple is the flip of a training triple (the FB15K flaw).
  Dataset d("leaky", 6, 2);
  ASSERT_TRUE(d.train().AddAll({{0, 0, 1}, {2, 0, 3}, {4, 0, 5},
                                {1, 1, 2}})
                  .ok());
  ASSERT_TRUE(d.test().AddAll({{1, 1, 0}, {3, 1, 2}}).ok());
  auto score = TestLeakageScore(d);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), 1.0);
}

TEST(TestLeakageScoreTest, CleanDatasetScoresZero) {
  Dataset d("clean", 6, 1);
  ASSERT_TRUE(d.train().AddAll({{0, 0, 1}, {1, 0, 2}, {2, 0, 3}}).ok());
  ASSERT_TRUE(d.test().AddAll({{0, 0, 3}, {1, 0, 3}}).ok());
  auto score = TestLeakageScore(d);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), 0.0);
}

TEST(TestLeakageScoreTest, PartialLeakage) {
  Dataset d("partial", 6, 2);
  ASSERT_TRUE(d.train().AddAll({{0, 0, 1}, {2, 0, 3}, {1, 1, 3}}).ok());
  ASSERT_TRUE(d.test().AddAll({{1, 1, 0}, {3, 0, 0}}).ok());
  auto score = TestLeakageScore(d);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), 0.5);  // only (1,1,0) flips (0,0,1)
}

}  // namespace
}  // namespace kgfd
