#include <gtest/gtest.h>

#include <numeric>

#include "core/discovery.h"
#include "core/strategy.h"
#include "graph/adjacency.h"
#include "graph/metrics.h"
#include "kg/synthetic.h"

namespace kgfd {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// Star KG: hub 0 connected to 1..4 (hub degree 4, leaves degree 1).
TripleStore StarStore() {
  TripleStore store(6, 1);
  store.AddAll({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}})
      .AbortIfNotOk("star store");
  return store;
}

TEST(ExtensionStrategyNamesTest, RoundTrip) {
  for (SamplingStrategy s : {SamplingStrategy::kInverseDegree,
                             SamplingStrategy::kExplorationMixture}) {
    auto back = SamplingStrategyFromName(SamplingStrategyName(s));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), s);
    auto abbrev = SamplingStrategyFromName(SamplingStrategyAbbrev(s));
    ASSERT_TRUE(abbrev.ok());
    EXPECT_EQ(abbrev.value(), s);
  }
}

TEST(ExtensionStrategyNamesTest, NotInComparativeSet) {
  for (SamplingStrategy s : ComparativeStrategies()) {
    EXPECT_NE(s, SamplingStrategy::kInverseDegree);
    EXPECT_NE(s, SamplingStrategy::kExplorationMixture);
  }
}

TEST(InverseDegreeTest, WeightsMirrorDegree) {
  auto w = ComputeStrategyWeights(SamplingStrategy::kInverseDegree,
                                  StarStore());
  ASSERT_TRUE(w.ok());
  // deg = [4, 1, 1, 1, 1, 0]; inverse = [1/4, 1, 1, 1, 1, 0]; sum 4.25.
  EXPECT_NEAR(w.value().subject_weights[0], 0.25 / 4.25, 1e-12);
  EXPECT_NEAR(w.value().subject_weights[1], 1.0 / 4.25, 1e-12);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[5], 0.0);  // isolated: never
  EXPECT_NEAR(Sum(w.value().subject_weights), 1.0, 1e-9);
}

TEST(InverseDegreeTest, LeavesOutweighHub) {
  auto w = ComputeStrategyWeights(SamplingStrategy::kInverseDegree,
                                  StarStore());
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w.value().subject_weights[1], w.value().subject_weights[0]);
}

TEST(ExplorationMixtureTest, WeightsAreHalfUniformHalfDegree) {
  auto w = ComputeStrategyWeights(SamplingStrategy::kExplorationMixture,
                                  StarStore());
  ASSERT_TRUE(w.ok());
  // 5 connected nodes, degree sum 8. Hub: 0.5/5 + 0.5*4/8 = 0.35.
  // Leaf: 0.5/5 + 0.5*1/8 = 0.1625.
  EXPECT_NEAR(w.value().subject_weights[0], 0.35, 1e-12);
  EXPECT_NEAR(w.value().subject_weights[1], 0.1625, 1e-12);
  EXPECT_DOUBLE_EQ(w.value().subject_weights[5], 0.0);
  EXPECT_NEAR(Sum(w.value().subject_weights), 1.0, 1e-9);
}

TEST(ExplorationMixtureTest, SitsBetweenDegreeAndInverse) {
  // On the star, the hub's mixture weight lies strictly between its
  // INVERSE_DEGREE weight and its GRAPH_DEGREE weight.
  const TripleStore store = StarStore();
  const double hub_degree =
      ComputeStrategyWeights(SamplingStrategy::kGraphDegree, store)
          .value()
          .subject_weights[0];
  const double hub_inverse =
      ComputeStrategyWeights(SamplingStrategy::kInverseDegree, store)
          .value()
          .subject_weights[0];
  const double hub_mixture =
      ComputeStrategyWeights(SamplingStrategy::kExplorationMixture, store)
          .value()
          .subject_weights[0];
  EXPECT_GT(hub_mixture, hub_inverse);
  EXPECT_LT(hub_mixture, hub_degree);
}

TEST(LongTailShareTest, EmptyFactsIsZero) {
  EXPECT_EQ(LongTailShare({}, StarStore()), 0.0);
}

TEST(LongTailShareTest, HandComputed) {
  const TripleStore store = StarStore();
  // Connected degrees sorted: [1,1,1,1,4]; median threshold = 1.
  std::vector<DiscoveredFact> facts(2);
  facts[0].triple = {1, 0, 3};  // leaf-leaf: touches long tail
  facts[1].triple = {0, 0, 0};  // hub-hub: does not
  EXPECT_DOUBLE_EQ(LongTailShare(facts, store, 0.5), 0.5);
}

TEST(LongTailShareTest, QuantileOneCountsEverything) {
  const TripleStore store = StarStore();
  std::vector<DiscoveredFact> facts(1);
  facts[0].triple = {0, 0, 0};  // hub only
  EXPECT_DOUBLE_EQ(LongTailShare(facts, store, 1.0), 1.0);
}

TEST(LongTailIntegrationTest, InverseDegreeRaisesLongTailCoverage) {
  SyntheticConfig c;
  c.num_entities = 300;
  c.num_relations = 4;
  c.num_train = 2500;
  c.num_valid = 20;
  c.num_test = 20;
  c.entity_zipf_exponent = 1.0;  // pronounced popularity skew
  c.seed = 8;
  auto dataset = GenerateSyntheticDataset(c);
  ASSERT_TRUE(dataset.ok());
  // Sampling-level check (no model needed): compare the expected long-tail
  // mass of the two strategies' weight vectors directly.
  const TripleStore& kg = dataset.value().train();
  const Adjacency adj = Adjacency::FromTripleStore(kg);
  const std::vector<uint64_t> degrees = Degrees(adj);
  std::vector<uint64_t> connected;
  for (uint64_t d : degrees) {
    if (d > 0) connected.push_back(d);
  }
  std::sort(connected.begin(), connected.end());
  const uint64_t median = connected[connected.size() / 2];
  auto tail_mass = [&](SamplingStrategy s) {
    auto w = ComputeStrategyWeights(s, kg);
    double mass = 0.0;
    for (size_t i = 0; i < degrees.size(); ++i) {
      if (degrees[i] > 0 && degrees[i] <= median) {
        mass += w.value().subject_weights[i];
      }
    }
    return mass;
  };
  const double inverse_mass = tail_mass(SamplingStrategy::kInverseDegree);
  const double degree_mass = tail_mass(SamplingStrategy::kGraphDegree);
  const double mixture_mass =
      tail_mass(SamplingStrategy::kExplorationMixture);
  EXPECT_GT(inverse_mass, 2.0 * degree_mass);
  EXPECT_GT(mixture_mass, degree_mass);
  EXPECT_LT(mixture_mass, inverse_mass);
}

}  // namespace
}  // namespace kgfd
