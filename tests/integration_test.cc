#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>

#include "kgfd.h"

namespace kgfd {
namespace {

/// End-to-end: a KG with strong deterministic structure (a bipartite
/// "works_at" pattern), a fraction of whose true triples are withheld from
/// training. Discovery must surface withheld facts at better ranks than the
/// model assigns to random non-facts.
class EndToEndTest : public ::testing::Test {
 protected:
  // People 0..19, companies 20..27. Person p works at company
  // 20 + (p % 4); co-workers know each other (same company).
  static constexpr EntityId kPeople = 20;
  static constexpr EntityId kCompanies = 8;
  static constexpr RelationId kWorksAt = 0;
  static constexpr RelationId kKnows = 1;

  void SetUp() override {
    dataset_ = std::make_unique<Dataset>("workplace", kPeople + kCompanies,
                                         2);
    std::vector<Triple> all;
    for (EntityId p = 0; p < kPeople; ++p) {
      all.push_back({p, kWorksAt, static_cast<EntityId>(20 + p % 4)});
    }
    for (EntityId a = 0; a < kPeople; ++a) {
      for (EntityId b = 0; b < kPeople; ++b) {
        if (a != b && a % 4 == b % 4) all.push_back({a, kKnows, b});
      }
    }
    // Withhold every 7th triple as a "missing fact".
    for (size_t i = 0; i < all.size(); ++i) {
      if (i % 7 == 3) {
        withheld_.push_back(all[i]);
      } else {
        ASSERT_TRUE(dataset_->train().Add(all[i]).ok());
      }
    }
    ModelConfig mc;
    mc.num_entities = dataset_->num_entities();
    mc.num_relations = dataset_->num_relations();
    mc.embedding_dim = 16;
    TrainerConfig tc;
    tc.epochs = 60;
    tc.batch_size = 32;
    tc.negatives_per_positive = 4;
    tc.loss = LossKind::kSoftplus;
    tc.optimizer.learning_rate = 0.05;
    tc.seed = 2024;
    model_ = std::move(TrainModel(ModelKind::kComplEx, mc,
                                  dataset_->train(), tc))
                 .ValueOrDie("train");
  }

  std::unique_ptr<Dataset> dataset_;
  std::vector<Triple> withheld_;
  std::unique_ptr<Model> model_;
};

TEST_F(EndToEndTest, WithheldFactsOutrankRandomNonFacts) {
  double withheld_mrr = 0.0;
  for (const Triple& t : withheld_) {
    const SideRanks r = RankTriple(*model_, t, dataset_->train(), true);
    withheld_mrr += 1.0 / (0.5 * (r.subject_rank + r.object_rank));
  }
  withheld_mrr /= static_cast<double>(withheld_.size());

  // Random non-facts: people "working at" the wrong company.
  Rng rng(55);
  double random_mrr = 0.0;
  int count = 0;
  for (EntityId p = 0; p < kPeople; ++p) {
    const EntityId wrong =
        static_cast<EntityId>(20 + (p % 4 + 1 + rng.UniformInt(2)) % 4);
    const Triple t{p, kWorksAt, wrong};
    if (dataset_->train().Contains(t)) continue;
    const SideRanks r = RankTriple(*model_, t, dataset_->train(), true);
    random_mrr += 1.0 / (0.5 * (r.subject_rank + r.object_rank));
    ++count;
  }
  random_mrr /= count;
  EXPECT_GT(withheld_mrr, random_mrr)
      << "held-out true facts should outrank plausible-but-false ones";
}

TEST_F(EndToEndTest, DiscoveryFindsWithheldFacts) {
  DiscoveryOptions o;
  o.top_n = 10;
  o.max_candidates = 400;
  o.strategy = SamplingStrategy::kEntityFrequency;
  o.max_iterations = 5;
  o.seed = 7;
  auto result = DiscoverFacts(*model_, dataset_->train(), o);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().facts.empty());

  size_t withheld_hits = 0;
  for (const DiscoveredFact& fact : result.value().facts) {
    if (std::find(withheld_.begin(), withheld_.end(), fact.triple) !=
        withheld_.end()) {
      ++withheld_hits;
    }
  }
  // The discovered set must contain a non-trivial number of the actually
  // missing facts — the paper's raison d'être.
  EXPECT_GE(withheld_hits, 3u);
}

TEST_F(EndToEndTest, CheckpointPreservesDiscoveryOutput) {
  DiscoveryOptions o;
  o.top_n = 10;
  o.max_candidates = 200;
  o.strategy = SamplingStrategy::kGraphDegree;
  o.seed = 21;
  auto before = DiscoverFacts(*model_, dataset_->train(), o);
  ASSERT_TRUE(before.ok());

  const std::string path = ::testing::TempDir() + "/kgfd_e2e_ckpt.bin";
  ModelConfig mc;
  mc.num_entities = dataset_->num_entities();
  mc.num_relations = dataset_->num_relations();
  mc.embedding_dim = 16;
  ASSERT_TRUE(SaveModel(model_.get(), mc, path).ok());
  auto reloaded = LoadModel(path);
  ASSERT_TRUE(reloaded.ok());
  std::filesystem::remove(path);

  auto after = DiscoverFacts(*reloaded.value(), dataset_->train(), o);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().facts.size(), after.value().facts.size());
  for (size_t i = 0; i < before.value().facts.size(); ++i) {
    EXPECT_EQ(before.value().facts[i].triple,
              after.value().facts[i].triple);
    EXPECT_EQ(before.value().facts[i].rank, after.value().facts[i].rank);
  }
}

TEST_F(EndToEndTest, StrategiesProduceDifferentCandidateSets) {
  DiscoveryOptions o;
  o.top_n = 28;  // admit everything; compare generation, not filtering
  o.max_candidates = 120;
  o.seed = 5;
  o.strategy = SamplingStrategy::kUniformRandom;
  auto uniform = DiscoverFacts(*model_, dataset_->train(), o);
  o.strategy = SamplingStrategy::kEntityFrequency;
  auto frequency = DiscoverFacts(*model_, dataset_->train(), o);
  ASSERT_TRUE(uniform.ok() && frequency.ok());
  // Identical outputs across strategies would mean the weights are ignored.
  std::set<uint64_t> a, b;
  for (const auto& f : uniform.value().facts) a.insert(PackTriple(f.triple));
  for (const auto& f : frequency.value().facts) {
    b.insert(PackTriple(f.triple));
  }
  EXPECT_NE(a, b);
}

TEST(PipelineSmokeTest, FullPaperPipelineOnMicroScale) {
  // Generate -> train -> evaluate -> discover, end to end, one model.
  auto dataset = GenerateSyntheticDataset(Fb15k237Config(600.0, 3));
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  ModelConfig mc;
  mc.num_entities = dataset.value().num_entities();
  mc.num_relations = dataset.value().num_relations();
  mc.embedding_dim = 8;
  TrainerConfig tc;
  tc.epochs = 3;
  tc.seed = 1;
  auto model =
      TrainModel(ModelKind::kTransE, mc, dataset.value().train(), tc);
  ASSERT_TRUE(model.ok());
  auto metrics = EvaluateLinkPrediction(*model.value(), dataset.value(),
                                        dataset.value().test());
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics.value().mrr, 0.0);
  DiscoveryOptions o;
  o.top_n = 50;
  o.max_candidates = 50;
  o.strategy = SamplingStrategy::kClusteringTriangles;
  auto discovery = DiscoverFacts(*model.value(), dataset.value().train(), o);
  ASSERT_TRUE(discovery.ok()) << discovery.status().ToString();
  EXPECT_GT(discovery.value().stats.num_candidates, 0u);
}

}  // namespace
}  // namespace kgfd
