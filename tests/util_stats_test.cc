#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace kgfd {
namespace {

TEST(SummarizeTest, EmptySampleIsZeroed) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.median, 4.0);
}

TEST(SummarizeTest, KnownSample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic example, population stddev
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(SummarizeTest, MedianInterpolates) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(PercentileTest, EdgesAndMiddle) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 20.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(5.0);   // bin 2 (half-open buckets)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(7.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(4), 10.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.AddAll({0.1, 0.1, 0.9});
  const std::string art = h.ToAscii(10);
  size_t lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, ZeroBinsClampedToOne) {
  Histogram h(0.0, 1.0, 0);
  h.Add(0.5);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(ChiSquareTest, PerfectFitIsSmall) {
  const std::vector<size_t> observed = {250, 250, 250, 250};
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  auto result = ChiSquareStatistic(observed, probs);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.0);
}

TEST(ChiSquareTest, KnownStatistic) {
  // observed {60, 40}, expected 50/50 => chi2 = 100/50 + 100/50 = 4.
  auto result = ChiSquareStatistic({60, 40}, {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 4.0);
}

TEST(ChiSquareTest, RejectsLengthMismatch) {
  EXPECT_FALSE(ChiSquareStatistic({1, 2}, {1.0}).ok());
}

TEST(ChiSquareTest, RejectsEmptyObservations) {
  EXPECT_FALSE(ChiSquareStatistic({0, 0}, {0.5, 0.5}).ok());
}

TEST(ChiSquareTest, RejectsMassInZeroBucket) {
  EXPECT_FALSE(ChiSquareStatistic({5, 5}, {1.0, 0.0}).ok());
}

TEST(ChiSquareTest, ZeroBucketWithZeroObservationsOk) {
  auto result = ChiSquareStatistic({10, 0}, {1.0, 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.0);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, MismatchedOrShortInputsGiveZero) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1.0}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {1.0}), 0.0);
}

TEST(PearsonTest, IndependentSamplesNearZero) {
  Rng rng(5);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.05);
}

}  // namespace
}  // namespace kgfd
